"""Common interface implemented by every cardinality estimator in the library.

CardNet, CardNet-A, and all baselines (database, traditional-learning, and
deep-learning methods) expose the same operations so the benchmark harness,
the serving layer, and the query optimizers can treat them uniformly.  The
interface is **batch-first**: the primary operation is

* ``estimate_batch(records, thetas)`` — vectorized estimates for many
  (query record, threshold) pairs at once;

from which the remaining operations derive:

* ``estimate(record, theta)`` — thin scalar delegate (one-element batch);
* ``estimate_many(examples)`` — batch estimates for labelled examples
  (labels ignored), the entry point used by benchmarks;
* ``estimate_curve_many(records, thetas)`` — one monotone cardinality curve
  per record over a threshold grid, the operation the serving layer caches
  and the query optimizers consume;
* ``fit(train, validation)`` — learn from labelled query examples (no-op for
  estimators that only need the dataset, e.g. sampling or histograms).

Estimators override ``estimate_batch`` (and, when they can do better than the
default per-threshold sweep, ``estimate_curve_many``) with genuinely
vectorized kernels; none of them should loop over single-query ``estimate``
calls on the hot path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional, Sequence

import numpy as np

from ..workloads.examples import QueryExample


class CardinalityEstimator(ABC):
    """Uniform batch-first estimator interface."""

    #: Identifier shown in benchmark tables (e.g. ``"CardNet"``, ``"DB-US"``).
    name: str = "abstract"

    #: Whether the estimator guarantees monotone estimates in the threshold.
    monotonic: bool = False

    def fit(
        self,
        train: Sequence[QueryExample],
        validation: Sequence[QueryExample] = (),
    ) -> "CardinalityEstimator":
        """Train on labelled examples.  Default: nothing to learn."""
        return self

    # ------------------------------------------------------------------ #
    # Primary batch operations
    # ------------------------------------------------------------------ #
    @abstractmethod
    def estimate_batch(self, records: Sequence[Any], thetas: Sequence[float]) -> np.ndarray:
        """Vector of estimates, one per ``(records[i], thetas[i])`` pair."""

    def estimate_curve_many(
        self,
        records: Sequence[Any],
        thetas: Optional[Sequence[float]] = None,
    ) -> np.ndarray:
        """One cardinality curve per record: an ``(n, t)`` matrix where entry
        ``[i, j]`` is the estimate for ``(records[i], thetas[j])``.

        ``thetas`` defaults to :meth:`curve_thetas`.  For monotone estimators
        each row is non-decreasing, so a single cached curve answers *every*
        threshold for that record (the property the serving layer exploits).

        The default sweeps the grid with one :meth:`estimate_batch` call per
        threshold (vectorized over records); estimators with a cheaper
        whole-curve kernel override this.
        """
        thetas = self._resolve_curve_thetas(thetas)
        records = list(records)
        if not records:
            return np.zeros((0, len(thetas)))
        columns = [
            self.estimate_batch(records, np.full(len(records), theta, dtype=np.float64))
            for theta in thetas
        ]
        return np.stack(columns, axis=1)

    # ------------------------------------------------------------------ #
    # Derived operations
    # ------------------------------------------------------------------ #
    def estimate(self, record: Any, theta: float) -> float:
        """Estimated cardinality for one (query record, threshold) pair."""
        return float(self.estimate_batch([record], np.asarray([theta], dtype=np.float64))[0])

    def estimate_many(self, examples: Sequence[QueryExample]) -> np.ndarray:
        """Vector of estimates for a list of labelled examples (labels ignored)."""
        examples = list(examples)
        if not examples:
            return np.zeros(0)
        records = [example.record for example in examples]
        thetas = np.asarray([example.theta for example in examples], dtype=np.float64)
        return np.asarray(self.estimate_batch(records, thetas), dtype=np.float64)

    # ------------------------------------------------------------------ #
    # Curve support (used by the serving layer and the optimizers)
    # ------------------------------------------------------------------ #
    def curve_thetas(self) -> Optional[np.ndarray]:
        """Canonical threshold grid for curve-based serving, if the estimator
        has a natural one (e.g. CardNet's τ grid).  ``None`` means the caller
        must supply a grid."""
        return None

    def curve_indices(self, thetas: Sequence[float], grid: np.ndarray) -> np.ndarray:
        """Columns of a curve over ``grid`` answering each of ``thetas``.

        Default: the rightmost grid point ``<= theta`` (monotone snap-down),
        clipped into range — one vectorized searchsorted for the whole batch.
        Estimators whose estimates depend on the threshold only through a
        quantization (e.g. CardNet's θ → τ map) override this so curve
        answers match direct estimation exactly.
        """
        grid = np.asarray(grid, dtype=np.float64)
        indices = np.searchsorted(grid, np.asarray(thetas, dtype=np.float64) + 1e-12, side="right") - 1
        return np.clip(indices, 0, len(grid) - 1).astype(np.int64)

    def curve_index(self, theta: float, thetas: np.ndarray) -> int:
        """Scalar form of :meth:`curve_indices` (a one-element batch)."""
        return int(self.curve_indices(np.asarray([theta]), thetas)[0])

    def _resolve_curve_thetas(self, thetas: Optional[Sequence[float]]) -> np.ndarray:
        if thetas is None:
            thetas = self.curve_thetas()
        if thetas is None:
            raise ValueError(
                f"{self.name}: no canonical curve grid; pass `thetas` explicitly"
            )
        return np.asarray(thetas, dtype=np.float64)

    def size_in_bytes(self) -> int:
        """Serialized model size; 0 for estimators with no persistent state."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class ScalarEstimatorMixin:
    """Adapter for estimators whose kernel is inherently per-query.

    Subclasses implement :meth:`estimate_one`; the mixin provides an
    ``estimate_batch`` that loops it.  Exists so the few estimators without a
    vectorizable kernel (e.g. the exact-selection oracle) still satisfy the
    batch-first interface without pretending to be vectorized.
    """

    def estimate_one(self, record: Any, theta: float) -> float:
        raise NotImplementedError

    def estimate_batch(self, records: Sequence[Any], thetas: Sequence[float]) -> np.ndarray:
        thetas = np.asarray(thetas, dtype=np.float64)
        return np.asarray(
            [self.estimate_one(record, float(theta)) for record, theta in zip(records, thetas)],
            dtype=np.float64,
        )

"""Common interface implemented by every cardinality estimator in the library.

CardNet, CardNet-A, and all baselines (database, traditional-learning, and
deep-learning methods) expose the same two operations so the benchmark harness
can treat them uniformly:

* ``fit(train, validation)`` — learn from labelled query examples (no-op for
  estimators that only need the dataset, e.g. sampling or histograms);
* ``estimate(record, theta)`` — return the estimated cardinality of the
  similarity selection for one query.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

import numpy as np

from ..workloads.examples import QueryExample


class CardinalityEstimator(ABC):
    """Uniform estimator interface used by the benchmark harness."""

    #: Identifier shown in benchmark tables (e.g. ``"CardNet"``, ``"DB-US"``).
    name: str = "abstract"

    #: Whether the estimator guarantees monotone estimates in the threshold.
    monotonic: bool = False

    def fit(
        self,
        train: Sequence[QueryExample],
        validation: Sequence[QueryExample] = (),
    ) -> "CardinalityEstimator":
        """Train on labelled examples.  Default: nothing to learn."""
        return self

    @abstractmethod
    def estimate(self, record: Any, theta: float) -> float:
        """Estimated cardinality for one (query record, threshold) pair."""

    def estimate_many(self, examples: Sequence[QueryExample]) -> np.ndarray:
        """Vector of estimates for a list of labelled examples (labels ignored)."""
        return np.asarray(
            [self.estimate(example.record, example.theta) for example in examples],
            dtype=np.float64,
        )

    def size_in_bytes(self) -> int:
        """Serialized model size; 0 for estimators with no persistent state."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"

"""High-level CardNet estimator: feature extraction + regression + training glue.

This is the library's primary public entry point.  Given a dataset it builds
the appropriate feature extraction (paper §4 case study), constructs the
CardNet or CardNet-A regression model (§5/§7), and trains it with the dynamic
strategy (§6).  After fitting, :meth:`estimate` answers queries in original
(record, θ) space, with monotonicity in θ guaranteed by construction.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from ..datasets.synthetic import Dataset
from ..featurization import build_feature_extractor
from ..featurization.base import FeatureExtractor
from ..nn import serialized_size
from ..workloads.examples import QueryExample
from .cardnet import CardNet, CardNetConfig
from .interface import CardinalityEstimator
from .training import CardNetTrainer, TrainingResult


class CardNetEstimator(CardinalityEstimator):
    """CardNet (or CardNet-A when ``accelerated=True``) behind the uniform API."""

    monotonic = True

    def __init__(
        self,
        extractor: FeatureExtractor,
        config: Optional[CardNetConfig] = None,
        accelerated: bool = False,
        epochs: int = 30,
        vae_pretrain_epochs: int = 10,
        learning_rate: float = 1e-3,
        batch_size: int = 64,
        patience: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        self.extractor = extractor
        config = config or CardNetConfig(tau_max=extractor.tau_max)
        config.tau_max = extractor.tau_max
        config.accelerated = accelerated
        config.seed = seed
        self.config = config
        self.model = CardNet(input_dimension=extractor.dimension, config=config)
        self.trainer = CardNetTrainer(
            self.model,
            extractor,
            learning_rate=learning_rate,
            batch_size=batch_size,
            vae_pretrain_epochs=vae_pretrain_epochs,
            seed=seed,
        )
        self.epochs = epochs
        self.patience = patience
        self.name = "CardNet-A" if accelerated else "CardNet"
        self.last_training_result: Optional[TrainingResult] = None

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def for_dataset(
        cls,
        dataset: Dataset,
        accelerated: bool = False,
        tau_max: Optional[int] = None,
        config: Optional[CardNetConfig] = None,
        seed: int = 0,
        **training_options,
    ) -> "CardNetEstimator":
        """Build an estimator whose featurization matches the dataset's distance."""
        extractor = build_feature_extractor(dataset, tau_max=tau_max, seed=seed)
        return cls(extractor, config=config, accelerated=accelerated, seed=seed, **training_options)

    # ------------------------------------------------------------------ #
    # Training / estimation
    # ------------------------------------------------------------------ #
    def fit(
        self,
        train: Sequence[QueryExample],
        validation: Sequence[QueryExample] = (),
    ) -> "CardNetEstimator":
        self.last_training_result = self.trainer.fit(
            train, validation, epochs=self.epochs, patience=self.patience
        )
        return self

    def incremental_fit(
        self,
        train: Sequence[QueryExample],
        validation: Sequence[QueryExample] = (),
        max_epochs: int = 20,
    ) -> TrainingResult:
        """Incremental learning after dataset updates (paper §8)."""
        result = self.trainer.incremental_fit(train, validation, max_epochs=max_epochs)
        self.last_training_result = result
        return result

    def estimate(self, record: Any, theta: float) -> float:
        features = self.extractor.transform_record(record)[None, :]
        tau = self.extractor.transform_threshold(theta)
        value = self.model.estimate(features, np.asarray([tau]))[0]
        return float(value)

    def estimate_many(self, examples: Sequence[QueryExample]) -> np.ndarray:
        if not examples:
            return np.zeros(0)
        features = self.extractor.transform_records([example.record for example in examples])
        taus = np.asarray(
            [self.extractor.transform_threshold(example.theta) for example in examples],
            dtype=np.int64,
        )
        return self.model.estimate(features, taus)

    def estimate_curve(self, record: Any) -> np.ndarray:
        """Monotone estimates for every τ = 0..τ_max (one call, used by GPH)."""
        features = self.extractor.transform_record(record)[None, :]
        return self.model.estimate_curve(features)[0]

    def validation_msle(self, examples: Sequence[QueryExample]) -> float:
        """MSLE of the current model on labelled examples (update monitoring, §8)."""
        from ..metrics import msle

        if not examples:
            return 0.0
        estimates = self.estimate_many(examples)
        actual = np.asarray([example.cardinality for example in examples], dtype=np.float64)
        return msle(actual, estimates)

    def size_in_bytes(self) -> int:
        return serialized_size(self.model)

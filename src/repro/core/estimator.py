"""High-level CardNet estimator: feature extraction + regression + training glue.

This is the library's primary public entry point.  Given a dataset it builds
the appropriate feature extraction (paper §4 case study), constructs the
CardNet or CardNet-A regression model (§5/§7), and trains it with the dynamic
strategy (§6).  After fitting, :meth:`estimate` answers queries in original
(record, θ) space, with monotonicity in θ guaranteed by construction.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from ..datasets.synthetic import Dataset
from ..featurization import build_feature_extractor
from ..featurization.base import FeatureExtractor
from ..nn import serialized_size
from ..workloads.examples import QueryExample
from .cardnet import CardNet, CardNetConfig
from .interface import CardinalityEstimator
from .training import CardNetTrainer, TrainingResult


class CardNetEstimator(CardinalityEstimator):
    """CardNet (or CardNet-A when ``accelerated=True``) behind the uniform API."""

    monotonic = True

    def __init__(
        self,
        extractor: FeatureExtractor,
        config: Optional[CardNetConfig] = None,
        accelerated: bool = False,
        epochs: int = 30,
        vae_pretrain_epochs: int = 10,
        learning_rate: float = 1e-3,
        batch_size: int = 64,
        patience: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        self.extractor = extractor
        config = config or CardNetConfig(tau_max=extractor.tau_max)
        config.tau_max = extractor.tau_max
        config.accelerated = accelerated
        config.seed = seed
        self.config = config
        self.model = CardNet(input_dimension=extractor.dimension, config=config)
        self.trainer = CardNetTrainer(
            self.model,
            extractor,
            learning_rate=learning_rate,
            batch_size=batch_size,
            vae_pretrain_epochs=vae_pretrain_epochs,
            seed=seed,
        )
        self.epochs = epochs
        self.patience = patience
        self.name = "CardNet-A" if accelerated else "CardNet"
        self.last_training_result: Optional[TrainingResult] = None
        self._canonical_grid: Optional[np.ndarray] = None
        self._canonical_grid_computed = False

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def for_dataset(
        cls,
        dataset: Dataset,
        accelerated: bool = False,
        tau_max: Optional[int] = None,
        config: Optional[CardNetConfig] = None,
        seed: int = 0,
        **training_options,
    ) -> "CardNetEstimator":
        """Build an estimator whose featurization matches the dataset's distance."""
        extractor = build_feature_extractor(dataset, tau_max=tau_max, seed=seed)
        return cls(extractor, config=config, accelerated=accelerated, seed=seed, **training_options)

    # ------------------------------------------------------------------ #
    # Training / estimation
    # ------------------------------------------------------------------ #
    def fit(
        self,
        train: Sequence[QueryExample],
        validation: Sequence[QueryExample] = (),
    ) -> "CardNetEstimator":
        self.last_training_result = self.trainer.fit(
            train, validation, epochs=self.epochs, patience=self.patience
        )
        return self

    def incremental_fit(
        self,
        train: Sequence[QueryExample],
        validation: Sequence[QueryExample] = (),
        max_epochs: int = 20,
    ) -> TrainingResult:
        """Incremental learning after dataset updates (paper §8)."""
        result = self.trainer.incremental_fit(train, validation, max_epochs=max_epochs)
        self.last_training_result = result
        return result

    def estimate_batch(self, records: Sequence[Any], thetas: Sequence[float]) -> np.ndarray:
        """Primary batch path: one featurization pass + one model forward."""
        records = list(records)
        if not records:
            return np.zeros(0)
        features = self.extractor.transform_records(records)
        taus = self.extractor.transform_thresholds(thetas)
        return self.model.estimate(features, taus)

    def estimate_curve_many(
        self,
        records: Sequence[Any],
        thetas: Optional[Sequence[float]] = None,
    ) -> np.ndarray:
        """Monotone curves for many records in a single model pass.

        With the default grid the columns are the model's native τ = 0..τ_max
        curve; an explicit ``thetas`` grid is answered by indexing that curve
        through the monotone θ → τ map (no extra forward passes).
        """
        records = list(records)
        if not records:
            return np.zeros((0, self.model.tau_max + 1 if thetas is None else len(thetas)))
        features = self.extractor.transform_records(records)
        curves = self.model.estimate_curve(features)
        if thetas is None or self._is_canonical_grid(thetas):
            # Native τ-indexed curve: `curve_index` maps θ onto it exactly,
            # even for extractors whose θ → τ map is not grid-position == τ
            # (e.g. identity maps configured with tau_max > theta_max).
            return curves
        taus = self.extractor.transform_thresholds(thetas)
        return curves[:, taus]

    def estimate_curve(self, record: Any) -> np.ndarray:
        """Monotone estimates for every τ = 0..τ_max (one call, used by GPH)."""
        return self.estimate_curve_many([record])[0]

    def curve_thetas(self) -> Optional[np.ndarray]:
        """One representative θ per decoder: the native grid served from curves.

        Only returned when the grid genuinely inverts the extractor's θ → τ
        map (``transform_thresholds(grid) == arange``), so that column ``j``
        of a native curve IS the estimate at ``grid[j]``.  Extractors whose
        map cannot be inverted on a uniform grid (nonlinear Euclidean maps,
        identity maps with ``tau_max > theta_max``) report no canonical grid
        and must be served through an explicit grid instead.
        """
        if not self._canonical_grid_computed:
            self._canonical_grid = self._compute_canonical_grid()
            self._canonical_grid_computed = True
        return self._canonical_grid

    def _compute_canonical_grid(self) -> Optional[np.ndarray]:
        tau_max = self.model.tau_max
        if tau_max <= 0:
            return None
        grid = np.arange(tau_max + 1, dtype=np.float64) * (self.extractor.theta_max / tau_max)
        try:
            taus = np.asarray(self.extractor.transform_thresholds(grid))
        except ValueError:
            return None
        if not np.array_equal(taus, np.arange(tau_max + 1)):
            return None
        return grid

    def _is_canonical_grid(self, thetas) -> bool:
        canonical = self.curve_thetas()
        if canonical is None:
            return False
        return len(thetas) == len(canonical) and np.array_equal(
            np.asarray(thetas, dtype=np.float64), canonical
        )

    def curve_indices(self, thetas: Sequence[float], grid: np.ndarray) -> np.ndarray:
        """Native curve columns answer θ exactly through the θ → τ map —
        one grid comparison and one vectorized transform for the whole batch.

        Consistent with :meth:`estimate_curve_many`, which returns the native
        τ-indexed curve whenever the canonical grid is requested."""
        if self._is_canonical_grid(grid):
            return np.asarray(self.extractor.transform_thresholds(thetas), dtype=np.int64)
        return super().curve_indices(thetas, grid)

    def validation_msle(self, examples: Sequence[QueryExample]) -> float:
        """MSLE of the current model on labelled examples (update monitoring, §8)."""
        from ..metrics import msle

        if not examples:
            return 0.0
        estimates = self.estimate_many(examples)
        actual = np.asarray([example.cardinality for example in examples], dtype=np.float64)
        return msle(actual, estimates)

    def size_in_bytes(self) -> int:
        return serialized_size(self.model)

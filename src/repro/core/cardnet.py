"""The CardNet regression model (paper §5) and its accelerated variant (§7).

The model operates in the Hamming-space interface produced by feature
extraction: the input is a binary vector ``x ∈ {0,1}^d`` and an integer
threshold ``τ ∈ [0, τ_max]``.  The forward pass is

1. Γ: concatenate ``x`` with the VAE latent → dense representation ``x'``;
2. Ψ: pair ``x'`` with each distance embedding ``e_i`` and run the shared FNN Φ
   (or run the accelerated Φ′ once) → per-distance embeddings ``z_x^i``;
3. decoders: ``g_i(x) = ReLU(w_i^T z_x^i + b_i)``;
4. incremental prediction: ``ĉ = Σ_{i=0..τ} g_i(x)``.

Monotonicity in τ follows from non-negative deterministic decoders (Lemma 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .. import nn
from ..nn import Tensor
from .decoders import PerDistanceDecoders
from .encoder import AcceleratedEncoder, DistanceEmbedding, SharedEncoder
from .vae import VariationalAutoEncoder


@dataclass
class CardNetConfig:
    """Hyperparameters of the CardNet regression model.

    Defaults are scaled-down versions of the paper's settings (§9.1.3) so that
    CPU training in the test-suite/benchmarks stays fast; the architecture is
    unchanged.
    """

    tau_max: int = 16
    vae_latent_dimension: int = 16
    vae_hidden_sizes: Sequence[int] = (64, 32)
    distance_embedding_dimension: int = 5
    embedding_dimension: int = 32
    encoder_hidden_sizes: Sequence[int] = (64, 64)
    accelerated: bool = False
    vae_loss_weight: float = 0.1          # λ in Eq. 2
    dynamic_loss_weight: float = 0.1      # λ_Δ in Eq. 3
    seed: int = 0
    extra: dict = field(default_factory=dict)


class CardNet(nn.Module):
    """CardNet / CardNet-A regression model over the Hamming-space interface."""

    def __init__(self, input_dimension: int, config: Optional[CardNetConfig] = None) -> None:
        super().__init__()
        self.config = config or CardNetConfig()
        self.input_dimension = int(input_dimension)
        cfg = self.config

        self.vae = VariationalAutoEncoder(
            input_dimension=input_dimension,
            latent_dimension=cfg.vae_latent_dimension,
            hidden_sizes=cfg.vae_hidden_sizes,
            seed=cfg.seed,
        )
        representation_dimension = self.vae.representation_dimension
        self.distance_embedding = DistanceEmbedding(
            tau_max=cfg.tau_max,
            embedding_dimension=cfg.distance_embedding_dimension,
            seed=cfg.seed + 1,
        )
        if cfg.accelerated:
            self.encoder = AcceleratedEncoder(
                representation_dimension=representation_dimension,
                tau_max=cfg.tau_max,
                embedding_dimension=cfg.embedding_dimension,
                hidden_sizes=cfg.encoder_hidden_sizes,
                seed=cfg.seed + 2,
            )
        else:
            self.encoder = SharedEncoder(
                representation_dimension=representation_dimension,
                distance_embedding_dimension=cfg.distance_embedding_dimension,
                embedding_dimension=cfg.embedding_dimension,
                hidden_sizes=cfg.encoder_hidden_sizes,
                seed=cfg.seed + 2,
            )
        self.decoders = PerDistanceDecoders(
            tau_max=cfg.tau_max, embedding_dimension=cfg.embedding_dimension, seed=cfg.seed + 3
        )

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def tau_max(self) -> int:
        return self.config.tau_max

    @property
    def accelerated(self) -> bool:
        return self.config.accelerated

    # ------------------------------------------------------------------ #
    # Forward passes
    # ------------------------------------------------------------------ #
    def per_distance_embeddings(self, features: Tensor, deterministic: bool) -> List[Tensor]:
        """z_x^i for every distance i, as a list of (batch, z_dim) tensors."""
        representation = self.vae.representation(features, deterministic=deterministic)
        if isinstance(self.encoder, AcceleratedEncoder):
            return self.encoder.embed_all(representation)
        all_embeddings = self.distance_embedding.all_embeddings()
        return self.encoder.embed_all(representation, all_embeddings)

    def per_distance_estimates(self, features: Tensor, deterministic: bool) -> Tensor:
        """(batch, τ_max+1) matrix of non-negative per-distance cardinalities."""
        embeddings = self.per_distance_embeddings(features, deterministic)
        return self.decoders.decode_all(embeddings)

    def forward(self, features: Tensor, taus: np.ndarray, deterministic: Optional[bool] = None) -> Tensor:
        """Estimated cardinalities ĉ for a batch of (feature vector, τ) pairs."""
        if deterministic is None:
            deterministic = not self.training
        per_distance = self.per_distance_estimates(features, deterministic)
        return PerDistanceDecoders.cumulative(per_distance, taus)

    # ------------------------------------------------------------------ #
    # Inference API (numpy in, numpy out, always deterministic)
    # ------------------------------------------------------------------ #
    def estimate(self, features: np.ndarray, taus: np.ndarray) -> np.ndarray:
        """Deterministic cardinality estimates for pre-featurized queries."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        taus = np.atleast_1d(np.asarray(taus, dtype=np.int64))
        output = self.forward(Tensor(features), taus, deterministic=True)
        return np.maximum(output.data, 0.0)

    def estimate_curve(self, features: np.ndarray) -> np.ndarray:
        """Cumulative estimates for *all* τ = 0..τ_max (one monotone curve per row)."""
        features = np.atleast_2d(np.asarray(features, dtype=np.float64))
        per_distance = self.per_distance_estimates(Tensor(features), deterministic=True)
        return np.cumsum(np.maximum(per_distance.data, 0.0), axis=1)

    def vae_loss(self, features: Tensor) -> Tensor:
        """The VAE term L_vae of the joint objective (Eq. 2)."""
        return self.vae.loss(features)

"""CardNet: the paper's primary contribution (models, training, incremental learning)."""

from .cardnet import CardNet, CardNetConfig
from .decoders import PerDistanceDecoders
from .encoder import AcceleratedEncoder, DistanceEmbedding, SharedEncoder
from .estimator import CardNetEstimator
from .incremental import IncrementalUpdateManager, RevalidationReport, UpdateStepReport
from .interface import CardinalityEstimator
from .loss import DynamicLossWeights, empirical_tau_distribution, weighted_msle
from .training import (
    CardNetTrainer,
    FeaturizedSplit,
    RegressionRow,
    TrainingResult,
    featurize_examples,
)
from .vae import VariationalAutoEncoder, pretrain_vae

__all__ = [
    "CardNet",
    "CardNetConfig",
    "CardNetEstimator",
    "CardinalityEstimator",
    "CardNetTrainer",
    "TrainingResult",
    "FeaturizedSplit",
    "RegressionRow",
    "featurize_examples",
    "VariationalAutoEncoder",
    "pretrain_vae",
    "DistanceEmbedding",
    "SharedEncoder",
    "AcceleratedEncoder",
    "PerDistanceDecoders",
    "DynamicLossWeights",
    "weighted_msle",
    "empirical_tau_distribution",
    "IncrementalUpdateManager",
    "UpdateStepReport",
    "RevalidationReport",
]

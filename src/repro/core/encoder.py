"""CardNet encoders: distance embeddings + shared Φ, and the accelerated Φ′.

Paper §5.2 (encoder Ψ) and §7 (accelerated model):

* :class:`DistanceEmbedding` is the matrix ``E`` whose column ``e_i`` embeds the
  Hamming distance value ``i`` (initialized from a standard normal).
* :class:`SharedEncoder` is the feedforward network Φ applied to ``[x' ; e_i]``
  for each distance ``i``, producing the per-distance embeddings ``z_x^i``.
* :class:`AcceleratedEncoder` is Φ′: a single FNN over ``x'`` whose hidden
  layers each emit one *region* of all ``τ_max + 1`` embeddings at once,
  reducing the per-query cost from ``O((τ+1)·|Φ|)`` to ``O(|Φ'|)``.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .. import nn
from ..nn import Tensor


class DistanceEmbedding(nn.Module):
    """Embedding matrix E with one learned vector per Hamming distance value."""

    def __init__(self, tau_max: int, embedding_dimension: int = 5, seed: int = 0) -> None:
        super().__init__()
        if tau_max < 0:
            raise ValueError("tau_max must be non-negative")
        self.tau_max = int(tau_max)
        self.embedding_dimension = int(embedding_dimension)
        self.table = nn.Embedding(
            self.tau_max + 1, self.embedding_dimension, rng=np.random.default_rng(seed)
        )

    def forward(self, distances) -> Tensor:
        return self.table(distances)

    def all_embeddings(self) -> Tensor:
        """Embeddings of every distance value 0..τ_max as a (τ_max+1, dim) tensor."""
        return self.table(np.arange(self.tau_max + 1))


class SharedEncoder(nn.Module):
    """Φ: FNN applied to the concatenation of x' and one distance embedding."""

    def __init__(
        self,
        representation_dimension: int,
        distance_embedding_dimension: int,
        embedding_dimension: int = 32,
        hidden_sizes: Sequence[int] = (64, 64),
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.representation_dimension = int(representation_dimension)
        self.distance_embedding_dimension = int(distance_embedding_dimension)
        self.embedding_dimension = int(embedding_dimension)
        input_dimension = representation_dimension + distance_embedding_dimension
        self.network = nn.mlp(
            [input_dimension, *hidden_sizes, embedding_dimension],
            activation=nn.ReLU,
            rng=np.random.default_rng(seed),
        )

    def forward(self, representation: Tensor, distance_embedding: Tensor) -> Tensor:
        """Embed one distance value for a batch of representations.

        ``representation`` is (batch, rep_dim); ``distance_embedding`` is either
        (emb_dim,) broadcast to the batch or (batch, emb_dim).
        """
        if distance_embedding.ndim == 1:
            tiled = Tensor(np.ones((representation.shape[0], 1))) @ distance_embedding.reshape(1, -1)
        else:
            tiled = distance_embedding
        joined = nn.concatenate([representation, tiled], axis=-1)
        return self.network(joined)

    def embed_all(self, representation: Tensor, distance_embeddings: Tensor) -> List[Tensor]:
        """Per-distance embeddings z_x^i for i = 0..τ_max (list of (batch, z_dim))."""
        outputs: List[Tensor] = []
        for index in range(distance_embeddings.shape[0]):
            outputs.append(self.forward(representation, distance_embeddings[index]))
        return outputs


class AcceleratedEncoder(nn.Module):
    """Φ′: every hidden layer emits one region of all τ_max+1 embeddings (paper §7).

    The trunk is ``f_1, …, f_n``; a per-layer head maps the layer's activation
    to ``(τ_max + 1) · r_j`` outputs, where the region widths ``r_j`` partition
    the embedding dimensionality.  Concatenating regions layer by layer yields
    the matrix ``Z`` of shape (batch, τ_max+1, z_dim); row ``i`` of ``Z`` is the
    embedding ``z_x^i``.
    """

    def __init__(
        self,
        representation_dimension: int,
        tau_max: int,
        embedding_dimension: int = 32,
        hidden_sizes: Sequence[int] = (64, 64),
        seed: int = 0,
    ) -> None:
        super().__init__()
        if not hidden_sizes:
            raise ValueError("accelerated encoder needs at least one hidden layer")
        self.representation_dimension = int(representation_dimension)
        self.tau_max = int(tau_max)
        self.embedding_dimension = int(embedding_dimension)
        rng = np.random.default_rng(seed)

        num_layers = len(hidden_sizes)
        base = embedding_dimension // num_layers
        remainder = embedding_dimension % num_layers
        self.region_widths: List[int] = [
            base + (1 if index < remainder else 0) for index in range(num_layers)
        ]

        self._trunk_layers: List[nn.Linear] = []
        self._heads: List[nn.Linear] = []
        previous = representation_dimension
        for index, width in enumerate(hidden_sizes):
            trunk = nn.Linear(previous, width, rng=rng)
            head = nn.Linear(width, (self.tau_max + 1) * self.region_widths[index], rng=rng)
            self.add_module(f"trunk{index}", trunk)
            self.add_module(f"head{index}", head)
            self._trunk_layers.append(trunk)
            self._heads.append(head)
            previous = width

    def forward(self, representation: Tensor) -> Tensor:
        """Return Z with shape (batch, τ_max+1, embedding_dimension)."""
        batch = representation.shape[0]
        regions: List[Tensor] = []
        hidden = representation
        for trunk, head, width in zip(self._trunk_layers, self._heads, self.region_widths):
            hidden = trunk(hidden).relu()
            region = head(hidden).reshape(batch, self.tau_max + 1, width)
            regions.append(region)
        return nn.concatenate(regions, axis=2)

    def embed_all(self, representation: Tensor) -> List[Tensor]:
        """Per-distance embeddings as a list (interface-compatible with Φ)."""
        z_matrix = self.forward(representation)
        return [z_matrix[:, index, :] for index in range(self.tau_max + 1)]

"""Per-distance decoders g_i and the incremental-prediction sum (paper §5.1).

Each decoder is an affine map followed by ReLU:

    g_i(x) = ReLU(w_i^T z_x^i + b_i)

so every per-distance estimate is non-negative and deterministic, which by
Lemma 2 makes the cumulative sum ``g(x, τ) = Σ_{i<=τ} g_i(x)`` monotonically
increasing in τ.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .. import nn
from ..nn import Tensor


class PerDistanceDecoders(nn.Module):
    """τ_max + 1 affine+ReLU decoders, one per Hamming distance value."""

    def __init__(self, tau_max: int, embedding_dimension: int, seed: int = 0) -> None:
        super().__init__()
        if tau_max < 0:
            raise ValueError("tau_max must be non-negative")
        self.tau_max = int(tau_max)
        self.embedding_dimension = int(embedding_dimension)
        rng = np.random.default_rng(seed)
        # One weight row and bias per distance value.
        self.weights = Tensor(
            rng.normal(0.0, 1.0 / np.sqrt(embedding_dimension), size=(tau_max + 1, embedding_dimension)),
            requires_grad=True,
        )
        self.biases = Tensor(np.zeros(tau_max + 1), requires_grad=True)

    def decode_distance(self, embedding: Tensor, distance: int) -> Tensor:
        """g_distance(x): (batch,) non-negative cardinality estimate for one distance."""
        if not 0 <= distance <= self.tau_max:
            raise IndexError(f"distance {distance} outside [0, {self.tau_max}]")
        weight = self.weights[distance].reshape(-1, 1)
        bias = self.biases[distance]
        return ((embedding @ weight).reshape(embedding.shape[0]) + bias).relu()

    def decode_all(self, embeddings: List[Tensor]) -> Tensor:
        """Stack per-distance estimates into a (batch, τ_max+1) tensor.

        ``embeddings[i]`` is the (batch, z_dim) embedding for distance i.
        """
        if len(embeddings) != self.tau_max + 1:
            raise ValueError(
                f"expected {self.tau_max + 1} embeddings, got {len(embeddings)}"
            )
        columns = [
            self.decode_distance(embedding, distance).reshape(-1, 1)
            for distance, embedding in enumerate(embeddings)
        ]
        return nn.concatenate(columns, axis=1)

    @staticmethod
    def cumulative(per_distance: Tensor, taus: np.ndarray) -> Tensor:
        """Incremental-prediction sum: ĉ_j = Σ_{i <= τ_j} g_i(x_j) for each row j.

        Implemented as a masked sum so the whole batch (with per-row τ values)
        is handled in one tensor expression.
        """
        taus = np.asarray(taus, dtype=np.int64)
        num_distances = per_distance.shape[1]
        mask = (np.arange(num_distances)[None, :] <= taus[:, None]).astype(np.float64)
        return (per_distance * Tensor(mask)).sum(axis=1)

"""Query workload generation, labelling, splitting, and out-of-dataset queries."""

from .builder import (
    SAMPLING_POLICIES,
    build_workload,
    label_queries,
    relabel,
    sample_query_indexes,
    sample_thresholds,
)
from .examples import QueryExample, Workload
from .outliers import generate_out_of_dataset_queries, k_medoids

__all__ = [
    "QueryExample",
    "Workload",
    "build_workload",
    "label_queries",
    "relabel",
    "sample_thresholds",
    "sample_query_indexes",
    "SAMPLING_POLICIES",
    "generate_out_of_dataset_queries",
    "k_medoids",
]

"""Out-of-dataset query generation for the generalizability study (paper §9.10).

The paper runs k-medoids on the dataset, generates random candidate queries of
the same data type, rejects any that already appear in the dataset, and keeps
the candidates with the largest sum of squared distances to the k medoids —
i.e. queries that look *least* like the data the models were trained on.
"""

from __future__ import annotations

import string
from typing import List, Sequence

import numpy as np

from ..datasets.synthetic import Dataset
from ..distances import get_distance


def k_medoids(
    records: Sequence,
    distance_name: str,
    num_medoids: int = 8,
    num_iterations: int = 5,
    sample_size: int = 200,
    seed: int = 0,
) -> List:
    """A light-weight k-medoids over a subsample of the dataset.

    Exact k-medoids is quadratic; the paper only needs representative medoids
    to measure "far from the data", so a PAM-style refinement over a uniform
    subsample is sufficient and keeps the experiment fast.
    """
    rng = np.random.default_rng(seed)
    distance = get_distance(distance_name)
    population = len(records)
    sample_ids = rng.choice(population, size=min(sample_size, population), replace=False)
    sample = [records[int(i)] for i in sample_ids]
    medoid_ids = rng.choice(len(sample), size=min(num_medoids, len(sample)), replace=False)
    medoids = [sample[int(i)] for i in medoid_ids]

    for _ in range(num_iterations):
        # Assign each sample point to its nearest medoid.
        assignment = np.zeros(len(sample), dtype=np.int64)
        for index, record in enumerate(sample):
            distances = [distance(record, medoid) for medoid in medoids]
            assignment[index] = int(np.argmin(distances))
        # For each cluster, pick the member minimizing total distance to the others.
        new_medoids = []
        for medoid_index in range(len(medoids)):
            member_ids = np.nonzero(assignment == medoid_index)[0]
            if member_ids.size == 0:
                new_medoids.append(medoids[medoid_index])
                continue
            members = [sample[int(i)] for i in member_ids]
            costs = [
                sum(distance(candidate, other) for other in members) for candidate in members
            ]
            new_medoids.append(members[int(np.argmin(costs))])
        medoids = new_medoids
    return medoids


def _random_record_like(dataset: Dataset, rng: np.random.Generator):
    """Draw one random record of the dataset's data type (paper §9.10 recipes)."""
    name = dataset.distance_name
    if name == "hamming":
        dimension = int(dataset.extra.get("dimension", len(dataset.records[0])))
        return rng.integers(0, 2, size=dimension).astype(np.uint8)
    if name == "edit":
        alphabet = dataset.extra.get("alphabet") or string.ascii_lowercase
        lengths = [len(record) for record in dataset.records]
        length = int(rng.integers(min(lengths), max(lengths) + 1))
        return "".join(alphabet[int(rng.integers(0, len(alphabet)))] for _ in range(length))
    if name == "jaccard":
        universe = int(dataset.extra.get("universe_size", 100))
        sizes = [len(record) for record in dataset.records]
        size = int(rng.integers(max(1, min(sizes)), max(sizes) + 1))
        return frozenset(int(v) for v in rng.choice(universe, size=min(size, universe), replace=False))
    if name == "euclidean":
        dimension = int(dataset.extra.get("dimension", len(dataset.records[0])))
        vector = rng.uniform(-1.0, 1.0, size=dimension)
        if dataset.extra.get("normalized", False):
            norm = np.linalg.norm(vector)
            vector = vector / norm if norm > 0 else vector
        return vector
    raise KeyError(f"no random-record recipe for distance {name!r}")


def generate_out_of_dataset_queries(
    dataset: Dataset,
    num_queries: int = 50,
    num_candidates: int = 250,
    num_medoids: int = 8,
    seed: int = 0,
) -> List:
    """Generate queries that significantly differ from the dataset (paper §9.10).

    Candidates are random records of the same type, filtered to exclude exact
    dataset members, ranked by the sum of squared distances to the k-medoids,
    and the top ``num_queries`` are returned.
    """
    rng = np.random.default_rng(seed)
    distance = get_distance(dataset.distance_name)
    medoids = k_medoids(dataset.records, dataset.distance_name, num_medoids=num_medoids, seed=seed)

    if dataset.distance_name == "hamming":
        existing = {np.asarray(record, dtype=np.uint8).tobytes() for record in dataset.records}

        def is_member(candidate) -> bool:
            return np.asarray(candidate, dtype=np.uint8).tobytes() in existing

    elif dataset.distance_name == "euclidean":
        def is_member(candidate) -> bool:
            return False  # continuous vectors: exact collision has probability ~0
    else:
        existing = set(dataset.records) if dataset.distance_name == "edit" else {
            frozenset(record) for record in dataset.records
        }

        def is_member(candidate) -> bool:
            return candidate in existing

    candidates = []
    attempts = 0
    while len(candidates) < num_candidates and attempts < num_candidates * 10:
        attempts += 1
        candidate = _random_record_like(dataset, rng)
        if not is_member(candidate):
            candidates.append(candidate)

    scores = [
        sum(distance(candidate, medoid) ** 2 for medoid in medoids) for candidate in candidates
    ]
    ranked = np.argsort(scores)[::-1]
    return [candidates[int(i)] for i in ranked[:num_queries]]

"""Workload construction: query sampling, threshold sampling, label generation.

Mirrors paper §6.1 and §9.1.1 / §9.12:

* a query workload Q is sampled from the dataset (10% uniform sample by
  default), then split 80 : 10 : 10 into train / validation / test;
* a set S of thresholds is sampled uniformly from [0, θ_max]; every training
  query is labelled at every threshold in S by an exact selection algorithm;
* alternative sampling policies — *multiple uniform samples* and *single
  skewed sample* (uniform over clusters, then uniform within the cluster) —
  reproduce the robustness study of §9.12 (Tables 14–16).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..datasets.synthetic import Dataset
from ..selection import SimilaritySelector, default_selector
from .examples import QueryExample, Workload

SAMPLING_POLICIES = ("single_uniform", "multi_uniform", "skewed")


def sample_thresholds(
    theta_max: float,
    num_thresholds: int,
    integer_valued: bool,
    rng: np.random.Generator,
) -> np.ndarray:
    """Uniformly sample the threshold set S ⊂ [0, θ_max] used for labelling."""
    if num_thresholds <= 0:
        raise ValueError("num_thresholds must be positive")
    if integer_valued:
        all_values = np.arange(0, int(theta_max) + 1)
        if num_thresholds >= all_values.size:
            return all_values.astype(np.float64)
        chosen = rng.choice(all_values, size=num_thresholds, replace=False)
        return np.sort(chosen).astype(np.float64)
    return np.sort(rng.uniform(0.0, theta_max, size=num_thresholds))


def sample_query_indexes(
    dataset: Dataset,
    num_queries: int,
    policy: str,
    rng: np.random.Generator,
    num_samples: int = 5,
) -> np.ndarray:
    """Pick query record indexes according to a sampling policy (paper §9.12).

    ``single_uniform``: one uniform sample of the dataset.
    ``multi_uniform``: union of ``num_samples`` smaller uniform samples
        (with replacement between samples, deduplicated).
    ``skewed``: pick a cluster uniformly at random, then a record uniformly
        from that cluster — over-representing small clusters.
    """
    if policy not in SAMPLING_POLICIES:
        raise KeyError(f"unknown sampling policy {policy!r}; options: {SAMPLING_POLICIES}")
    population = len(dataset)
    num_queries = min(num_queries, population)
    if policy == "single_uniform":
        return rng.choice(population, size=num_queries, replace=False)
    if policy == "multi_uniform":
        per_sample = max(1, num_queries // num_samples)
        picks: List[int] = []
        for _ in range(num_samples):
            picks.extend(rng.choice(population, size=per_sample, replace=False).tolist())
        unique = np.unique(np.asarray(picks, dtype=np.int64))
        if unique.size > num_queries:
            unique = rng.choice(unique, size=num_queries, replace=False)
        return unique
    # skewed: uniform over clusters, then uniform within the chosen cluster
    labels = dataset.cluster_labels
    clusters = np.unique(labels)
    picks = []
    for _ in range(num_queries):
        cluster = rng.choice(clusters)
        members = np.nonzero(labels == cluster)[0]
        picks.append(int(rng.choice(members)))
    return np.asarray(sorted(set(picks)), dtype=np.int64)


def label_queries(
    queries: Sequence,
    thresholds: Sequence[float],
    selector: SimilaritySelector,
) -> List[QueryExample]:
    """Compute exact cardinalities for every (query, threshold) combination.

    One :meth:`SimilaritySelector.cardinality_curve` call per query record
    answers every threshold from a single distance computation, instead of one
    scalar ``cardinality`` call per (query, threshold) pair.
    """
    thresholds = [float(theta) for theta in thresholds]
    examples: List[QueryExample] = []
    for record in queries:
        curve = selector.cardinality_curve(record, thresholds)
        examples.extend(
            QueryExample(record=record, theta=theta, cardinality=int(cardinality))
            for theta, cardinality in zip(thresholds, curve)
        )
    return examples


def build_workload(
    dataset: Dataset,
    query_fraction: float = 0.1,
    num_thresholds: int = 8,
    split: Sequence[float] = (0.8, 0.1, 0.1),
    policy: str = "single_uniform",
    selector: Optional[SimilaritySelector] = None,
    max_queries: Optional[int] = None,
    seed: int = 0,
) -> Workload:
    """Construct a labelled workload following the paper's §6.1 recipe.

    The split is applied at the *query record* level (as in the paper), so all
    thresholds of one query land in the same partition.  Test thresholds are
    drawn fresh from the full range [0, θ_max] rather than reusing S, matching
    the paper's "uniformly choose thresholds in S for validation and in
    [0, θ_max] for testing".
    """
    if abs(sum(split) - 1.0) > 1e-9 or len(split) != 3:
        raise ValueError("split must be three fractions summing to 1")
    rng = np.random.default_rng(seed)
    from ..distances import get_distance

    distance = get_distance(dataset.distance_name)
    if selector is None:
        selector = default_selector(dataset.distance_name, dataset.records)

    num_queries = max(3, int(round(query_fraction * len(dataset))))
    if max_queries is not None:
        num_queries = min(num_queries, max_queries)
    query_indexes = sample_query_indexes(dataset, num_queries, policy, rng)
    rng.shuffle(query_indexes)

    train_count = int(round(split[0] * len(query_indexes)))
    valid_count = int(round(split[1] * len(query_indexes)))
    train_ids = query_indexes[:train_count]
    valid_ids = query_indexes[train_count : train_count + valid_count]
    test_ids = query_indexes[train_count + valid_count :]

    thresholds = sample_thresholds(dataset.theta_max, num_thresholds, distance.integer_valued, rng)

    def records_for(ids: np.ndarray) -> List:
        if isinstance(dataset.records, np.ndarray):
            return [dataset.records[int(i)] for i in ids]
        return [dataset.records[int(i)] for i in ids]

    workload = Workload()
    workload.train = label_queries(records_for(train_ids), thresholds, selector)
    workload.validation = label_queries(records_for(valid_ids), thresholds, selector)
    test_thresholds = sample_thresholds(
        dataset.theta_max, num_thresholds, distance.integer_valued, rng
    )
    workload.test = label_queries(records_for(test_ids), test_thresholds, selector)
    return workload


def relabel(
    examples: Sequence[QueryExample], selector: SimilaritySelector
) -> List[QueryExample]:
    """Recompute labels for existing queries against an updated dataset (paper §8).

    Workloads list each query record's thresholds consecutively, so runs of
    examples sharing one record (by identity) are relabelled with a single
    ``cardinality_curve`` call instead of one scalar call per example.
    """
    examples = list(examples)
    relabelled: List[QueryExample] = []
    index = 0
    while index < len(examples):
        record = examples[index].record
        run_end = index
        while run_end < len(examples) and examples[run_end].record is record:
            run_end += 1
        run = examples[index:run_end]
        curve = selector.cardinality_curve(record, [example.theta for example in run])
        relabelled.extend(
            QueryExample(record=record, theta=example.theta, cardinality=int(cardinality))
            for example, cardinality in zip(run, curve)
        )
        index = run_end
    return relabelled


def relabel_delta(
    examples: Sequence[QueryExample],
    selector: SimilaritySelector,
    inserted: Sequence,
    removed: Sequence,
) -> List[QueryExample]:
    """Relabel against only the Δ rows an update touched (O(Δ) per query).

    Exact cardinalities are additive over disjoint record sets: after an
    update the live dataset is ``old ∪ inserted − removed`` (as multisets),
    so for every query and threshold::

        card_new = card_old + card(inserted) − card(removed)

    ``card_old`` is already stored on each example; the two delta terms come
    from *probe* selectors built over just the Δ rows — same selector type
    and configuration (via ``selector.rebuild``), so the distance semantics
    match the labels being corrected.  A record inserted and later removed
    appears in both probes and cancels exactly, so deltas accumulated across
    several operations (the manager's pending-train path) stay exact.
    """
    inserted = list(inserted)
    removed = list(removed)
    if not inserted and not removed:
        return list(examples)
    # Probe selectors over the delta rows only (O(Δ) build, not a dataset
    # rebuild on the update path).
    plus = selector.rebuild(inserted) if inserted else None  # repro: ignore[RPR010] - O(Δ) probe over delta rows, not a dataset rebuild
    minus = selector.rebuild(removed) if removed else None  # repro: ignore[RPR010] - O(Δ) probe over delta rows, not a dataset rebuild
    examples = list(examples)
    relabelled: List[QueryExample] = []
    index = 0
    while index < len(examples):
        record = examples[index].record
        run_end = index
        while run_end < len(examples) and examples[run_end].record is record:
            run_end += 1
        run = examples[index:run_end]
        thetas = [example.theta for example in run]
        old = np.asarray([example.cardinality for example in run], dtype=np.int64)
        delta = np.zeros(len(run), dtype=np.int64)
        if plus is not None:
            delta += plus.cardinality_curve(record, thetas)
        if minus is not None:
            delta -= minus.cardinality_curve(record, thetas)
        relabelled.extend(
            QueryExample(record=record, theta=example.theta, cardinality=int(cardinality))
            for example, cardinality in zip(run, old + delta)
        )
        index = run_end
    return relabelled

"""Workload data structures: labelled (record, threshold, cardinality) examples."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, List, Sequence

import numpy as np


@dataclass
class QueryExample:
    """One labelled training/evaluation instance ⟨x, θ, c⟩ (paper §6.1)."""

    record: Any
    theta: float
    cardinality: int


@dataclass
class Workload:
    """Train / validation / test splits of labelled query examples."""

    train: List[QueryExample] = field(default_factory=list)
    validation: List[QueryExample] = field(default_factory=list)
    test: List[QueryExample] = field(default_factory=list)

    def __iter__(self) -> Iterator[QueryExample]:
        yield from self.train
        yield from self.validation
        yield from self.test

    def __len__(self) -> int:
        return len(self.train) + len(self.validation) + len(self.test)

    def summary(self) -> dict:
        return {
            "train": len(self.train),
            "validation": len(self.validation),
            "test": len(self.test),
        }

    @staticmethod
    def records(examples: Sequence[QueryExample]) -> List[Any]:
        return [example.record for example in examples]

    @staticmethod
    def thetas(examples: Sequence[QueryExample]) -> np.ndarray:
        return np.asarray([example.theta for example in examples], dtype=np.float64)

    @staticmethod
    def cardinalities(examples: Sequence[QueryExample]) -> np.ndarray:
        return np.asarray([example.cardinality for example in examples], dtype=np.float64)

"""GPH Hamming-distance query processing with cardinality-driven threshold
allocation (paper §9.11.2).

GPH (Qin et al., ICDE 2018) answers a Hamming selection over high-dimensional
binary vectors by splitting the dimensions into ``m`` parts and allocating a
per-part threshold with the general pigeonhole principle: if the allocated
thresholds satisfy ``Σ_i t_i >= θ - m + 1``, every true result collides with
the query in at least one part within that part's threshold.  Candidates are
the union of per-part index lookups and are then verified exactly.

The *query optimizer* chooses the allocation that minimizes the sum of the
estimated per-part cardinalities (a dynamic program over parts × budget).
Better cardinality estimates ⇒ fewer candidates ⇒ faster queries, which is
what Fig. 13/14 measure.

The allocation DP needs the estimate for *every* per-part threshold
``t = 0..budget`` — exactly one cardinality curve per part.  Estimators
therefore implement :meth:`PartCardinalityEstimator.part_curves`, which
fetches each part's whole curve in one batched call per plan enumeration;
the legacy scalar signature ``estimator(part_index, part_bits, t)`` is kept
as a fallback (and all built-in estimators still support it).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from ..selection.hamming_index import PigeonholeHammingSelector

#: Legacy signature of a per-part cardinality estimator:
#: (part_index, part_query_bits, threshold) -> estimated count.
PartEstimator = Callable[[int, np.ndarray, int], float]


def _scalar_part_curves(
    estimator: PartEstimator,
    part_queries: Sequence[np.ndarray],
    limits: Sequence[int],
) -> List[np.ndarray]:
    """Curves fetched point by point through the scalar callable protocol."""
    return [
        np.asarray(
            [estimator(part_index, part_bits, t) for t in range(limit + 1)],
            dtype=np.float64,
        )
        for part_index, (part_bits, limit) in enumerate(zip(part_queries, limits))
    ]


class PartCardinalityEstimator:
    """Per-part estimator with a curve-batched primary operation.

    Subclasses implement the scalar ``__call__`` (kept for compatibility with
    the legacy ``PartEstimator`` callable protocol) and, when they can do
    better than a per-threshold loop, override :meth:`part_curves` — the
    operation the allocation DP actually consumes.
    """

    def __call__(self, part_index: int, part_bits: np.ndarray, threshold: int) -> float:
        raise NotImplementedError

    def part_curves(
        self, part_queries: Sequence[np.ndarray], limits: Sequence[int]
    ) -> List[np.ndarray]:
        """One cardinality curve per part: ``curves[p][t]`` estimates part ``p``
        at per-part threshold ``t`` for ``t = 0..limits[p]``."""
        return _scalar_part_curves(self, part_queries, limits)


def fetch_part_curves(
    estimator: Union[PartCardinalityEstimator, PartEstimator],
    part_queries: Sequence[np.ndarray],
    limits: Sequence[int],
) -> List[np.ndarray]:
    """Curves from a curve-capable estimator, or a scalar-loop fallback."""
    if hasattr(estimator, "part_curves"):
        return estimator.part_curves(part_queries, limits)
    return _scalar_part_curves(estimator, part_queries, limits)


@dataclass
class GPHPlan:
    """Inspectable GPH plan: the allocation the DP chose and its estimated cost."""

    threshold: int
    allocation: List[int]
    estimated_candidates: float
    allocation_seconds: float = 0.0


@dataclass
class GPHExecution:
    """Outcome of answering one Hamming query through GPH."""

    allocation: List[int]
    num_candidates: int
    num_results: int
    allocation_seconds: float
    processing_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.allocation_seconds + self.processing_seconds


class GPHQueryProcessor:
    """Pigeonhole multi-index + estimator-driven threshold allocation."""

    def __init__(
        self,
        dataset_records: Sequence,
        part_size: int = 16,
        selector: Optional[PigeonholeHammingSelector] = None,
    ) -> None:
        """``selector`` lets callers that already hold a pigeonhole index (the
        engine's attribute catalog) reuse it instead of rebuilding one."""
        if selector is None:
            selector = PigeonholeHammingSelector(dataset_records, part_size=part_size)
        elif selector.parts:
            part_size = selector.parts[0][1] - selector.parts[0][0]
        self.selector = selector
        self.part_size = part_size

    @property
    def num_parts(self) -> int:
        return len(self.selector.parts)

    def part_query(self, record: np.ndarray, part_index: int) -> np.ndarray:
        start, stop = self.selector.parts[part_index]
        return np.asarray(record, dtype=np.uint8)[start:stop]

    # ------------------------------------------------------------------ #
    # Threshold allocation
    # ------------------------------------------------------------------ #
    def allocation_budget(self, threshold: int) -> int:
        """Minimum total per-part threshold required by the pigeonhole principle."""
        return max(0, int(threshold) - self.num_parts + 1)

    def allocate(
        self,
        record: np.ndarray,
        threshold: int,
        estimator: Union[PartCardinalityEstimator, PartEstimator],
        max_part_threshold: Optional[int] = None,
    ) -> List[int]:
        """The allocation of :meth:`plan` (kept for callers that only need it)."""
        return self.plan(record, threshold, estimator, max_part_threshold).allocation

    def plan(
        self,
        record: np.ndarray,
        threshold: int,
        estimator: Union[PartCardinalityEstimator, PartEstimator],
        max_part_threshold: Optional[int] = None,
    ) -> GPHPlan:
        """Dynamic-programming allocation minimizing the estimated candidate count.

        ``cost[p][b]`` is the minimum estimated candidates using the first ``p``
        parts with a remaining budget of ``b``; part ``p`` may take any
        ``t ∈ [0, min(b, part width)]`` at cost ``curve_p[t]``.  The per-part
        curves are fetched in one batched request per plan enumeration
        (:func:`fetch_part_curves`) rather than one scalar estimate per
        (part, threshold) pair.  The returned plan carries the allocation AND
        the DP's estimated candidate count, so executors and feedback monitors
        can compare the estimate against the observed cost.
        """
        allocation_start = time.perf_counter()
        record = np.asarray(record, dtype=np.uint8)
        num_parts = self.num_parts
        budget = self.allocation_budget(threshold)
        part_widths = [stop - start for start, stop in self.selector.parts]
        if max_part_threshold is not None:
            part_widths = [min(width, max_part_threshold) for width in part_widths]

        # Whole cardinality curve per (part, per-part threshold), batched.
        part_queries = [self.part_query(record, p) for p in range(num_parts)]
        limits = [min(width, budget) for width in part_widths]
        estimates = fetch_part_curves(estimator, part_queries, limits)

        infinity = float("inf")
        cost = np.full((num_parts + 1, budget + 1), infinity)
        choice = np.zeros((num_parts + 1, budget + 1), dtype=np.int64)
        cost[0, budget] = 0.0
        for part_index in range(num_parts):
            for remaining in range(budget + 1):
                if cost[part_index, remaining] == infinity:
                    continue
                max_t = min(len(estimates[part_index]) - 1, remaining)
                for t in range(max_t + 1):
                    new_remaining = remaining - t
                    candidate_cost = cost[part_index, remaining] + estimates[part_index][t]
                    if candidate_cost < cost[part_index + 1, new_remaining]:
                        cost[part_index + 1, new_remaining] = candidate_cost
                        choice[part_index + 1, new_remaining] = t

        # The DP must end with the full budget spent (remaining == 0); spending
        # more than the minimum only adds candidates, so remaining 0 is optimal
        # whenever reachable.  Fall back to the best reachable state otherwise.
        final_remaining = 0
        if cost[num_parts, 0] == infinity:
            reachable = np.nonzero(cost[num_parts] < infinity)[0]
            final_remaining = int(reachable[0]) if reachable.size else budget

        allocation = [0] * num_parts
        remaining = final_remaining
        for part_index in range(num_parts, 0, -1):
            t = int(choice[part_index, remaining])
            allocation[part_index - 1] = t
            remaining += t
        estimated = float(cost[num_parts, final_remaining])
        return GPHPlan(
            threshold=int(threshold),
            allocation=allocation,
            estimated_candidates=estimated if np.isfinite(estimated) else 0.0,
            allocation_seconds=time.perf_counter() - allocation_start,
        )

    # ------------------------------------------------------------------ #
    # Query answering
    # ------------------------------------------------------------------ #
    def execute(
        self,
        record: np.ndarray,
        threshold: int,
        estimator: Optional[Union[PartCardinalityEstimator, PartEstimator]] = None,
        max_part_threshold: Optional[int] = None,
        plan: Optional[GPHPlan] = None,
    ) -> GPHExecution:
        """Execute one Hamming query, planning first unless a plan is supplied."""
        record = np.asarray(record, dtype=np.uint8)
        if plan is None:
            if estimator is None:
                raise ValueError("either an estimator or a precomputed plan is required")
            plan = self.plan(record, threshold, estimator, max_part_threshold)

        processing_start = time.perf_counter()
        results, num_candidates = self.selector.verified_candidates(
            record, threshold, allocation=plan.allocation
        )
        processing_seconds = time.perf_counter() - processing_start
        return GPHExecution(
            allocation=plan.allocation,
            num_candidates=num_candidates,
            num_results=len(results),
            allocation_seconds=plan.allocation_seconds,
            processing_seconds=processing_seconds,
        )


# --------------------------------------------------------------------------- #
# Ready-made per-part estimators for the benchmark comparison
# --------------------------------------------------------------------------- #
class ExactPartCardinalities(PartCardinalityEstimator):
    """Oracle: exact per-part cardinalities (scan of the part columns)."""

    def __init__(self, processor: GPHQueryProcessor, dataset_records: Sequence) -> None:
        self._matrix = np.asarray(dataset_records, dtype=np.uint8)
        self._parts = processor.selector.parts

    def _part_distances(self, part_index: int, part_bits: np.ndarray) -> np.ndarray:
        start, stop = self._parts[part_index]
        return np.count_nonzero(self._matrix[:, start:stop] != part_bits[None, :], axis=1)

    def __call__(self, part_index: int, part_bits: np.ndarray, threshold: int) -> float:
        distances = self._part_distances(part_index, part_bits)
        return float(np.count_nonzero(distances <= threshold))

    def part_curves(
        self, part_queries: Sequence[np.ndarray], limits: Sequence[int]
    ) -> List[np.ndarray]:
        """One column scan per part answers every per-part threshold at once."""
        curves = []
        for part_index, (part_bits, limit) in enumerate(zip(part_queries, limits)):
            distances = self._part_distances(part_index, part_bits)
            counts = np.bincount(np.minimum(distances, limit + 1), minlength=limit + 2)
            curves.append(np.cumsum(counts[: limit + 1]).astype(np.float64))
        return curves


class MeanPartCardinalities(PartCardinalityEstimator):
    """Naive: query-independent mean cardinality per (part, threshold)."""

    def __init__(self, processor: GPHQueryProcessor, dataset_records: Sequence) -> None:
        from scipy.stats import binom

        matrix = np.asarray(dataset_records, dtype=np.uint8)
        num_records = matrix.shape[0]
        self._tables: List[np.ndarray] = []
        for start, stop in processor.selector.parts:
            width = stop - start
            # Expected count under a "random query" model: use the dataset's own
            # records as queries and average the distance distribution.
            # Mean-field approximation: bit b differs with probability
            # 2·p_b·(1 - p_b); the total distance is approximated by a binomial.
            ones_fraction = matrix[:, start:stop].mean(axis=0)
            diff_probability = float(np.mean(2.0 * ones_fraction * (1.0 - ones_fraction)))
            expected_distribution = binom.pmf(np.arange(width + 1), width, diff_probability)
            self._tables.append(np.cumsum(expected_distribution) * num_records)

    def __call__(self, part_index: int, part_bits: np.ndarray, threshold: int) -> float:
        table = self._tables[part_index]
        return float(table[min(threshold, len(table) - 1)])

    def part_curves(
        self, part_queries: Sequence[np.ndarray], limits: Sequence[int]
    ) -> List[np.ndarray]:
        """Query-independent: the curves are precomputed table prefixes."""
        curves = []
        for part_index, limit in enumerate(limits):
            table = self._tables[part_index]
            columns = np.minimum(np.arange(limit + 1), len(table) - 1)
            curves.append(table[columns])
        return curves


class HistogramPartCardinalities(PartCardinalityEstimator):
    """DB histogram estimator applied to each part independently."""

    def __init__(
        self, processor: GPHQueryProcessor, dataset_records: Sequence, group_size: int = 8
    ) -> None:
        from ..baselines.db_specialized import HistogramHammingEstimator

        matrix = np.asarray(dataset_records, dtype=np.uint8)
        self._estimators = [
            HistogramHammingEstimator(matrix[:, start:stop], group_size=group_size)
            for start, stop in processor.selector.parts
        ]

    def __call__(self, part_index: int, part_bits: np.ndarray, threshold: int) -> float:
        return self._estimators[part_index].estimate(part_bits, threshold)

    def part_curves(
        self, part_queries: Sequence[np.ndarray], limits: Sequence[int]
    ) -> List[np.ndarray]:
        """One ``estimate_curve_many`` call per part (whole curve at once)."""
        return [
            self._estimators[part_index].estimate_curve_many(
                [part_bits], np.arange(limit + 1, dtype=np.float64)
            )[0]
            for part_index, (part_bits, limit) in enumerate(zip(part_queries, limits))
        ]


class ModelPartCardinalities(PartCardinalityEstimator):
    """Adapter: one trained CardinalityEstimator per part (e.g. CardNet-A models)."""

    def __init__(self, processor: GPHQueryProcessor, estimators: Sequence) -> None:
        estimators = list(estimators)
        if len(estimators) != processor.num_parts:
            raise ValueError(
                f"expected {processor.num_parts} per-part estimators, got {len(estimators)}"
            )
        self._estimators = estimators

    def __call__(self, part_index: int, part_bits: np.ndarray, threshold: int) -> float:
        return float(self._estimators[part_index].estimate(part_bits, threshold))

    def part_curves(
        self, part_queries: Sequence[np.ndarray], limits: Sequence[int]
    ) -> List[np.ndarray]:
        """One curve-batched call per part-model instead of ``limit+1`` scalars."""
        return [
            np.asarray(
                self._estimators[part_index].estimate_curve_many(
                    [part_bits], np.arange(limit + 1, dtype=np.float64)
                )[0],
                dtype=np.float64,
            )
            for part_index, (part_bits, limit) in enumerate(zip(part_queries, limits))
        ]


def exact_part_estimator(
    processor: GPHQueryProcessor, dataset_records: Sequence
) -> ExactPartCardinalities:
    """Oracle: exact per-part cardinalities (scan of the part columns)."""
    return ExactPartCardinalities(processor, dataset_records)


def mean_part_estimator(
    processor: GPHQueryProcessor, dataset_records: Sequence
) -> MeanPartCardinalities:
    """Naive: query-independent mean cardinality per (part, threshold)."""
    return MeanPartCardinalities(processor, dataset_records)


def histogram_part_estimator(
    processor: GPHQueryProcessor, dataset_records: Sequence, group_size: int = 8
) -> HistogramPartCardinalities:
    """DB histogram estimator applied to each part independently."""
    return HistogramPartCardinalities(processor, dataset_records, group_size=group_size)


def model_part_estimator(
    processor: GPHQueryProcessor, estimators: Sequence
) -> ModelPartCardinalities:
    """Adapter: one trained CardinalityEstimator per part (e.g. CardNet-A models)."""
    return ModelPartCardinalities(processor, estimators)

"""GPH Hamming-distance query processing with cardinality-driven threshold
allocation (paper §9.11.2).

GPH (Qin et al., ICDE 2018) answers a Hamming selection over high-dimensional
binary vectors by splitting the dimensions into ``m`` parts and allocating a
per-part threshold with the general pigeonhole principle: if the allocated
thresholds satisfy ``Σ_i t_i >= θ - m + 1``, every true result collides with
the query in at least one part within that part's threshold.  Candidates are
the union of per-part index lookups and are then verified exactly.

The *query optimizer* chooses the allocation that minimizes the sum of the
estimated per-part cardinalities (a dynamic program over parts × budget).
Better cardinality estimates ⇒ fewer candidates ⇒ faster queries, which is
what Fig. 13/14 measure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..selection.hamming_index import PigeonholeHammingSelector

#: Signature of a per-part cardinality estimator:
#: (part_index, part_query_bits, threshold) -> estimated count.
PartEstimator = Callable[[int, np.ndarray, int], float]


@dataclass
class GPHExecution:
    """Outcome of answering one Hamming query through GPH."""

    allocation: List[int]
    num_candidates: int
    num_results: int
    allocation_seconds: float
    processing_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.allocation_seconds + self.processing_seconds


class GPHQueryProcessor:
    """Pigeonhole multi-index + estimator-driven threshold allocation."""

    def __init__(self, dataset_records: Sequence, part_size: int = 16) -> None:
        self.selector = PigeonholeHammingSelector(dataset_records, part_size=part_size)
        self.part_size = part_size

    @property
    def num_parts(self) -> int:
        return len(self.selector.parts)

    def part_query(self, record: np.ndarray, part_index: int) -> np.ndarray:
        start, stop = self.selector.parts[part_index]
        return np.asarray(record, dtype=np.uint8)[start:stop]

    # ------------------------------------------------------------------ #
    # Threshold allocation
    # ------------------------------------------------------------------ #
    def allocation_budget(self, threshold: int) -> int:
        """Minimum total per-part threshold required by the pigeonhole principle."""
        return max(0, int(threshold) - self.num_parts + 1)

    def allocate(
        self,
        record: np.ndarray,
        threshold: int,
        estimator: PartEstimator,
        max_part_threshold: Optional[int] = None,
    ) -> List[int]:
        """Dynamic-programming allocation minimizing the estimated candidate count.

        ``cost[p][b]`` is the minimum estimated candidates using the first ``p``
        parts with a remaining budget of ``b``; part ``p`` may take any
        ``t ∈ [0, min(b, part width)]`` at cost ``estimator(p, q_p, t)``.
        """
        record = np.asarray(record, dtype=np.uint8)
        num_parts = self.num_parts
        budget = self.allocation_budget(threshold)
        part_widths = [stop - start for start, stop in self.selector.parts]
        if max_part_threshold is not None:
            part_widths = [min(width, max_part_threshold) for width in part_widths]

        # Estimated cardinality per (part, per-part threshold).
        estimates: List[np.ndarray] = []
        for part_index in range(num_parts):
            width = part_widths[part_index]
            part_bits = self.part_query(record, part_index)
            estimates.append(
                np.asarray(
                    [estimator(part_index, part_bits, t) for t in range(min(width, budget) + 1)]
                )
            )

        infinity = float("inf")
        cost = np.full((num_parts + 1, budget + 1), infinity)
        choice = np.zeros((num_parts + 1, budget + 1), dtype=np.int64)
        cost[0, budget] = 0.0
        for part_index in range(num_parts):
            for remaining in range(budget + 1):
                if cost[part_index, remaining] == infinity:
                    continue
                max_t = min(len(estimates[part_index]) - 1, remaining)
                for t in range(max_t + 1):
                    new_remaining = remaining - t
                    candidate_cost = cost[part_index, remaining] + estimates[part_index][t]
                    if candidate_cost < cost[part_index + 1, new_remaining]:
                        cost[part_index + 1, new_remaining] = candidate_cost
                        choice[part_index + 1, new_remaining] = t

        # The DP must end with the full budget spent (remaining == 0); spending
        # more than the minimum only adds candidates, so remaining 0 is optimal
        # whenever reachable.  Fall back to the best reachable state otherwise.
        final_remaining = 0
        if cost[num_parts, 0] == infinity:
            reachable = np.nonzero(cost[num_parts] < infinity)[0]
            final_remaining = int(reachable[0]) if reachable.size else budget

        allocation = [0] * num_parts
        remaining = final_remaining
        for part_index in range(num_parts, 0, -1):
            t = int(choice[part_index, remaining])
            allocation[part_index - 1] = t
            remaining += t
        return allocation

    # ------------------------------------------------------------------ #
    # Query answering
    # ------------------------------------------------------------------ #
    def execute(
        self,
        record: np.ndarray,
        threshold: int,
        estimator: PartEstimator,
        max_part_threshold: Optional[int] = None,
    ) -> GPHExecution:
        record = np.asarray(record, dtype=np.uint8)
        allocation_start = time.perf_counter()
        allocation = self.allocate(record, threshold, estimator, max_part_threshold)
        allocation_seconds = time.perf_counter() - allocation_start

        processing_start = time.perf_counter()
        candidates = self.selector.candidates(record, allocation)
        results = self.selector.query(record, threshold, allocation=allocation)
        processing_seconds = time.perf_counter() - processing_start
        return GPHExecution(
            allocation=allocation,
            num_candidates=int(candidates.size),
            num_results=len(results),
            allocation_seconds=allocation_seconds,
            processing_seconds=processing_seconds,
        )


# --------------------------------------------------------------------------- #
# Ready-made per-part estimators for the benchmark comparison
# --------------------------------------------------------------------------- #
def exact_part_estimator(processor: GPHQueryProcessor, dataset_records: Sequence) -> PartEstimator:
    """Oracle: exact per-part cardinalities (scan of the part columns)."""
    matrix = np.asarray(dataset_records, dtype=np.uint8)
    parts = processor.selector.parts

    def estimate(part_index: int, part_bits: np.ndarray, threshold: int) -> float:
        start, stop = parts[part_index]
        distances = np.count_nonzero(matrix[:, start:stop] != part_bits[None, :], axis=1)
        return float(np.count_nonzero(distances <= threshold))

    return estimate


def mean_part_estimator(processor: GPHQueryProcessor, dataset_records: Sequence) -> PartEstimator:
    """Naive: query-independent mean cardinality per (part, threshold)."""
    matrix = np.asarray(dataset_records, dtype=np.uint8)
    parts = processor.selector.parts
    num_records = matrix.shape[0]
    tables: List[np.ndarray] = []
    for start, stop in parts:
        width = stop - start
        # Expected count under a "random query" model: use the dataset's own
        # records as queries and average the distance distribution.
        ones_fraction = matrix[:, start:stop].mean(axis=0)
        expected_distribution = np.zeros(width + 1)
        # Mean-field approximation: bit b differs with probability
        # 2·p_b·(1 - p_b); the total distance is approximated by a binomial.
        diff_probability = float(np.mean(2.0 * ones_fraction * (1.0 - ones_fraction)))
        from scipy.stats import binom

        expected_distribution = binom.pmf(np.arange(width + 1), width, diff_probability)
        tables.append(np.cumsum(expected_distribution) * num_records)

    def estimate(part_index: int, part_bits: np.ndarray, threshold: int) -> float:
        table = tables[part_index]
        return float(table[min(threshold, len(table) - 1)])

    return estimate


def histogram_part_estimator(
    processor: GPHQueryProcessor, dataset_records: Sequence, group_size: int = 8
) -> PartEstimator:
    """DB histogram estimator applied to each part independently."""
    from ..baselines.db_specialized import HistogramHammingEstimator

    matrix = np.asarray(dataset_records, dtype=np.uint8)
    parts = processor.selector.parts
    estimators = [
        HistogramHammingEstimator(matrix[:, start:stop], group_size=group_size)
        for start, stop in parts
    ]

    def estimate(part_index: int, part_bits: np.ndarray, threshold: int) -> float:
        return estimators[part_index].estimate(part_bits, threshold)

    return estimate


def model_part_estimator(processor: GPHQueryProcessor, estimators: Sequence) -> PartEstimator:
    """Adapter: one trained CardinalityEstimator per part (e.g. CardNet-A models)."""
    estimators = list(estimators)
    if len(estimators) != processor.num_parts:
        raise ValueError(
            f"expected {processor.num_parts} per-part estimators, got {len(estimators)}"
        )

    def estimate(part_index: int, part_bits: np.ndarray, threshold: int) -> float:
        return float(estimators[part_index].estimate(part_bits, threshold))

    return estimate

"""Query-optimizer case studies driven by cardinality estimation (paper §9.11)."""

from .conjunctive import (
    ConjunctiveQuery,
    ConjunctiveQueryProcessor,
    Predicate,
    QueryExecution,
    WorkloadReport,
    generate_conjunctive_queries,
    run_conjunctive_workload,
)
from .gph import (
    ExactPartCardinalities,
    GPHExecution,
    GPHQueryProcessor,
    HistogramPartCardinalities,
    MeanPartCardinalities,
    ModelPartCardinalities,
    PartCardinalityEstimator,
    exact_part_estimator,
    fetch_part_curves,
    histogram_part_estimator,
    mean_part_estimator,
    model_part_estimator,
)

__all__ = [
    "PartCardinalityEstimator",
    "ExactPartCardinalities",
    "MeanPartCardinalities",
    "HistogramPartCardinalities",
    "ModelPartCardinalities",
    "fetch_part_curves",
    "Predicate",
    "ConjunctiveQuery",
    "ConjunctiveQueryProcessor",
    "QueryExecution",
    "WorkloadReport",
    "generate_conjunctive_queries",
    "run_conjunctive_workload",
    "GPHQueryProcessor",
    "GPHExecution",
    "exact_part_estimator",
    "mean_part_estimator",
    "histogram_part_estimator",
    "model_part_estimator",
]

"""Conjunctive similarity-query optimizer case study (paper §9.11.1).

A query is a conjunction of Euclidean-distance predicates over the attributes
of a multi-attribute relation (the paper's example: blocking rules for entity
matching).  The processing strategy mirrors the paper:

1. estimate the cardinality of every predicate;
2. pick the predicate with the smallest estimate and answer it with an index
   lookup (a ball-partition index here, a cover tree in the paper);
3. verify the remaining predicates on the fly over the retrieved candidates.

The quality of the cardinality estimator determines how often the truly most
selective predicate is chosen (*planning precision*, Fig. 12) and hence the
end-to-end processing cost (Fig. 11).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.interface import CardinalityEstimator
from ..datasets.relations import MultiAttributeRelation
from ..selection.euclidean_index import BallIndexEuclideanSelector


@dataclass
class Predicate:
    """One Euclidean-distance predicate ``||relation[attribute] - vector|| <= threshold``."""

    attribute: str
    vector: np.ndarray
    threshold: float


@dataclass
class ConjunctiveQuery:
    """A conjunction of predicates over distinct attributes."""

    predicates: List[Predicate]

    def attributes(self) -> List[str]:
        return [predicate.attribute for predicate in self.predicates]


@dataclass
class ConjunctivePlan:
    """Inspectable plan for one conjunctive query.

    The planner's whole decision is captured here before anything executes:
    per-predicate estimates (in the query's own predicate order), the chosen
    driving predicate, and the order the remaining predicates are verified in
    (ascending estimate, so the most selective residual prunes first).
    """

    query: ConjunctiveQuery
    estimates: Dict[str, float]
    chosen_attribute: str
    verify_order: List[str]
    estimation_seconds: float = 0.0

    @property
    def estimated_candidates(self) -> float:
        return self.estimates[self.chosen_attribute]


@dataclass
class QueryExecution:
    """Outcome of executing one conjunctive query under some planning policy."""

    chosen_attribute: str
    result_ids: List[int]
    candidates_examined: int
    estimation_seconds: float
    processing_seconds: float
    optimal_attribute: str

    @property
    def picked_optimal(self) -> bool:
        return self.chosen_attribute == self.optimal_attribute


class ConjunctiveQueryProcessor:
    """Plans and executes conjunctive Euclidean-predicate queries."""

    def __init__(self, relation: MultiAttributeRelation, num_pivots: int = 16, seed: int = 0) -> None:
        self.relation = relation
        self.indexes: Dict[str, BallIndexEuclideanSelector] = {
            attribute: BallIndexEuclideanSelector(matrix, num_pivots=num_pivots, seed=seed)
            for attribute, matrix in relation.attributes.items()
        }

    # ------------------------------------------------------------------ #
    # Exact per-predicate answers (ground truth for precision measurement)
    # ------------------------------------------------------------------ #
    def predicate_matches(self, predicate: Predicate) -> List[int]:
        return self.indexes[predicate.attribute].query(predicate.vector, predicate.threshold)

    def true_cardinalities(self, query: ConjunctiveQuery) -> Dict[str, int]:
        return {
            predicate.attribute: len(self.predicate_matches(predicate))
            for predicate in query.predicates
        }

    def answer(self, query: ConjunctiveQuery) -> List[int]:
        """Exact answer of the conjunction (intersection of all predicates)."""
        result: Optional[set] = None
        for predicate in query.predicates:
            matches = set(self.predicate_matches(predicate))
            result = matches if result is None else (result & matches)
        return sorted(result or set())

    # ------------------------------------------------------------------ #
    # Batched planning
    # ------------------------------------------------------------------ #
    def plan_estimates(
        self,
        queries: Sequence[ConjunctiveQuery],
        estimators: Dict[str, CardinalityEstimator],
    ) -> List[Dict[str, float]]:
        """Per-predicate estimates for a whole workload, batched per attribute.

        Every attribute's estimator receives exactly ONE ``estimate_batch``
        call covering that attribute's predicates across all queries, instead
        of one scalar ``estimate`` call per (query, predicate) pair.
        """
        queries = list(queries)
        gathered: Dict[str, List[tuple[int, np.ndarray, float]]] = {}
        for query_index, query in enumerate(queries):
            for predicate in query.predicates:
                if not hasattr(predicate, "vector"):
                    raise TypeError(
                        f"expected repro.optimizer Predicate, got {type(predicate).__name__}; "
                        "repro.engine.ConjunctiveQuery specs run through "
                        "SimilarityQueryEngine, not this processor"
                    )
                gathered.setdefault(predicate.attribute, []).append(
                    (query_index, predicate.vector, predicate.threshold)
                )
        estimates: List[Dict[str, float]] = [{} for _ in queries]
        for attribute, requests in gathered.items():
            values = estimators[attribute].estimate_batch(
                [vector for _, vector, _ in requests],
                [threshold for _, _, threshold in requests],
            )
            for (query_index, _, _), value in zip(requests, values):
                estimates[query_index][attribute] = float(value)
        # Each dict must follow the query's own predicate order: the planner's
        # argmin breaks ties by insertion order, and the legacy per-query path
        # inserts in predicate order — batching must not change tie-breaks.
        return [
            {predicate.attribute: values[predicate.attribute] for predicate in query.predicates}
            for query, values in zip(queries, estimates)
        ]

    # ------------------------------------------------------------------ #
    # Planning (plan objects, consumed by execute_plan and repro.engine)
    # ------------------------------------------------------------------ #
    def _plan_from_estimates(
        self,
        query: ConjunctiveQuery,
        estimates: Dict[str, float],
        estimation_seconds: float = 0.0,
    ) -> ConjunctivePlan:
        # min() breaks ties by insertion order = the query's predicate order,
        # matching the legacy inline-argmin behavior exactly.
        chosen_attribute = min(estimates, key=estimates.get)
        verify_order = sorted(
            (attribute for attribute in estimates if attribute != chosen_attribute),
            key=estimates.get,
        )
        return ConjunctivePlan(
            query=query,
            estimates=estimates,
            chosen_attribute=chosen_attribute,
            verify_order=verify_order,
            estimation_seconds=estimation_seconds,
        )

    def plan(
        self, query: ConjunctiveQuery, estimators: Dict[str, CardinalityEstimator]
    ) -> ConjunctivePlan:
        """Plan one query: estimate every predicate and pick the driver."""
        estimation_start = time.perf_counter()
        estimates = self.plan_estimates([query], estimators)[0]
        return self._plan_from_estimates(
            query, estimates, time.perf_counter() - estimation_start
        )

    def plan_workload(
        self,
        queries: Sequence[ConjunctiveQuery],
        estimators: Dict[str, CardinalityEstimator],
    ) -> List[ConjunctivePlan]:
        """Plans for a whole workload, one batched estimator call per attribute;
        each plan carries its amortized share of the estimation time."""
        queries = list(queries)
        if not queries:
            return []
        estimation_start = time.perf_counter()
        workload_estimates = self.plan_estimates(queries, estimators)
        per_query_seconds = (time.perf_counter() - estimation_start) / len(queries)
        return [
            self._plan_from_estimates(query, estimates, per_query_seconds)
            for query, estimates in zip(queries, workload_estimates)
        ]

    # ------------------------------------------------------------------ #
    # Planned execution
    # ------------------------------------------------------------------ #
    def execute_plan(self, plan: ConjunctivePlan) -> QueryExecution:
        """Execute a previously produced plan: one index lookup for the driving
        predicate, then vectorized verification of the residual predicates over
        the shrinking candidate set."""
        query = plan.query
        by_attribute = {predicate.attribute: predicate for predicate in query.predicates}

        processing_start = time.perf_counter()
        chosen_predicate = by_attribute[plan.chosen_attribute]
        candidates = self.predicate_matches(chosen_predicate)
        surviving = np.asarray(candidates, dtype=np.int64)
        for attribute in plan.verify_order:
            if surviving.size == 0:
                break
            predicate = by_attribute[attribute]
            block = self.relation.attribute(attribute)[surviving]
            deltas = block - predicate.vector[None, :]
            distances = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
            surviving = surviving[distances <= predicate.threshold + 1e-12]
        result = [int(record_id) for record_id in surviving]
        processing_seconds = time.perf_counter() - processing_start

        true_cardinalities = self.true_cardinalities(query)
        optimal_attribute = min(true_cardinalities, key=true_cardinalities.get)
        return QueryExecution(
            chosen_attribute=plan.chosen_attribute,
            result_ids=result,
            candidates_examined=len(candidates),
            estimation_seconds=plan.estimation_seconds,
            processing_seconds=processing_seconds,
            optimal_attribute=optimal_attribute,
        )

    def execute(
        self,
        query: ConjunctiveQuery,
        estimators: Dict[str, CardinalityEstimator],
        precomputed_estimates: Optional[Dict[str, float]] = None,
        estimation_seconds: float = 0.0,
    ) -> QueryExecution:
        """Plan (unless estimates are precomputed) and execute one query.

        ``estimators[attribute]`` estimates the cardinality of a predicate on
        that attribute.  The exact per-predicate cardinalities are computed as
        well (outside the timed region) to determine the optimal plan.  When
        ``precomputed_estimates`` is given (the workload-batched path of
        :func:`run_conjunctive_workload`), ``estimation_seconds`` carries this
        query's amortized share of the batched estimation time.
        """
        if precomputed_estimates is None:
            plan = self.plan(query, estimators)
        else:
            plan = self._plan_from_estimates(query, precomputed_estimates, estimation_seconds)
        return self.execute_plan(plan)


@dataclass
class WorkloadReport:
    """Aggregate of executing a conjunctive-query workload with one estimator set."""

    total_estimation_seconds: float = 0.0
    total_processing_seconds: float = 0.0
    total_candidates: int = 0
    precision_hits: int = 0
    num_queries: int = 0
    executions: List[QueryExecution] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.total_estimation_seconds + self.total_processing_seconds

    @property
    def planning_precision(self) -> float:
        return self.precision_hits / self.num_queries if self.num_queries else 0.0

    def add(self, execution: QueryExecution) -> None:
        self.total_estimation_seconds += execution.estimation_seconds
        self.total_processing_seconds += execution.processing_seconds
        self.total_candidates += execution.candidates_examined
        self.precision_hits += int(execution.picked_optimal)
        self.num_queries += 1
        self.executions.append(execution)


def run_conjunctive_workload(
    processor: ConjunctiveQueryProcessor,
    queries: Sequence[ConjunctiveQuery],
    estimators: Dict[str, CardinalityEstimator],
    batch_planning: bool = True,
) -> WorkloadReport:
    """Execute a query workload and aggregate timing / planning precision.

    With ``batch_planning`` (the default) all predicate estimates for the
    workload are fetched up front with one batched call per attribute
    estimator; each execution's ``estimation_seconds`` is its amortized share
    of that planning time.  ``batch_planning=False`` keeps the legacy
    one-query-at-a-time estimation loop.
    """
    queries = list(queries)
    report = WorkloadReport()
    if batch_planning and queries:
        for plan in processor.plan_workload(queries, estimators):
            report.add(processor.execute_plan(plan))
        return report
    for query in queries:
        report.add(processor.execute(query, estimators))
    return report


def generate_conjunctive_queries(
    relation: MultiAttributeRelation,
    num_queries: int = 50,
    threshold_range: Sequence[float] = (0.2, 0.5),
    noise_std: float = 0.05,
    seed: int = 0,
) -> List[ConjunctiveQuery]:
    """Sample conjunctive queries: a perturbed copy of a random record's attributes
    with per-predicate thresholds uniform in ``threshold_range`` (paper §9.11.1)."""
    rng = np.random.default_rng(seed)
    low, high = threshold_range
    queries: List[ConjunctiveQuery] = []
    num_records = len(relation)
    for _ in range(num_queries):
        record_id = int(rng.integers(0, num_records))
        predicates = []
        for attribute, matrix in relation.attributes.items():
            vector = matrix[record_id] + rng.normal(0.0, noise_std, size=matrix.shape[1])
            norm = np.linalg.norm(vector)
            if norm > 0:
                vector = vector / norm
            predicates.append(
                Predicate(attribute=attribute, vector=vector, threshold=float(rng.uniform(low, high)))
            )
        queries.append(ConjunctiveQuery(predicates=predicates))
    return queries

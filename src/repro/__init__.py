"""repro — reproduction of "Monotonic Cardinality Estimation of Similarity Selection:
A Deep Learning Approach" (SIGMOD 2020).

Public API highlights
---------------------
* :class:`repro.core.CardNetEstimator` — the CardNet / CardNet-A estimator.
* :mod:`repro.datasets` — synthetic datasets standing in for the paper's corpora.
* :mod:`repro.workloads` — query workload and label generation.
* :mod:`repro.baselines` — every estimator the paper compares against.
* :mod:`repro.optimizer` — the query-optimizer case studies (§9.11).
* :mod:`repro.serving` — registry + micro-batching service + curve cache.
* :mod:`repro.engine` — end-to-end query engine (plan → execute → feedback).
* :mod:`repro.sharding` — horizontal scale-out: partitioned exact selection
  and per-shard serving endpoints merged by curve summation.
* :mod:`repro.store` — versioned engine snapshots, warm-start restore, and
  snapshot-spawned read replicas.
* :mod:`repro.runtime` — the shared concurrent execution layer: named worker
  pools with explicit backpressure, request coalescing, one runtime under
  serving, sharding, replicas, and the engine.
* :mod:`repro.obs` — observability: span traces across threads and forked
  workers, mergeable histogram metrics with Prometheus/JSON exposition, and
  ``Engine.explain_analyze``.
* :mod:`repro.analysis` — AST contract linter enforcing the repo's
  concurrency, snapshot, and determinism invariants
  (``python -m repro.analysis src benchmarks tests``).
"""

from .core import CardinalityEstimator, CardNet, CardNetConfig, CardNetEstimator
from .datasets import DEFAULT_DATASETS, load_dataset
from .engine import ConjunctiveQuery, SimilarityPredicate, SimilarityQueryEngine
from .metrics import AccuracyReport, mape, mean_q_error, mse
from .obs import (
    MetricsRegistry,
    Span,
    enable_tracing,
    span,
    start_trace,
    tracing_enabled,
)
from .runtime import BatchCoalescer, Runtime, WorkerPool, default_runtime
from .serving import CurveCache, EstimationService, EstimatorRegistry
from .sharding import ShardedEstimatorGroup, ShardedSelector
from .store import ReplicaSet, load_engine, save_engine
from .workloads import Workload, build_workload

__version__ = "1.4.0"

__all__ = [
    "CardNet",
    "CardNetConfig",
    "CardNetEstimator",
    "CardinalityEstimator",
    "EstimationService",
    "EstimatorRegistry",
    "CurveCache",
    "SimilarityQueryEngine",
    "SimilarityPredicate",
    "ConjunctiveQuery",
    "ShardedSelector",
    "ShardedEstimatorGroup",
    "ReplicaSet",
    "Runtime",
    "WorkerPool",
    "BatchCoalescer",
    "default_runtime",
    "save_engine",
    "load_engine",
    "load_dataset",
    "DEFAULT_DATASETS",
    "build_workload",
    "Workload",
    "AccuracyReport",
    "mse",
    "mape",
    "mean_q_error",
    "MetricsRegistry",
    "Span",
    "enable_tracing",
    "span",
    "start_trace",
    "tracing_enabled",
    "__version__",
]

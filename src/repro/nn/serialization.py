"""Saving and loading model parameters.

Models are persisted as ``.npz`` archives of their flat ``state_dict``.  The
model-size benchmark (paper Table 9) reports the size of these archives.
"""

from __future__ import annotations

import io
import os
from pathlib import Path
from typing import Union

import numpy as np

from .module import Module

PathLike = Union[str, os.PathLike]


def _archive_path(path: Path) -> Path:
    """The file :func:`numpy.savez` actually writes: ``np.savez`` appends a
    ``.npz`` suffix whenever the given name lacks one."""
    return path if path.name.endswith(".npz") else path.with_name(path.name + ".npz")


def save_module(module: Module, path: PathLike) -> int:
    """Serialize ``module`` parameters to ``path`` and return the byte size.

    The size is taken from the archive ``np.savez`` actually produced —
    for a suffix-less ``path``, numpy writes ``path.npz``, so statting
    ``path`` itself would raise (or measure an unrelated file).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    # npz keys cannot contain '/', dots are fine.
    np.savez(path, **state)
    return _archive_path(path).stat().st_size


def load_module(module: Module, path: PathLike) -> Module:
    """Load parameters saved by :func:`save_module` into ``module`` in place.

    Accepts the same path that was passed to :func:`save_module`, with or
    without the ``.npz`` suffix numpy appended.
    """
    path = Path(path)
    if not path.is_file():
        path = _archive_path(path)
    with np.load(path) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
    return module


def serialized_size(module: Module) -> int:
    """Return the size in bytes of the module serialized to an in-memory npz.

    This avoids touching the filesystem and is what the benchmarks report as
    "model size".
    """
    buffer = io.BytesIO()
    np.savez(buffer, **module.state_dict())
    return buffer.getbuffer().nbytes

"""Saving and loading model parameters.

Models are persisted as ``.npz`` archives of their flat ``state_dict``.  The
model-size benchmark (paper Table 9) reports the size of these archives.
"""

from __future__ import annotations

import io
import os
from pathlib import Path
from typing import Union

import numpy as np

from .module import Module

PathLike = Union[str, os.PathLike]


def save_module(module: Module, path: PathLike) -> int:
    """Serialize ``module`` parameters to ``path`` and return the byte size."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    # npz keys cannot contain '/', dots are fine.
    np.savez(path, **state)
    return path.stat().st_size


def load_module(module: Module, path: PathLike) -> Module:
    """Load parameters saved by :func:`save_module` into ``module`` in place."""
    with np.load(Path(path)) as archive:
        state = {key: archive[key] for key in archive.files}
    module.load_state_dict(state)
    return module


def serialized_size(module: Module) -> int:
    """Return the size in bytes of the module serialized to an in-memory npz.

    This avoids touching the filesystem and is what the benchmarks report as
    "model size".
    """
    buffer = io.BytesIO()
    np.savez(buffer, **module.state_dict())
    return buffer.getbuffer().nbytes

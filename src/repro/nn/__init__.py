"""Numpy-based neural network substrate (autodiff, layers, losses, optimizers).

This package stands in for PyTorch/TensorFlow, which the original paper used
for training CardNet.  It provides exactly the primitives the reproduced models
need: a reverse-mode autodiff :class:`~repro.nn.tensor.Tensor`, torch-style
:class:`~repro.nn.module.Module` composition, dense layers and activations,
the losses used in the paper (MSLE, VAE reconstruction + KL), and the Adam
optimizer.
"""

from .gradcheck import check_gradients, numerical_gradient
from .layers import (
    ELU,
    Embedding,
    Identity,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Softplus,
    Tanh,
    mlp,
)
from .losses import (
    bce_with_logits_loss,
    gaussian_kl_loss,
    mae_loss,
    mse_loss,
    msle_loss,
    q_error_loss,
)
from .module import Module
from .optim import SGD, Adam, Optimizer, StepLR
from .serialization import load_module, save_module, serialized_size
from .tensor import Tensor, concatenate, stack, where

__all__ = [
    "Tensor",
    "concatenate",
    "stack",
    "where",
    "Module",
    "Linear",
    "ReLU",
    "ELU",
    "Sigmoid",
    "Tanh",
    "Softplus",
    "Identity",
    "Sequential",
    "Embedding",
    "mlp",
    "mse_loss",
    "msle_loss",
    "mae_loss",
    "bce_with_logits_loss",
    "gaussian_kl_loss",
    "q_error_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "save_module",
    "load_module",
    "serialized_size",
    "check_gradients",
    "numerical_gradient",
]

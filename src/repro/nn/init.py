"""Parameter initialization schemes for the numpy NN substrate."""

from __future__ import annotations

import numpy as np


def xavier_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization for a (fan_in, fan_out) weight."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_normal(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Kaiming/He normal initialization, suitable for ReLU networks."""
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out))


def normal(shape, rng: np.random.Generator, std: float = 1.0) -> np.ndarray:
    """Standard normal initialization (used for distance embeddings, paper §5.2.2)."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape)

"""Loss functions for training the reproduced models.

The paper trains its regression with the mean squared logarithmic error
(MSLE, §6.2) plus a per-distance dynamic term, and the VAE with the usual
reconstruction + KL objective.  All losses here operate on autodiff Tensors and
return scalar Tensors.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    diff = prediction - target
    return (diff * diff).mean()


def msle_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared logarithmic error: mean((log1p(pred) - log1p(target))^2).

    The prediction is clipped at zero from below so the logarithm is defined
    even if a decoder momentarily produces a tiny negative value before ReLU
    clamping (should not happen, but keeps training robust).
    """
    log_pred = prediction.clip(min_value=0.0).log1p()
    log_target = target.clip(min_value=0.0).log1p()
    diff = log_pred - log_target
    return (diff * diff).mean()


def mae_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error via a smooth |x| ~ sqrt(x^2 + eps) approximation."""
    diff = prediction - target
    return ((diff * diff + 1e-12) ** 0.5).mean()


def bce_with_logits_loss(logits: Tensor, target: Tensor) -> Tensor:
    """Numerically stable binary cross entropy on logits.

    Used for the VAE's Bernoulli reconstruction of binary feature vectors:
    ``max(z, 0) - z*y + log(1 + exp(-|z|))``.
    """
    positive_part = logits.relu()
    abs_logits = Tensor(np.abs(logits.data))
    # log(1 + exp(-|z|)) built from graph ops so gradients flow through logits.
    neg_abs = logits * Tensor(np.sign(-logits.data))
    softplus_term = neg_abs.exp().log1p()
    loss = positive_part - logits * target + softplus_term
    _ = abs_logits  # documented intermediate; |z| itself carries no gradient
    return loss.mean()


def gaussian_kl_loss(mean: Tensor, log_var: Tensor) -> Tensor:
    """KL( N(mean, exp(log_var)) || N(0, I) ), averaged over the batch."""
    kl_per_dim = (mean * mean + log_var.exp() - log_var - 1.0) * 0.5
    return kl_per_dim.sum(axis=-1).mean()


def q_error_loss(prediction: Tensor, target: Tensor, epsilon: float = 1.0) -> Tensor:
    """Smooth surrogate of the q-error max(c/ĉ, ĉ/c) using log-space distance.

    Not used by the paper's training but exposed for experimentation; in log
    space the q-error is exp(|log ĉ - log c|), so the squared log difference is
    a convenient differentiable proxy.
    """
    log_pred = (prediction.clip(min_value=0.0) + epsilon).log()
    log_target = (target.clip(min_value=0.0) + epsilon).log()
    diff = log_pred - log_target
    return (diff * diff).mean()

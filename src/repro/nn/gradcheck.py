"""Finite-difference gradient checking utilities.

Used by the test suite to verify that every autodiff operation used by the
reproduced models produces correct gradients.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numerical_gradient(
    func: Callable[[], Tensor],
    parameter: Tensor,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Estimate d func() / d parameter with central differences.

    ``func`` must recompute the scalar loss from scratch on each call so that
    perturbations to ``parameter.data`` are reflected in the output.
    """
    gradient = np.zeros_like(parameter.data)
    flat_param = parameter.data.reshape(-1)
    flat_grad = gradient.reshape(-1)
    for index in range(flat_param.size):
        original = flat_param[index]
        flat_param[index] = original + epsilon
        plus = func().item()
        flat_param[index] = original - epsilon
        minus = func().item()
        flat_param[index] = original
        flat_grad[index] = (plus - minus) / (2.0 * epsilon)
    return gradient


def check_gradients(
    func: Callable[[], Tensor],
    parameters: Sequence[Tensor],
    epsilon: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> bool:
    """Compare analytic and numerical gradients for each parameter.

    Returns ``True`` when all gradients match within tolerance; raises
    ``AssertionError`` with a descriptive message otherwise.
    """
    for param in parameters:
        param.zero_grad()
    loss = func()
    loss.backward()
    for position, param in enumerate(parameters):
        analytic = param.grad if param.grad is not None else np.zeros_like(param.data)
        numeric = numerical_gradient(func, param, epsilon=epsilon)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            max_diff = float(np.max(np.abs(analytic - numeric)))
            raise AssertionError(
                f"gradient mismatch for parameter #{position}: max diff {max_diff:.3e}"
            )
    return True

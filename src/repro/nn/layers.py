"""Neural-network layers built on the autodiff Tensor.

These layers are the building blocks of CardNet's encoder/decoder networks and
of all deep-learning baselines (DL-DNN, DL-MoE, DL-RMI, DL-DLN calibrators).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from . import init
from .module import Module
from .tensor import Tensor


class Linear(Module):
    """Affine transformation ``y = x W + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        bias: bool = True,
        weight_init: str = "he",
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        if weight_init == "he":
            weight = init.he_normal(in_features, out_features, rng)
        elif weight_init == "xavier":
            weight = init.xavier_uniform(in_features, out_features, rng)
        else:
            raise ValueError(f"unknown weight_init: {weight_init!r}")
        self.weight = Tensor(weight, requires_grad=True)
        self.use_bias = bias
        if bias:
            self.bias = Tensor(np.zeros(out_features), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.use_bias:
            out = out + self.bias
        return out


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class ELU(Module):
    """Exponential linear unit (used by the VAE, in line with the paper)."""

    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        return x.elu(self.alpha)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Softplus(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.softplus()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._ordered: List[Module] = []
        for index, module in enumerate(modules):
            self.add_module(f"layer{index}", module)
            self._ordered.append(module)

    def forward(self, x: Tensor) -> Tensor:
        for module in self._ordered:
            x = module(x)
        return x

    def __iter__(self):
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    Used for the distance-embedding layer ``E`` of the paper (§5.2.2), where
    each Hamming distance value ``i`` in ``[0, τ_max]`` has a learned embedding
    ``e_i`` initialized from a standard normal distribution.
    """

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Tensor(
            init.normal((num_embeddings, embedding_dim), rng), requires_grad=True
        )

    def forward(self, indices) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        return self.weight[indices]


def mlp(
    sizes: Sequence[int],
    activation: Callable[[], Module] = ReLU,
    output_activation: Optional[Callable[[], Module]] = None,
    rng: Optional[np.random.Generator] = None,
) -> Sequential:
    """Build a fully connected network with the given layer sizes.

    Parameters
    ----------
    sizes:
        ``[in, h1, ..., hk, out]`` layer widths.
    activation:
        Hidden-layer activation constructor.
    output_activation:
        Optional activation after the final affine layer.
    """
    if len(sizes) < 2:
        raise ValueError("mlp requires at least an input and an output size")
    rng = rng if rng is not None else np.random.default_rng(0)
    layers: List[Module] = []
    for index in range(len(sizes) - 1):
        layers.append(Linear(sizes[index], sizes[index + 1], rng=rng))
        is_last = index == len(sizes) - 2
        if not is_last:
            layers.append(activation())
        elif output_activation is not None:
            layers.append(output_activation())
    return Sequential(*layers)

"""Gradient-descent optimizers for the numpy NN substrate."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base class holding references to the parameters being optimized."""

    def __init__(self, parameters: Iterable[Tensor]) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Clip global gradient norm in place and return the pre-clip norm."""
        total = 0.0
        for param in self.parameters:
            if param.grad is not None:
                total += float(np.sum(param.grad ** 2))
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0.0:
            scale = max_norm / norm
            for param in self.parameters:
                if param.grad is not None:
                    param.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Optional[List[np.ndarray]] = None
        if momentum > 0.0:
            self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self._velocity is not None:
                self._velocity[index] = self.momentum * self._velocity[index] - self.lr * grad
                param.data += self._velocity[index]
            else:
                param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba), the paper's de-facto training choice."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias_correction1 = 1.0 - self.beta1 ** self._step_count
        bias_correction2 = 1.0 - self.beta2 ** self._step_count
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            self._m[index] = self.beta1 * self._m[index] + (1.0 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1.0 - self.beta2) * grad ** 2
            m_hat = self._m[index] / bias_correction1
            v_hat = self._v[index] / bias_correction2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Learning-rate schedule that multiplies the optimizer lr every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma

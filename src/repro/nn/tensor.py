"""A minimal reverse-mode automatic differentiation engine on top of numpy.

This module is the foundation of the :mod:`repro.nn` substrate.  The paper's
models (CardNet, CardNet-A, and all deep-learning baselines) are expressed as
computation graphs of :class:`Tensor` operations; gradients are obtained by a
single reverse topological sweep from the loss tensor.

The engine intentionally supports exactly the operations the reproduced models
need (dense matmul, broadcasting element-wise arithmetic, common activations,
reductions, concatenation, slicing, and embedding lookup) and nothing more.
Every operation records a local backward closure, so the implementation stays
small, auditable, and easy to verify with finite-difference gradient checks
(see ``repro.nn.gradcheck``).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence[float]]


def _as_array(data: ArrayLike, dtype: np.dtype = np.float64) -> np.ndarray:
    """Coerce input into a float numpy array without copying when possible."""
    if isinstance(data, np.ndarray):
        if data.dtype == dtype:
            return data
        return data.astype(dtype)
    return np.asarray(data, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were broadcast to reach ``grad.shape``.

    Numpy broadcasting silently expands dimensions; when propagating gradients
    backwards we must reduce along those expanded axes so the gradient has the
    same shape as the original operand.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dims that were added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dims that were size-1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A node in the computation graph holding a value and (optionally) a grad.

    Parameters
    ----------
    data:
        The numeric payload (converted to a float64 numpy array).
    requires_grad:
        Whether gradients should be accumulated into this tensor during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._parents = _parents
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the scalar value of a single-element tensor."""
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    @staticmethod
    def _lift(value: Union["Tensor", ArrayLike]) -> "Tensor":
        if isinstance(value, Tensor):
            return value
        return Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _parents=parents)
        if requires:
            out._backward = backward
        return out

    # ------------------------------------------------------------------ #
    # Arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data ** 2), other.shape)
            )

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ other.data.swapaxes(-1, -2))
            if other.requires_grad:
                other._accumulate(self.data.swapaxes(-1, -2) @ grad)

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Element-wise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def log1p(self) -> "Tensor":
        out_data = np.log1p(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / (1.0 + self.data))

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    def elu(self, alpha: float = 1.0) -> "Tensor":
        positive = self.data > 0
        exp_part = alpha * (np.exp(np.minimum(self.data, 0.0)) - 1.0)
        out_data = np.where(positive, self.data, exp_part)

        def backward(grad: np.ndarray) -> None:
            local = np.where(positive, 1.0, exp_part + alpha)
            self._accumulate(grad * local)

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data ** 2))

        return self._make(out_data, (self,), backward)

    def softplus(self) -> "Tensor":
        # Numerically stable softplus: log(1 + exp(x)).
        out_data = np.logaddexp(0.0, self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / (1.0 + np.exp(-self.data)))

        return self._make(out_data, (self,), backward)

    def clip(self, min_value: Optional[float] = None, max_value: Optional[float] = None) -> "Tensor":
        out_data = np.clip(self.data, min_value, max_value)
        mask = np.ones_like(self.data)
        if min_value is not None:
            mask = mask * (self.data >= min_value)
        if max_value is not None:
            mask = mask * (self.data <= max_value)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(expanded, self.shape).copy())

        return self._make(out_data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded_out = out_data
            expanded_grad = grad
            if axis is not None and not keepdims:
                expanded_out = np.expand_dims(out_data, axis)
                expanded_grad = np.expand_dims(grad, axis)
            mask = (self.data == expanded_out).astype(self.data.dtype)
            # Split ties evenly so gradient checks remain well behaved.
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            self._accumulate(mask * expanded_grad)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(*shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.shape))

        return self._make(out_data, (self,), backward)

    def transpose(self) -> "Tensor":
        out_data = self.data.T

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.T)

        return self._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        The tensor is typically a scalar loss; for non-scalar tensors an
        explicit upstream gradient must be supplied.
        """
        if grad is None:
            if self.size != 1:
                raise ValueError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)

        # Topological order over the graph reachable from self.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

        for node in reversed(order):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)


# ---------------------------------------------------------------------- #
# Free functions mirroring the tensor methods (convenience API)
# ---------------------------------------------------------------------- #
def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing to each input."""
    tensors = [Tensor._lift(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(out_data, requires_grad=requires, _parents=tuple(tensors))

    if requires:
        def backward(grad: np.ndarray) -> None:
            offsets = np.cumsum([0] + sizes)
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

        out._backward = backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis."""
    tensors = [Tensor._lift(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(out_data, requires_grad=requires, _parents=tuple(tensors))

    if requires:
        def backward(grad: np.ndarray) -> None:
            slabs = np.split(grad, len(tensors), axis=axis)
            for tensor, slab in zip(tensors, slabs):
                tensor._accumulate(np.squeeze(slab, axis=axis))

        out._backward = backward
    return out


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Element-wise select ``a`` where condition else ``b``."""
    a = Tensor._lift(a)
    b = Tensor._lift(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)
    requires = a.requires_grad or b.requires_grad
    out = Tensor(out_data, requires_grad=requires, _parents=(a, b))

    if requires:
        def backward(grad: np.ndarray) -> None:
            a._accumulate(_unbroadcast(grad * cond, a.shape))
            b._accumulate(_unbroadcast(grad * (~cond), b.shape))

        out._backward = backward
    return out


def no_grad_copy(tensor: Tensor) -> Tensor:
    """Deep-copy a tensor's value into a fresh leaf tensor (no graph links)."""
    return Tensor(np.array(tensor.data, copy=True), requires_grad=False)


def parameters_norm(params: Iterable[Tensor]) -> float:
    """L2 norm across all parameter tensors (monitoring aid)."""
    total = 0.0
    for param in params:
        total += float(np.sum(param.data ** 2))
    return float(np.sqrt(total))

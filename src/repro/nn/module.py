"""Module base class and parameter management for the numpy NN substrate."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from .tensor import Tensor


class Module:
    """Base class for all neural-network building blocks.

    Mirrors the familiar torch-style API: submodules and parameters assigned as
    attributes are discovered automatically, ``parameters()`` iterates over all
    trainable tensors, and ``state_dict``/``load_state_dict`` provide flat
    name-to-array (de)serialization used by :mod:`repro.nn.serialization`.
    """

    def __init__(self) -> None:
        self._parameters: Dict[str, Tensor] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # ------------------------------------------------------------------ #
    # Attribute plumbing
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, tensor: Tensor) -> Tensor:
        """Explicitly register a trainable tensor under ``name``."""
        tensor.requires_grad = True
        self._parameters[name] = tensor
        object.__setattr__(self, name, tensor)
        return tensor

    def add_module(self, name: str, module: "Module") -> "Module":
        """Explicitly register a child module under ``name``."""
        self._modules[name] = module
        object.__setattr__(self, name, module)
        return module

    # ------------------------------------------------------------------ #
    # Parameter iteration
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> List[Tensor]:
        return [param for _, param in self.named_parameters()]

    def num_parameters(self) -> int:
        """Total number of scalar parameters in this module tree."""
        return int(sum(param.size for param in self.parameters()))

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------ #
    # Train / eval switch
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of parameter names to copied arrays."""
        return {name: np.array(param.data, copy=True) for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values from a flat mapping produced by ``state_dict``."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {param.data.shape}, got {value.shape}"
                )
            param.data = np.array(value, copy=True)

    def size_in_bytes(self) -> int:
        """Serialized size of all parameters (used by the model-size benchmark)."""
        return int(sum(param.data.nbytes for param in self.parameters()))

    # ------------------------------------------------------------------ #
    # Call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

"""Evaluation metrics for cardinality estimation (paper §2.1 and §9.2).

The paper reports MSE, MAPE, and mean q-error, plus grouped variants
(per-threshold in Fig. 5, per-cardinality-range in Fig. 9/10).  Monotonicity is
one of the paper's headline properties, so a monotonicity-violation metric is
provided as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np


def _to_arrays(actual: Sequence[float], estimated: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    actual_array = np.asarray(actual, dtype=np.float64)
    estimated_array = np.asarray(estimated, dtype=np.float64)
    if actual_array.shape != estimated_array.shape:
        raise ValueError(
            f"actual and estimated must align: {actual_array.shape} vs {estimated_array.shape}"
        )
    return actual_array, estimated_array


def mse(actual: Sequence[float], estimated: Sequence[float]) -> float:
    """Mean squared error."""
    actual_array, estimated_array = _to_arrays(actual, estimated)
    return float(np.mean((actual_array - estimated_array) ** 2))


def mape(actual: Sequence[float], estimated: Sequence[float]) -> float:
    """Mean absolute percentage error, in percent.

    Queries with zero actual cardinality are handled with the common
    ``max(actual, 1)`` convention so the metric stays finite (the paper's
    workloads always include the query itself, so actual >= 1 in practice).
    """
    actual_array, estimated_array = _to_arrays(actual, estimated)
    denominator = np.maximum(actual_array, 1.0)
    return float(np.mean(np.abs(actual_array - estimated_array) / denominator) * 100.0)


def msle(actual: Sequence[float], estimated: Sequence[float]) -> float:
    """Mean squared logarithmic error (the paper's training loss, §6.2)."""
    actual_array, estimated_array = _to_arrays(actual, estimated)
    return float(
        np.mean((np.log1p(np.maximum(actual_array, 0.0)) - np.log1p(np.maximum(estimated_array, 0.0))) ** 2)
    )


def mean_q_error(actual: Sequence[float], estimated: Sequence[float]) -> float:
    """Mean of max(c/ĉ, ĉ/c); both sides floored at 1 to stay finite (paper §9.2)."""
    actual_array, estimated_array = _to_arrays(actual, estimated)
    safe_actual = np.maximum(actual_array, 1.0)
    safe_estimated = np.maximum(estimated_array, 1.0)
    ratios = np.maximum(safe_actual / safe_estimated, safe_estimated / safe_actual)
    return float(np.mean(ratios))


def monotonicity_violation_rate(estimates_by_threshold: Sequence[Sequence[float]]) -> float:
    """Fraction of adjacent threshold pairs where the estimate decreases.

    ``estimates_by_threshold[i][j]`` is the estimate for query ``j`` at the
    ``i``-th threshold (thresholds in increasing order).  A perfectly monotone
    estimator scores 0.0.
    """
    matrix = np.asarray(estimates_by_threshold, dtype=np.float64)
    if matrix.ndim == 1:
        matrix = matrix[:, None]
    if matrix.shape[0] < 2:
        return 0.0
    decreases = matrix[1:] < matrix[:-1] - 1e-9
    return float(np.mean(decreases))


@dataclass
class AccuracyReport:
    """Bundle of the three headline accuracy metrics for one model/dataset pair."""

    mse: float
    mape: float
    mean_q_error: float

    @classmethod
    def from_predictions(cls, actual: Sequence[float], estimated: Sequence[float]) -> "AccuracyReport":
        return cls(
            mse=mse(actual, estimated),
            mape=mape(actual, estimated),
            mean_q_error=mean_q_error(actual, estimated),
        )

    def as_dict(self) -> Dict[str, float]:
        return {"mse": self.mse, "mape": self.mape, "mean_q_error": self.mean_q_error}


def grouped_errors(
    actual: Sequence[float],
    estimated: Sequence[float],
    groups: Sequence,
    metric: str = "mse",
) -> Dict[object, float]:
    """Compute a metric per group (e.g. per threshold or per cardinality range)."""
    metric_functions = {"mse": mse, "mape": mape, "mean_q_error": mean_q_error, "msle": msle}
    if metric not in metric_functions:
        raise KeyError(f"unknown metric {metric!r}; options: {sorted(metric_functions)}")
    function = metric_functions[metric]
    actual_array, estimated_array = _to_arrays(actual, estimated)
    groups_array = np.asarray(groups)
    results: Dict[object, float] = {}
    for group in np.unique(groups_array):
        mask = groups_array == group
        results[group.item() if hasattr(group, "item") else group] = function(
            actual_array[mask], estimated_array[mask]
        )
    return results


def cardinality_range_groups(
    actual: Sequence[float], boundaries: Iterable[float]
) -> List[str]:
    """Assign each query to a cardinality range label (paper Fig. 9/10 buckets).

    ``boundaries = [1000, 2000, 3000]`` produces labels ``"[0, 1000)"``,
    ``"[1000, 2000)"``, ``"[2000, 3000)"``, and ``">= 3000"``.
    """
    sorted_bounds = sorted(boundaries)
    labels: List[str] = []
    for value in actual:
        assigned = None
        previous = 0.0
        for bound in sorted_bounds:
            if value < bound:
                assigned = f"[{previous:g}, {bound:g})"
                break
            previous = bound
        if assigned is None:
            assigned = f">= {sorted_bounds[-1]:g}" if sorted_bounds else ">= 0"
        labels.append(assigned)
    return labels

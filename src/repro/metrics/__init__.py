"""Error metrics for cardinality estimation."""

from .errors import (
    AccuracyReport,
    cardinality_range_groups,
    grouped_errors,
    mape,
    mean_q_error,
    monotonicity_violation_rate,
    mse,
    msle,
)

__all__ = [
    "mse",
    "mape",
    "msle",
    "mean_q_error",
    "monotonicity_violation_rate",
    "AccuracyReport",
    "grouped_errors",
    "cardinality_range_groups",
]

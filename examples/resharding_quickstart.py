"""Live resharding quickstart: O(Δ) updates + a hot-shard split, no downtime.

Builds a sharded Hamming deployment, streams mixed updates through it (every
insert/delete lands as an O(Δ) index delta — append segments + tombstones,
no rebuild), then rebalances the layout while it keeps serving: a hot shard
is split and two cold shards merged, staged shards build from snapshot
slices on a background pool, mid-rebalance updates are journaled, and the
commit replays the journal before atomically swapping assignment, shards,
and serving endpoints.  Every step is checked bit-identical against a
linear scan.

Run with:  python examples/resharding_quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import UniformSamplingEstimator
from repro.datasets import make_binary_dataset
from repro.datasets.updates import UpdateOperation
from repro.distances import get_distance
from repro.engine import SimilarityPredicate, SimilarityQueryEngine
from repro.selection import LinearScanSelector
from repro.sharding import MergeShards, RebalancePlan, SplitShard, suggest_plan

NUM_SHARDS = 4


def exact_ids(binding, record, theta):
    scan = LinearScanSelector(np.asarray(binding.records), get_distance("hamming"))
    return scan.query(record, theta)


def main() -> None:
    dataset = make_binary_dataset(
        num_records=2000, dimension=64, num_clusters=12, flip_probability=0.08,
        theta_max=16, seed=3, name="HM-Resharding",
    )

    engine = SimilarityQueryEngine()
    binding = engine.register_sharded_attribute(
        "fingerprints",
        dataset.records,
        "hamming",
        lambda shard_records, shard_index: UniformSamplingEstimator(
            shard_records, "hamming", sample_ratio=0.2, seed=shard_index
        ),
        num_shards=NUM_SHARDS,
        theta_max=dataset.theta_max,
    )
    selector = binding.selector
    query = dataset.records[7]
    predicate = SimilarityPredicate("fingerprints", query, 10.0)

    # --- O(Δ) update stream: deltas in place, no index rebuilds ----------- #
    rng = np.random.default_rng(5)
    shard_objects = list(selector.shards)
    for step in range(4):
        inserted = rng.integers(0, 2, size=(25, 64), dtype=np.uint8)
        engine.apply_update("fingerprints", UpdateOperation("insert", inserted))
        doomed = rng.choice(len(binding.records), size=10, replace=False)
        engine.apply_update("fingerprints", UpdateOperation("delete", doomed))
    assert all(
        shard is original for shard, original in zip(selector.shards, shard_objects)
    ), "updates must mutate shards in place, never replace them"
    result = engine.execute(predicate)
    assert result.record_ids == exact_ids(binding, query, 10.0)
    print(f"after updates: {len(binding.records)} records, "
          f"shard sizes {selector.stats()['shard_sizes']}, answers exact")

    # --- plan a rebalance ------------------------------------------------- #
    # With a monitoring hub running, suggest_plan also weighs each shard's
    # scraped query-latency p99; here sizes alone drive the demonstration.
    plan = suggest_plan(selector._assignment)
    if plan is None:
        plan = RebalancePlan([SplitShard(0, parts=2), MergeShards((2, 3))])
    print(f"plan: {plan.describe()}")

    # --- execute it live --------------------------------------------------- #
    report = engine.rebalance_attribute("fingerprints", plan)
    print(
        f"rebalanced {report.num_shards_before} -> {report.num_shards_after} "
        f"shards: built {report.built_targets}, aliased {report.aliased_targets}, "
        f"moved {report.moved_records} records, replayed "
        f"{report.journal_replayed} journaled ops in {report.seconds * 1e3:.1f} ms"
    )
    print(f"serving endpoints now: {binding.shard_endpoints}")

    # --- everything still exact, updates still flow ----------------------- #
    result = engine.execute(predicate)
    assert result.record_ids == exact_ids(binding, query, 10.0)
    engine.apply_update(
        "fingerprints",
        UpdateOperation("insert", rng.integers(0, 2, size=(5, 64), dtype=np.uint8)),
    )
    result = engine.execute(predicate)
    assert result.record_ids == exact_ids(binding, query, 10.0)
    print("post-swap queries and updates: bit-identical to a linear scan")


if __name__ == "__main__":
    main()

"""Serving quickstart: many datasets behind one estimation endpoint.

Trains estimators for two different data types (binary vectors under Hamming
distance, sets under Jaccard distance), registers both in one
:class:`repro.serving.EstimationService`, and serves a mixed query stream —
micro-batched, answered from the monotone curve cache, with telemetry.

Run with:  python examples/serving_quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import CardNetEstimator
from repro.datasets import make_binary_dataset, make_set_dataset
from repro.serving import EstimationService
from repro.workloads import build_workload


def train_estimator(dataset):
    workload = build_workload(dataset, query_fraction=0.05, num_thresholds=6, seed=1)
    estimator = CardNetEstimator.for_dataset(
        dataset, accelerated=True, epochs=12, vae_pretrain_epochs=4, seed=0
    )
    estimator.fit(workload.train, workload.validation)
    return estimator, workload


def main() -> None:
    print("Training one CardNet-A per dataset ...")
    hamming_dataset = make_binary_dataset(
        num_records=800, dimension=32, num_clusters=8, flip_probability=0.08,
        theta_max=12, seed=0, name="HM-Images",
    )
    jaccard_dataset = make_set_dataset(
        num_records=700, num_clusters=8, universe_size=120, base_set_size=10,
        theta_max=0.4, seed=1, name="JC-Baskets",
    )
    hamming_estimator, hamming_workload = train_estimator(hamming_dataset)
    jaccard_estimator, jaccard_workload = train_estimator(jaccard_dataset)

    print("Registering both behind one service ...")
    service = EstimationService(cache_capacity=512, max_batch_size=32)
    service.register("images/hamming", hamming_estimator, distance_name="hamming")
    service.register("baskets/jaccard", jaccard_estimator, distance_name="jaccard")
    print(f"  endpoints: {service.registry.names()}")

    print("Serving a mixed query stream (batched) ...")
    for endpoint, workload in [
        ("images/hamming", hamming_workload),
        ("baskets/jaccard", jaccard_workload),
    ]:
        examples = workload.test[:60]
        answers = service.estimate_many(
            endpoint,
            [example.record for example in examples],
            [example.theta for example in examples],
        )
        actual = np.asarray([example.cardinality for example in examples], dtype=float)
        error = np.mean(np.abs(answers - actual) / np.maximum(actual, 1.0))
        print(f"  {endpoint}: {len(examples)} queries, mean relative error {error:.2f}")

    print("Re-serving the same records at NEW thresholds (pure cache hits) ...")
    examples = hamming_workload.test[:60]
    rng = np.random.default_rng(3)
    new_thetas = rng.integers(1, int(hamming_dataset.theta_max) + 1, size=len(examples))
    service.estimate_many(
        "images/hamming",
        [example.record for example in examples],
        new_thetas.astype(float),
    )

    print("Deferred single-query API (micro-batched on flush) ...")
    pending = [
        service.submit("baskets/jaccard", example.record, example.theta)
        for example in jaccard_workload.test[:10]
    ]
    service.flush()
    print(f"  first deferred answer: {pending[0].result():.1f}")

    stats = service.stats()
    cache = stats["cache"]
    print("\nTelemetry:")
    print(f"  cache: {cache['size']} curves, hit rate {cache['hit_rate']:.0%}, "
          f"{cache['evictions']} evictions")
    for endpoint in service.registry.names():
        row = stats["endpoints"][endpoint]
        print(f"  {endpoint}: {row['requests']:.0f} requests, hit rate {row['hit_rate']:.0%}, "
              f"mean micro-batch {row['mean_batch_size']:.1f}")
    print("\nA cached monotone curve answers every threshold for its record —")
    print("the second pass over known records never touched the model.")


if __name__ == "__main__":
    main()

"""Snapshot quickstart: train → save → kill → load → serve, plus replicas.

Trains a CardNet-A estimator, serves it through an engine (warming the curve
cache), snapshots the whole engine to a directory, throws the process state
away, and warm-start restores: the loaded engine answers bit-identically —
trained weights, optimizer moments, selection index, warm cache, feedback
windows all included — without retraining anything.  Then spawns three read
replicas from the same snapshot and round-robins a workload across them.

Run with:  python examples/snapshot_quickstart.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.core import CardNetEstimator
from repro.datasets import make_binary_dataset
from repro.engine import SimilarityPredicate, SimilarityQueryEngine
from repro.store import ReplicaSet, inspect_snapshot
from repro.workloads import build_workload


def main() -> None:
    dataset = make_binary_dataset(
        num_records=1500, dimension=32, num_clusters=8, flip_probability=0.08,
        theta_max=12, seed=3, name="HM-Snapshot",
    )
    workload = build_workload(dataset, query_fraction=0.08, num_thresholds=5, seed=5)

    # --- Train once (the expensive part) ---------------------------------- #
    start = time.perf_counter()
    estimator = CardNetEstimator.for_dataset(
        dataset, accelerated=True, epochs=20, vae_pretrain_epochs=3, seed=0
    )
    estimator.fit(workload.train, workload.validation)
    train_seconds = time.perf_counter() - start
    print(f"trained CardNet-A in {train_seconds:.2f}s")

    engine = SimilarityQueryEngine()
    engine.register_attribute(
        "fingerprints", dataset.records, "hamming", estimator,
        theta_max=dataset.theta_max,
    )
    queries = [
        SimilarityPredicate("fingerprints", dataset.records[i], 6.0) for i in range(40)
    ]
    baseline = engine.execute_many(queries)  # also warms the curve cache
    print(f"warm cache holds {len(engine.service.cache)} curves")

    # --- Save ------------------------------------------------------------- #
    snapshot_dir = Path(tempfile.mkdtemp()) / "engine-snapshot"
    info = engine.save(snapshot_dir)
    print(
        f"saved snapshot: {info.total_bytes / 1024:.0f} KiB, "
        f"{info.num_arrays} arrays, {info.num_objects} objects"
    )
    print(f"inventory: {inspect_snapshot(snapshot_dir).meta}")

    # --- "Kill" the process and warm-start restore ------------------------ #
    del engine, estimator
    start = time.perf_counter()
    restored = SimilarityQueryEngine.load(snapshot_dir)
    load_seconds = time.perf_counter() - start
    results = restored.execute_many(queries)
    identical = all(
        a.record_ids == b.record_ids for a, b in zip(baseline, results)
    )
    hits = restored.service.telemetry.endpoint("fingerprints").cache_hits
    print(
        f"warm-start load in {load_seconds * 1000:.0f}ms "
        f"({train_seconds / load_seconds:.0f}x faster than retraining); "
        f"results identical: {identical}; served {hits} requests from the "
        "restored warm cache"
    )

    # --- Spawn read replicas from the same snapshot ----------------------- #
    replicas = ReplicaSet.from_snapshot(snapshot_dir, 3, routing="round_robin", seed=7)
    routed = replicas.execute_many(queries)
    assert all(a.record_ids == b.record_ids for a, b in zip(baseline, routed))
    print(f"3 replicas answered {len(routed)} queries; load: {replicas.query_counts()}")
    telemetry = replicas.stats()["telemetry"]
    per_replica = {
        name: stats["requests"] for name, stats in telemetry.items() if name != "total"
    }
    print(f"routing telemetry: {per_replica}")


if __name__ == "__main__":
    main()

"""Scenario 3 (paper §8 / §9.8): keeping the estimator fresh under dataset updates.

A trained CardNet-A watches a stream of insertions and deletions.  After every
batch the validation labels are refreshed with the exact selection algorithm;
if the validation error grew, the model continues training from its current
parameters (incremental learning) instead of retraining from scratch.

Run with:  python examples/incremental_updates.py
"""

from __future__ import annotations

from repro.core import CardNetEstimator, IncrementalUpdateManager
from repro.datasets import generate_update_stream, make_set_dataset
from repro.selection import default_selector
from repro.serving import EstimationService
from repro.workloads import build_workload


def main() -> None:
    print("Generating a set-valued dataset (Jaccard distance) ...")
    dataset = make_set_dataset(
        num_records=800, num_clusters=8, universe_size=150, base_set_size=12,
        theta_max=0.4, seed=21, name="JC-Transactions",
    )
    workload = build_workload(dataset, query_fraction=0.05, num_thresholds=6, seed=22)

    print("Training the initial CardNet-A model ...")
    estimator = CardNetEstimator.for_dataset(dataset, accelerated=True, epochs=15, vae_pretrain_epochs=4, seed=0)
    estimator.fit(workload.train, workload.validation)
    print(f"  initial validation MSLE: {estimator.validation_msle(workload.validation):.3f}")

    print("Serving the estimator while updates stream in ...")
    service = EstimationService()
    service.register("transactions/jaccard", estimator, distance_name="jaccard")
    service.estimate_many(
        "transactions/jaccard",
        [example.record for example in workload.validation],
        [example.theta for example in workload.validation],
    )
    print(f"  cached curves before updates: {service.stats()['cache']['size']}")

    print("Applying an update stream of 6 insert/delete batches ...")
    operations = generate_update_stream(
        dataset, num_operations=6, records_per_operation=40, insert_fraction=0.6, seed=23
    )
    manager = IncrementalUpdateManager(
        estimator,
        default_selector("jaccard", dataset.records),
        workload.train,
        workload.validation,
        max_epochs_per_update=4,
        service=service,
        service_endpoint="transactions/jaccard",
    )

    print(f"{'batch':>5}  {'dataset size':>12}  {'MSLE before':>11}  {'MSLE after':>10}  {'retrained':>9}  {'epochs':>6}")
    for index, operation in enumerate(operations):
        report = manager.process(operation, index)
        print(
            f"{index:>5}  {report.dataset_size:>12}  {report.validation_msle_before:>11.3f}  "
            f"{report.validation_msle_after:>10.3f}  {str(report.retrained):>9}  {report.epochs_run:>6}"
        )

    cache = service.stats()["cache"]
    print(f"\nServing cache after the stream: {cache['size']} curves "
          f"({cache['invalidations']} invalidated by updates)")
    print("Incremental learning only retrains when updates actually hurt accuracy,")
    print("and each retraining step continues from the current parameters (paper §8).")
    print("Every applied update invalidated the serving cache, so clients never")
    print("saw a stale cardinality curve.")


if __name__ == "__main__":
    main()

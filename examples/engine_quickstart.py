"""Engine quickstart: declarative similarity queries, end to end.

Builds a two-attribute table (a Hamming-coded image signature and a Euclidean
embedding per record), registers both attributes in a
:class:`repro.engine.SimilarityQueryEngine`, and walks the full pipeline:

1. EXPLAIN — the planner picks the driving predicate from served estimates
   (and a GPH per-part allocation for the Hamming index) before running;
2. execute — exact results through the indexes, vectorized verification;
3. feedback — every query feeds its observed cardinality back; after an
   unannounced dataset update the drift monitor flushes stale curves and
   revalidates through the incremental-update manager.

Run with:  python examples/engine_quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import CardNetEstimator, IncrementalUpdateManager
from repro.datasets import make_binary_dataset
from repro.datasets.updates import UpdateOperation
from repro.engine import ConjunctiveQuery, SimilarityPredicate, SimilarityQueryEngine
from repro.baselines import UniformSamplingEstimator
from repro.selection import default_selector
from repro.workloads import build_workload


def main() -> None:
    print("Building a two-attribute table (hamming signature + euclidean embedding) ...")
    signatures = make_binary_dataset(
        num_records=800, dimension=32, num_clusters=8, flip_probability=0.08,
        theta_max=12, seed=0, name="HM-Signatures",
    )
    rng = np.random.default_rng(1)
    # A dense embedding aligned row-by-row with the signatures.
    embeddings = signatures.records.astype(np.float64)
    embeddings += rng.normal(0.0, 0.15, embeddings.shape)
    embeddings /= np.maximum(np.linalg.norm(embeddings, axis=1, keepdims=True), 1e-12)

    print("Training a CardNet-A estimator for the signature attribute ...")
    workload = build_workload(signatures, query_fraction=0.05, num_thresholds=6, seed=1)
    signature_estimator = CardNetEstimator.for_dataset(
        signatures, accelerated=True, epochs=12, vae_pretrain_epochs=4, seed=0
    )
    signature_estimator.fit(workload.train, workload.validation)

    engine = SimilarityQueryEngine(drift_threshold=6.0, min_feedback_observations=6)
    engine.register_attribute(
        "signature", signatures.records, "hamming", signature_estimator,
        theta_max=signatures.theta_max, gph_part_size=8,
    )
    engine.register_attribute(
        "embedding", embeddings, "euclidean",
        UniformSamplingEstimator(embeddings, "euclidean", sample_ratio=0.1, seed=0),
        theta_max=1.2,
    )
    manager = IncrementalUpdateManager(
        signature_estimator,
        default_selector("hamming", signatures.records),
        workload.train,
        workload.validation,
        max_epochs_per_update=3,
    )
    engine.attach_manager("signature", manager, route_updates=False)

    probe_id = 7
    query = ConjunctiveQuery([
        SimilarityPredicate("signature", signatures.records[probe_id], 6.0),
        SimilarityPredicate("embedding", embeddings[probe_id], 0.5),
    ])

    print("\nEXPLAIN:")
    print(engine.explain(query).describe())

    result = engine.execute(query)
    print(f"\nExecuted: {result.cardinality} results, "
          f"driver examined {result.driver_candidates} candidates "
          f"(actual driver cardinality {result.driver_actual}), "
          f"residual verification touched {result.verification_examined} records.")

    print("\nServing a small query stream (feedback accumulates) ...")
    records = engine.catalog.get("signature").records
    stream = [
        SimilarityPredicate("signature", records[int(i)], float(rng.integers(3, 10)))
        for i in rng.integers(0, len(records), size=30)
    ]
    engine.execute_many(stream)
    print(f"  online q-error: {engine.feedback.online_q_error('signature'):.2f}, "
          f"drift events: {len(engine.feedback.events)}")

    print("\nDoubling the dataset behind the estimator's back ...")
    copies = [records[int(i)] for i in rng.integers(0, len(records), size=len(records))]
    engine.apply_update("signature", UpdateOperation("insert", copies))
    records = engine.catalog.get("signature").records
    stream = [
        SimilarityPredicate("signature", records[int(i)], float(rng.integers(3, 10)))
        for i in rng.integers(0, len(records), size=30)
    ]
    engine.execute_many(stream)
    print(f"  online q-error: {engine.feedback.online_q_error('signature'):.2f}, "
          f"drift events: {len(engine.feedback.events)}")
    for event in engine.feedback.events:
        revalidation = event.revalidation
        action = (
            f"retrained {revalidation.epochs_run} epochs "
            f"(MSLE {revalidation.validation_msle_before:.2f} -> "
            f"{revalidation.validation_msle_after:.2f})"
            if revalidation is not None and revalidation.retrained
            else "revalidated, no retrain needed"
        )
        print(f"  drift on {event.endpoint!r}: window q-error "
              f"{event.window_q_error:.1f}, {event.curves_invalidated} curves flushed, {action}")

    cache = engine.stats()["service"]["cache"]
    print(f"\nService cache: {cache['size']} curves, hit rate {cache['hit_rate']:.0%}.")
    print("The engine planned from served estimates, answered exactly from the")
    print("indexes, and the feedback loop caught the unannounced update.")


if __name__ == "__main__":
    main()

"""Runtime quickstart: one execution layer under everything concurrent.

Builds an engine whose sharded fan-out and pipelined multi-query execution
share ONE runtime's worker pools, drives the estimation service from many
threads at once through the coalescing deferred path, and demonstrates the
three bounded-queue backpressure policies — with every pool's load visible
through the same telemetry as endpoint traffic.

Run with:  python examples/runtime_quickstart.py
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.baselines import UniformSamplingEstimator
from repro.datasets import make_binary_dataset
from repro.engine import SimilarityPredicate, SimilarityQueryEngine
from repro.runtime import PoolRejectedError, TaskShedError, WorkerPool


def main() -> None:
    dataset = make_binary_dataset(
        num_records=3000, dimension=64, num_clusters=12, flip_probability=0.08,
        theta_max=16, seed=3, name="HM-Runtime",
    )

    # --- One runtime under the whole engine ------------------------------- #
    engine = SimilarityQueryEngine(execute_workers=4)
    engine.register_sharded_attribute(
        "fingerprints",
        dataset.records,
        "hamming",
        lambda shard_records, shard_index: UniformSamplingEstimator(
            shard_records, "hamming", sample_ratio=0.2, seed=shard_index
        ),
        num_shards=4,
        theta_max=dataset.theta_max,
    )

    rng = np.random.default_rng(11)
    queries = [
        SimilarityPredicate(
            "fingerprints",
            dataset.records[int(i)],
            float(rng.integers(6, 14)),
        )
        for i in rng.integers(0, len(dataset.records), size=60)
    ]

    start = time.perf_counter()
    sequential = engine.execute_many(queries, parallel=False)
    sequential_seconds = time.perf_counter() - start

    start = time.perf_counter()
    pipelined = engine.execute_many(queries)  # pools spin up lazily here
    pipelined_seconds = time.perf_counter() - start

    assert [r.record_ids for r in sequential] == [r.record_ids for r in pipelined]
    print(f"sequential: {sequential_seconds * 1000:.1f} ms   "
          f"pipelined @ 4 workers: {pipelined_seconds * 1000:.1f} ms "
          "(bit-identical results)")

    # Both concurrency sites — shard fan-out and pipelined execution — ran
    # on the ONE runtime the engine owns, visible pool by pool:
    for name, stats in engine.runtime.stats().items():
        print(f"pool {name!r}: workers={stats['num_workers']} "
              f"completed={stats['completed']} max_queue={stats['max_queue_seen']}")

    # --- Thread-safe serving: concurrent submitters coalesce -------------- #
    service = engine.service
    def submit_burst(thread_id: int) -> None:
        for i in range(8):
            service.submit(
                "fingerprints",
                dataset.records[(thread_id * 8 + i) % len(dataset.records)],
                9.0,
            )

    threads = [
        threading.Thread(target=submit_burst, args=(t,)) for t in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    service.flush()
    merged = service.telemetry.endpoint("fingerprints")
    print(f"deferred requests from 4 threads coalesced: "
          f"requests={merged.requests} auto_flush_failures={merged.auto_flush_failures}")

    # --- Backpressure: block / reject / shed_oldest ----------------------- #
    for policy in ("block", "reject", "shed_oldest"):
        pool = WorkerPool("demo", num_workers=1, max_queue_depth=4, policy=policy)
        gate = threading.Event()
        pool.submit(gate.wait, 5)          # park the worker
        while pool.stats()["active"] == 0:
            time.sleep(0.001)
        handles = [pool.submit(lambda i=i: i) for i in range(4)]  # fill queue
        outcome = ""
        if policy == "reject":
            try:
                pool.submit(lambda: "overflow")
            except PoolRejectedError:
                outcome = "overflow submission rejected"
            gate.set()
        elif policy == "shed_oldest":
            pool.submit(lambda: "overflow")
            gate.set()
            try:
                handles[0].result()
            except TaskShedError:
                outcome = "oldest queued task shed"
        else:
            threading.Timer(0.01, gate.set).start()
            pool.submit(lambda: "overflow")  # blocks until space opens
            outcome = "submission blocked until the queue drained"
        pool.drain(timeout=5)
        stats = pool.stats()
        print(f"policy {policy:>11}: {outcome} "
              f"(completed={stats['completed']} rejected={stats['rejected']} "
              f"shed={stats['shed']})")
        pool.shutdown()


if __name__ == "__main__":
    main()

"""Scenario 2 (paper §9.11.1): cardinality estimation inside a query optimizer.

Entity-matching blocking rules are conjunctions of similarity predicates over
multiple attributes ("name matches AND affiliation matches ...").  The
optimizer estimates the cardinality of every predicate and evaluates the most
selective one first with an index; the rest are verified on the fly.

This example builds a multi-attribute relation, trains one CardNet-A per
attribute, and compares three planning policies (Exact oracle, CardNet-A, and
a query-independent Mean policy) by planning precision and candidates examined.

Run with:  python examples/entity_matching_optimizer.py
"""

from __future__ import annotations

from repro.baselines import MeanEstimator
from repro.baselines.simple import ExactEstimator
from repro.core import CardNetEstimator
from repro.datasets import make_multi_attribute_relation
from repro.datasets.synthetic import Dataset
from repro.optimizer import (
    ConjunctiveQueryProcessor,
    generate_conjunctive_queries,
    run_conjunctive_workload,
)
from repro.selection import BallIndexEuclideanSelector
from repro.workloads import build_workload


def attribute_dataset(relation, attribute: str) -> Dataset:
    matrix = relation.attribute(attribute)
    return Dataset(
        name=f"{relation.name}-{attribute}",
        records=matrix,
        distance_name="euclidean",
        theta_max=0.6,
        cluster_labels=relation.cluster_labels,
        extra={"dimension": matrix.shape[1], "normalized": True},
    )


def main() -> None:
    print("Generating a multi-attribute relation (publication-like records) ...")
    relation = make_multi_attribute_relation(
        num_records=600,
        attribute_dims=(24, 24, 16),
        attribute_names=("title", "authors", "venue"),
        seed=11,
        name="Publications",
    )
    processor = ConjunctiveQueryProcessor(relation, num_pivots=12, seed=0)
    queries = generate_conjunctive_queries(relation, num_queries=25, threshold_range=(0.2, 0.5), seed=12)

    print("Training one CardNet-A per attribute ...")
    exact_planner, cardnet_planner, mean_planner = {}, {}, {}
    for attribute in relation.attribute_names:
        matrix = relation.attribute(attribute)
        exact_planner[attribute] = ExactEstimator(BallIndexEuclideanSelector(matrix, num_pivots=12, seed=0))

        dataset = attribute_dataset(relation, attribute)
        workload = build_workload(dataset, query_fraction=0.06, num_thresholds=5, seed=13)
        model = CardNetEstimator.for_dataset(dataset, accelerated=True, epochs=12, vae_pretrain_epochs=3, seed=0)
        model.fit(workload.train, workload.validation)
        cardnet_planner[attribute] = model

        mean = MeanEstimator(theta_max=dataset.theta_max, num_buckets=16)
        mean.fit(workload.train, workload.validation)
        mean_planner[attribute] = mean
        print(f"  trained estimators for attribute {attribute!r}")

    print("\nExecuting the conjunctive-query workload under each planning policy:")
    print(f"{'policy':>10}  {'precision':>9}  {'candidates':>10}  {'total time (s)':>14}")
    for policy_name, planner in (
        ("Exact", exact_planner),
        ("CardNet-A", cardnet_planner),
        ("Mean", mean_planner),
    ):
        report = run_conjunctive_workload(processor, queries, planner)
        print(
            f"{policy_name:>10}  {report.planning_precision:>9.2f}  "
            f"{report.total_candidates:>10}  {report.total_seconds:>14.3f}"
        )
    print("\nA better cardinality estimator picks the truly most selective predicate more often,")
    print("which shrinks the candidate sets the remaining predicates have to verify.")


if __name__ == "__main__":
    main()

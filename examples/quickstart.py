"""Quickstart: train CardNet-A on a binary-vector dataset and estimate cardinalities.

Run with:  python examples/quickstart.py

Steps (mirroring the paper's pipeline):
1. load a synthetic Hamming-distance dataset (the stand-in for HM-ImageNet);
2. build a labelled query workload with an exact similarity-selection algorithm;
3. train the monotonic CardNet-A estimator;
4. compare its estimates with the exact cardinalities and verify monotonicity.
"""

from __future__ import annotations

import numpy as np

from repro.core import CardNetEstimator
from repro.datasets import load_dataset
from repro.metrics import AccuracyReport
from repro.workloads import build_workload


def main() -> None:
    print("Loading dataset ...")
    dataset = load_dataset("HM-SynthImageNet", seed=0)
    print(f"  {dataset.name}: {len(dataset)} binary vectors of {dataset.extra['dimension']} bits, "
          f"theta_max = {dataset.theta_max:.0f}")

    print("Building labelled workload (exact similarity selection) ...")
    workload = build_workload(dataset, query_fraction=0.05, num_thresholds=8, seed=1)
    print(f"  examples: {workload.summary()}")

    print("Training CardNet-A ...")
    estimator = CardNetEstimator.for_dataset(
        dataset, accelerated=True, epochs=20, vae_pretrain_epochs=5, seed=0
    )
    estimator.fit(workload.train, workload.validation)

    print("Evaluating on held-out queries (one batched call) ...")
    actual = np.asarray([example.cardinality for example in workload.test], dtype=float)
    estimates = estimator.estimate_many(workload.test)
    report = AccuracyReport.from_predictions(actual, estimates)
    print(f"  MSE = {report.mse:.1f}   MAPE = {report.mape:.1f}%   mean q-error = {report.mean_q_error:.2f}")

    print("Fetching whole monotone curves (batch-first API) ...")
    records = [example.record for example in workload.test[:4]]
    grid = np.arange(int(dataset.theta_max) + 1, dtype=float)
    curves = estimator.estimate_curve_many(records, grid)
    print("  first record, estimates by threshold:", [f"{value:.1f}" for value in curves[0]])
    assert np.all(np.diff(curves, axis=1) >= -1e-9), "curves must be monotone"
    print(f"  monotone: yes (checked all {len(curves)} curves at once)")


if __name__ == "__main__":
    main()

"""Multicore quickstart: process-backend shard fan-out over an mmap'd snapshot.

Builds a packed-Hamming dataset, shards it behind ``backend="process"`` — each
shard's index arrays are published once to a shared data plane and scanned by
forked worker processes over read-only mmap views (no per-task array
pickling, no GIL) — and verifies the answers are bit-identical to the thread
backend.  Then snapshots an engine and restores it with ``mmap=True``: the
restore allocates O(metadata), the array pages stay on disk and are shared by
every process that maps them.

Run with:  python examples/multicore_quickstart.py
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from repro.baselines import UniformSamplingEstimator
from repro.datasets import make_binary_dataset
from repro.engine import SimilarityPredicate, SimilarityQueryEngine
from repro.runtime import Runtime, fork_available
from repro.selection.hamming_index import PackedHammingSelector
from repro.sharding import ShardedSelector
from repro.store import ReplicaSet, save_engine

NUM_SHARDS = 4


def main() -> None:
    dataset = make_binary_dataset(
        num_records=8000, dimension=128, num_clusters=12, flip_probability=0.08,
        theta_max=32, seed=3, name="HM-Multicore",
    )
    queries = dataset.records[:32]
    thresholds = [20.0] * len(queries)

    # --- process-backend shard fan-out ---------------------------------- #
    print(f"cores: {os.cpu_count()}, fork available: {fork_available()}")
    answers = {}
    for backend in ("thread", "process"):
        runtime = Runtime()
        selector = ShardedSelector(
            dataset.records,
            lambda records: PackedHammingSelector(records),
            num_shards=NUM_SHARDS,
            runtime=runtime,
            backend=backend,
        )
        selector.query(queries[0], thresholds[0])  # warm up (fork + publish)
        start = time.perf_counter()
        answers[backend] = selector.query_many(queries, thresholds)
        elapsed = time.perf_counter() - start
        pools = runtime.stats()
        print(f"{backend:>7}: {elapsed * 1000:7.1f} ms  pools={sorted(pools)}")
        runtime.shutdown()
    assert answers["thread"] == answers["process"], "backends must agree exactly"
    print(f"bit-identical across backends: {sum(map(len, answers['thread']))} matches")

    # --- zero-copy snapshot restore + process replicas ------------------ #
    engine = SimilarityQueryEngine()
    engine.register_attribute(
        "bits",
        dataset.records,
        "hamming",
        UniformSamplingEstimator(dataset.records, "hamming", sample_ratio=0.2, seed=1),
        theta_max=dataset.theta_max,
    )
    with tempfile.TemporaryDirectory() as scratch:
        path = os.path.join(scratch, "engine-snapshot")
        info = save_engine(engine, path)
        print(f"snapshot: {info.payload_bytes} payload bytes, {info.num_arrays} arrays")

        # Workers mmap-load their own engine from this snapshot; the parent
        # keeps one mmap'd copy for planning.  Replica ids are routing labels.
        replicas = ReplicaSet.from_snapshot(path, 2, backend="process")
        workload = [SimilarityPredicate("bits", record, 20.0) for record in queries]
        results = replicas.execute_many(workload)
        print(f"replica backend={replicas.stats()['backend']}, "
              f"query_counts={replicas.query_counts()}, "
              f"answered={sum(len(result.record_ids) for result in results)} matches")
        replicas.runtime.shutdown()


if __name__ == "__main__":
    main()

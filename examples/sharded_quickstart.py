"""Sharded quickstart: scale the engine out across shards, exactly.

Partitions a binary dataset across 4 shards, builds one exact index and one
estimator per shard, and registers the whole deployment as ONE engine
attribute: the planner reads the merged monotone curve (the elementwise sum
of the per-shard cached curves), the executor fans the query out across the
shard indexes in parallel and merges bit-exactly, and a dataset update is
routed to — and relabels — only the shard it touches.

Run with:  python examples/sharded_quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import UniformSamplingEstimator
from repro.datasets import make_binary_dataset
from repro.datasets.updates import UpdateOperation
from repro.distances import get_distance
from repro.engine import SimilarityPredicate, SimilarityQueryEngine
from repro.selection import LinearScanSelector

NUM_SHARDS = 4


def main() -> None:
    dataset = make_binary_dataset(
        num_records=2000, dimension=64, num_clusters=12, flip_probability=0.08,
        theta_max=16, seed=3, name="HM-Sharded",
    )

    engine = SimilarityQueryEngine()
    binding = engine.register_sharded_attribute(
        "fingerprints",
        dataset.records,
        "hamming",
        # One estimator per shard, built from that shard's records only.
        lambda shard_records, shard_index: UniformSamplingEstimator(
            shard_records, "hamming", sample_ratio=0.2, seed=shard_index
        ),
        num_shards=NUM_SHARDS,
        theta_max=dataset.theta_max,
    )
    print(f"shard sizes: {binding.selector.shard_sizes()}")
    print(f"endpoints:   {['fingerprints', *binding.shard_endpoints]}")

    # --- Plan against the merged curve, execute by parallel fan-out ------- #
    query = SimilarityPredicate("fingerprints", dataset.records[7], 10.0)
    plan = engine.explain(query)
    print("\n" + plan.describe())

    result = engine.execute(query)
    print(f"matches: {result.cardinality} (per shard: {result.shard_counts})")

    reference = LinearScanSelector(dataset.records, get_distance("hamming"))
    assert result.record_ids == reference.query(query.record, query.theta)
    print("sharded result is bit-identical to the unsharded scan")

    # --- Monotonicity survives the merge ---------------------------------- #
    group = engine.shard_group("fingerprints")
    merged_curve = group.estimate_curve(dataset.records[7])
    assert np.all(np.diff(merged_curve) >= -1e-9)
    print(f"merged curve is monotone over {len(merged_curve)} thresholds "
          "(a sum of monotone per-shard curves)")

    # --- An update touches one shard; the other shards do nothing --------- #
    report = engine.apply_update(
        "fingerprints", UpdateOperation("insert", [dataset.records[0]])
    )
    print(f"\ninsert routed to shard(s) {report.touched_shards} "
          f"of {NUM_SHARDS}; dataset size now {report.dataset_size}")

    updated_reference = LinearScanSelector(
        binding.records, get_distance("hamming")
    )
    post = engine.execute(SimilarityPredicate("fingerprints", binding.records[0], 8.0))
    assert post.record_ids == updated_reference.query(binding.records[0], 8.0)
    print("post-update results still exact")

    stats = engine.service.stats()
    print(f"\nserving cache: {stats['cache']}")


if __name__ == "__main__":
    main()

"""Scenario 1 (paper intro): estimating candidate counts in image retrieval.

Images are represented by binary hash codes; a similarity selection with a
Hamming threshold produces the candidate set that an expensive image-level
verifier must re-check.  Estimating the candidate cardinality *before* running
the selection lets the system predict the verification cost and meet a service
level agreement.

This example trains CardNet and a sampling baseline, then compares their cost
predictions for a batch of queries against the true candidate counts.

Run with:  python examples/image_retrieval_hamming.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import UniformSamplingEstimator
from repro.core import CardNetEstimator
from repro.datasets import make_binary_dataset
from repro.metrics import mape
from repro.selection import PackedHammingSelector
from repro.workloads import build_workload

VERIFICATION_COST_MS = 2.0  # pretend image-level verification costs 2 ms per candidate


def main() -> None:
    print("Generating synthetic 64-bit image hash codes ...")
    dataset = make_binary_dataset(
        num_records=1500, dimension=64, num_clusters=10, flip_probability=0.07,
        theta_max=16, seed=3, name="HM-ImageHashes",
    )

    print("Labelling a query workload with the exact (bit-packed) selector ...")
    workload = build_workload(dataset, query_fraction=0.04, num_thresholds=6, seed=4)

    print("Training CardNet ...")
    cardnet = CardNetEstimator.for_dataset(dataset, accelerated=True, epochs=15, vae_pretrain_epochs=4, seed=0)
    cardnet.fit(workload.train, workload.validation)

    sampler = UniformSamplingEstimator(dataset.records, "hamming", sample_ratio=0.05, seed=0)
    selector = PackedHammingSelector(dataset.records)

    print("\nPredicted vs actual verification cost for 8 retrieval queries (threshold = 12):")
    print(f"{'query':>6}  {'actual':>8}  {'CardNet':>8}  {'DB-US':>8}  {'cost est. (ms)':>14}")
    rng = np.random.default_rng(7)
    actual_counts, cardnet_counts, sampling_counts = [], [], []
    for query_id in rng.choice(len(dataset), size=8, replace=False):
        record = dataset.records[int(query_id)]
        actual = selector.cardinality(record, 12)
        predicted = cardnet.estimate(record, 12.0)
        sampled = sampler.estimate(record, 12.0)
        actual_counts.append(actual)
        cardnet_counts.append(predicted)
        sampling_counts.append(sampled)
        print(f"{int(query_id):>6}  {actual:>8}  {predicted:>8.1f}  {sampled:>8.1f}  {predicted * VERIFICATION_COST_MS:>14.1f}")

    print("\nWorkload-level cost-prediction error (MAPE):")
    print(f"  CardNet : {mape(actual_counts, cardnet_counts):.1f}%")
    print(f"  DB-US   : {mape(actual_counts, sampling_counts):.1f}%")


if __name__ == "__main__":
    main()

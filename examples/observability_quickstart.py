"""Observability quickstart: traces, metrics, and EXPLAIN ANALYZE.

Builds a two-attribute engine — a sharded Euclidean embedding (process
backend where ``fork`` is available, so the trace crosses process
boundaries) plus an unsharded auxiliary attribute — then walks the three
observability pieces:

1. EXPLAIN ANALYZE — execute one conjunctive query and print the report:
   estimated vs actual cardinality per predicate, q-errors, stage
   wall-times, and the span tree covering every shard task (child-process
   subtrees ride back with the results and re-parent in the query's trace);
2. metrics — the serving telemetry's registry, as a snapshot with
   latency percentiles and in Prometheus text exposition format;
3. slow-query ring — the engine keeps the last N queries over a wall-time
   threshold as plain dicts.

Tracing is off by default and costs nothing until enabled (the envelope is
pinned by ``benchmarks/bench_obs_overhead.py``: <2% with tracing off, <10%
with it on, results bit-identical either way).

Run with:  python examples/observability_quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import UniformSamplingEstimator
from repro.engine import ConjunctiveQuery, SimilarityPredicate, SimilarityQueryEngine
from repro.obs import disable_tracing, enable_tracing
from repro.runtime import fork_available


def sampling_factory(distance_name, **options):
    def factory(shard_records, shard_index):
        return UniformSamplingEstimator(
            shard_records, distance_name, seed=shard_index, **options
        )

    return factory


def main() -> None:
    backend = "process" if fork_available() else "thread"
    print(f"Building a two-attribute engine (sharded backend: {backend}) ...")

    rng = np.random.default_rng(42)
    embeddings = [row for row in rng.normal(size=(600, 16))]
    aux = [row for row in rng.normal(size=(600, 6))]

    # Keep every query in the slow-query ring for demonstration purposes; a
    # production threshold would be something like 0.5 (seconds).
    engine = SimilarityQueryEngine(slow_query_seconds=0.0, slow_query_capacity=16)
    engine.register_sharded_attribute(
        "embedding",
        embeddings,
        "euclidean",
        sampling_factory("euclidean", sample_ratio=0.2),
        num_shards=3,
        theta_max=8.0,
        backend=backend,
    )
    engine.register_attribute(
        "aux",
        aux,
        "euclidean",
        UniformSamplingEstimator(aux, "euclidean", sample_ratio=0.2, seed=0),
        theta_max=5.0,
    )

    query = ConjunctiveQuery(
        [
            SimilarityPredicate("embedding", embeddings[7], 4.5),
            SimilarityPredicate("aux", aux[7], 3.0),
        ]
    )
    # Warm the curve caches (and, on the process backend, publish the shard
    # data planes) so the analyzed query reflects steady-state behaviour.
    engine.execute(query)

    print("\n=== EXPLAIN ANALYZE ===")
    enable_tracing()
    try:
        report = engine.explain_analyze(query)
    finally:
        disable_tracing()
    print(report.describe())

    process_spans = report.process_spans()
    if process_spans:
        pids = sorted({span.pid for span in process_spans})
        print(f"Shard spans recorded inside forked children (pids {pids}) were")
        print("merged back into the parent's trace above.")

    print("\n=== Telemetry snapshot (per-endpoint, with percentiles) ===")
    snapshot = engine.service.telemetry.snapshot()
    for endpoint, stats in sorted(snapshot.items()):
        line = f"  {endpoint}: requests={stats['requests']}"
        if "latency_p95" in stats:
            line += f", p95={stats['latency_p95'] * 1e3:.3f}ms"
        print(line)

    print("\n=== Prometheus exposition (first lines) ===")
    text = engine.service.telemetry.to_prometheus()
    for line in text.splitlines()[:12]:
        print(f"  {line}")
    print("  ...")

    print("\n=== Slow-query ring ===")
    for entry in engine.slow_queries.entries()[-3:]:
        predicates = ", ".join(
            f"{attribute} <= {theta:g}" for attribute, theta in entry["predicates"]
        )
        print(
            f"  {entry['duration_seconds'] * 1e3:.2f}ms driver={entry['driver']} "
            f"[{predicates}] -> {entry['result_count']} rows"
        )

    engine.runtime.shutdown()
    print("\nOne trace covered planning, the sharded driver fan-out, and")
    print("residual verification; the same registry served percentiles and")
    print("Prometheus text; the ring kept the slowest queries for post-mortems.")


if __name__ == "__main__":
    main()

"""Continuous-monitoring quickstart: time series, SLOs, alerts, health.

Builds a small engine, then drives its :class:`MonitoringHub` with a
*deterministic* clock — ``engine.monitor(start=False)`` answers an idle hub
whose ``tick(now)`` does exactly what the background scraper loop does, one
scrape at an instant of your choosing.  That makes the walkthrough (and the
repo's tests) reproducible to the tick:

1. time series — the scraper samples every counter/gauge/histogram bucket
   into ring-buffer series; windowed rate() and p95 are derived from deltas;
2. SLOs — a latency objective evaluated as fast+slow burn rates with
   error-budget accounting;
3. alerts — a burn-rate rule stepping pending → firing → resolved as the
   workload degrades and recovers;
4. ``engine.health_report()`` — the whole engine as one text/JSON report.

In production you call ``engine.monitor()`` (no ``start=False``) and the
same loop runs on the runtime's ``monitor`` pool at ``interval`` seconds;
``benchmarks/bench_monitoring_overhead.py`` pins a live hub under 3%
overhead.  Every metric name used here is listed in
``docs/metrics_catalog.md``.

Run with:  python examples/monitoring_quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import UniformSamplingEstimator
from repro.engine import ConjunctiveQuery, SimilarityPredicate, SimilarityQueryEngine
from repro.obs import AlertRule, SLObjective, metric_key


def main() -> None:
    print("Building a one-attribute engine ...")
    rng = np.random.default_rng(7)
    vectors = [row for row in rng.normal(size=(800, 12))]

    engine = SimilarityQueryEngine()
    engine.register_attribute(
        "vec",
        vectors,
        "euclidean",
        UniformSamplingEstimator(vectors, "euclidean", sample_ratio=0.2, seed=0),
        theta_max=6.0,
    )
    queries = [
        ConjunctiveQuery([SimilarityPredicate("vec", vectors[i], 3.5)])
        for i in range(8)
    ]

    # Idle hub, driven by hand: tick(now) == one scrape + SLO + alert pass.
    hub = engine.monitor(start=False)
    hub.add_objective(
        SLObjective.latency(
            "vec",
            threshold=0.05,       # a request over 50ms is a "bad event"
            objective=0.9,        # 90% must be under it -> 10% error budget
            fast_window=60.0,
            slow_window=300.0,
        )
    )
    hub.add_rule(
        AlertRule(
            name="vec-latency-burn",
            kind="burn_rate",
            slo="latency-vec",
            for_seconds=120.0,    # dwell two minutes in pending before firing
        )
    )

    print("\n=== Phase 1: healthy traffic (ticks at t=0..300s) ===")
    for now in range(0, 301, 60):
        for query in queries:
            engine.execute(query)
        hub.tick(float(now))

    latency_series = metric_key("repro_request_latency_seconds", {"endpoint": "vec"})
    series = hub.store.get(latency_series)
    print(f"  scraped series: {len(hub.store)} (showing {latency_series})")
    print(f"  request rate over 5m: {series.rate(300.0, now=300.0):.2f}/s")
    p95 = series.windowed_quantile(0.95, 300.0, now=300.0)
    print(f"  windowed p95 over 5m: {p95 * 1e3:.2f}ms")
    for status in hub.last_slo_statuses:
        print(
            f"  SLO {status.name}: slow burn={status.slow_burn:.2f}, "
            f"budget remaining={status.budget_remaining:.0%}"
        )

    print("\n=== Phase 2: inject bad latency, watch the alert arm ===")
    telemetry = engine.service.telemetry
    for now in range(360, 601, 60):
        telemetry.record_requests("vec", count=20, hits=0, misses=20)
        for _ in range(20):
            telemetry.record_latency("vec", 0.2)
        hub.tick(float(now))
        status = hub.last_alert_statuses[0]
        slo = hub.last_slo_statuses[0]
        burn = f"{slo.slow_burn:.1f}" if slo.slow_burn is not None else "n/a"
        print(f"  t={now:>3}s  slow burn={burn:>4}  alert={status.state}")

    print("\n=== Phase 3: recover, watch it resolve ===")
    for now in range(660, 1101, 60):
        for query in queries:
            engine.execute(query)
        hub.tick(float(now))
    status = hub.last_alert_statuses[0]
    print(f"  t=1100s alert={status.state} after {status.transitions} transitions")

    print("\n=== Health report ===")
    report = engine.health_report(now=1100.0)
    print(report.describe())
    print(f"(machine-readable: health_report().to_json() -> "
          f"{len(report.to_json())} bytes)")

    engine.runtime.shutdown()
    print("\nThe same hub runs continuously via engine.monitor(interval=1.0);")
    print("series history survives engine.save()/load(), and REPRO_PROFILE=1")
    print("adds a sampling profiler whose collapsed stacks feed flamegraphs.")


if __name__ == "__main__":
    main()

"""Batch-first interface contract: for EVERY estimator, the vectorized paths
agree with the scalar path.

* ``estimate_many`` equals the scalar ``estimate`` loop to within 1e-9;
* ``estimate_curve_many`` columns equal ``estimate_batch`` at the grid
  thresholds, and are monotone for monotone estimators.
"""

import numpy as np
import pytest

from repro.baselines import ESTIMATOR_NAMES, build_estimator

#: Estimators exercised on the binary benchmark dataset (all of them build there).
ALL_NAMES = list(ESTIMATOR_NAMES)

#: Representatives with curve-specialized kernels on non-Hamming data types.
DB_SE_FIXTURES = ["string_dataset", "set_dataset", "vector_dataset"]


@pytest.fixture(scope="module")
def fitted_estimators(binary_dataset, binary_workload):
    """Every named estimator, trained cheaply once for the module."""
    estimators = {}
    for name in ALL_NAMES:
        estimator = build_estimator(name, binary_dataset, seed=0, epochs=1)
        estimator.fit(binary_workload.train[:80], binary_workload.validation[:20])
        estimators[name] = estimator
    return estimators


@pytest.mark.parametrize("name", ALL_NAMES)
def test_estimate_many_equals_scalar_loop(name, fitted_estimators, binary_workload):
    estimator = fitted_estimators[name]
    examples = binary_workload.test[:16]
    batched = estimator.estimate_many(examples)
    scalar = np.asarray(
        [estimator.estimate(example.record, example.theta) for example in examples]
    )
    assert batched.shape == (len(examples),)
    np.testing.assert_allclose(batched, scalar, rtol=1e-9, atol=1e-9)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_curve_columns_equal_batch_estimates(name, fitted_estimators, binary_dataset, binary_workload):
    estimator = fitted_estimators[name]
    records = [example.record for example in binary_workload.test[:6]]
    grid = np.arange(int(binary_dataset.theta_max) + 1, dtype=np.float64)
    curves = estimator.estimate_curve_many(records, grid)
    assert curves.shape == (len(records), len(grid))
    for column, theta in enumerate(grid):
        direct = estimator.estimate_batch(records, np.full(len(records), theta))
        np.testing.assert_allclose(curves[:, column], direct, rtol=1e-9, atol=1e-9)
    if estimator.monotonic:
        assert np.all(np.diff(curves, axis=1) >= -1e-9)


@pytest.mark.parametrize("fixture_name", DB_SE_FIXTURES)
def test_db_se_batch_scalar_agreement_per_distance(request, fixture_name):
    """The distance-specialized DB-SE estimators agree batch-vs-scalar too."""
    dataset = request.getfixturevalue(fixture_name)
    estimator = build_estimator("DB-SE", dataset, seed=0)
    records = list(dataset.records[:8])
    rng = np.random.default_rng(0)
    thetas = rng.uniform(0.0, dataset.theta_max, size=len(records))
    if dataset.distance_name == "edit":
        thetas = np.floor(thetas)
    batched = estimator.estimate_batch(records, thetas)
    scalar = np.asarray(
        [estimator.estimate(record, float(theta)) for record, theta in zip(records, thetas)]
    )
    np.testing.assert_allclose(batched, scalar, rtol=1e-9, atol=1e-9)


def test_cardnet_estimate_many_uses_vectorized_threshold_transform(
    fitted_estimators, binary_workload, monkeypatch
):
    """CardNet's batch path must call ``transform_thresholds`` (one vectorized
    call), never the per-example scalar ``transform_threshold`` loop."""
    estimator = fitted_estimators["CardNet"]
    calls = {"batch": 0, "scalar": 0}
    original = type(estimator.extractor).transform_thresholds

    def counting_batch(self, thetas):
        calls["batch"] += 1
        return original(self, thetas)

    def counting_scalar(self, theta):
        calls["scalar"] += 1
        raise AssertionError("scalar transform_threshold used on the batch path")

    monkeypatch.setattr(type(estimator.extractor), "transform_thresholds", counting_batch)
    monkeypatch.setattr(type(estimator.extractor), "transform_threshold", counting_scalar)
    try:
        estimator.estimate_many(binary_workload.test[:8])
    finally:
        monkeypatch.undo()
    assert calls["batch"] == 1
    assert calls["scalar"] == 0

"""Unit tests for CardNet's building blocks: VAE, encoders, decoders, loss."""

import numpy as np
import pytest

from repro.core import (
    AcceleratedEncoder,
    DistanceEmbedding,
    DynamicLossWeights,
    PerDistanceDecoders,
    SharedEncoder,
    VariationalAutoEncoder,
    empirical_tau_distribution,
    pretrain_vae,
    weighted_msle,
)
from repro.nn import Tensor


class TestVAE:
    @pytest.fixture(scope="class")
    def vae(self):
        return VariationalAutoEncoder(input_dimension=20, latent_dimension=6, hidden_sizes=(16,), seed=0)

    def test_encode_shapes(self, vae):
        x = Tensor(np.random.default_rng(0).integers(0, 2, size=(4, 20)).astype(float))
        mean, log_var = vae.encode(x)
        assert mean.shape == (4, 6)
        assert log_var.shape == (4, 6)

    def test_decode_shape(self, vae):
        logits = vae.decode(Tensor(np.zeros((3, 6))))
        assert logits.shape == (3, 20)

    def test_representation_concatenates(self, vae):
        x = Tensor(np.zeros((2, 20)))
        representation = vae.representation(x, deterministic=True)
        assert representation.shape == (2, 26)
        assert vae.representation_dimension == 26

    def test_deterministic_latent_is_reproducible(self, vae):
        x = Tensor(np.ones((2, 20)))
        a = vae.latent(x, deterministic=True).data
        b = vae.latent(x, deterministic=True).data
        assert np.array_equal(a, b)

    def test_stochastic_latent_varies(self, vae):
        x = Tensor(np.ones((2, 20)))
        a = vae.latent(x, deterministic=False).data
        b = vae.latent(x, deterministic=False).data
        assert not np.array_equal(a, b)

    def test_loss_positive(self, vae):
        x = Tensor(np.random.default_rng(1).integers(0, 2, size=(8, 20)).astype(float))
        assert vae.loss(x).item() > 0.0

    def test_pretraining_decreases_loss(self):
        rng = np.random.default_rng(2)
        features = rng.integers(0, 2, size=(80, 20)).astype(float)
        vae = VariationalAutoEncoder(input_dimension=20, latent_dimension=6, hidden_sizes=(16,), seed=1)
        history = pretrain_vae(vae, features, epochs=8, batch_size=16, seed=1)
        assert history[-1] < history[0]

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            VariationalAutoEncoder(input_dimension=0, latent_dimension=4)


class TestDistanceEmbedding:
    def test_shapes(self):
        embedding = DistanceEmbedding(tau_max=6, embedding_dimension=5, seed=0)
        assert embedding.all_embeddings().shape == (7, 5)
        assert embedding(np.array([0, 3])).shape == (2, 5)

    def test_negative_tau_max_rejected(self):
        with pytest.raises(ValueError):
            DistanceEmbedding(tau_max=-1)


class TestSharedEncoder:
    def test_embed_all_count_and_shape(self):
        encoder = SharedEncoder(
            representation_dimension=10, distance_embedding_dimension=4,
            embedding_dimension=8, hidden_sizes=(16,), seed=0,
        )
        embeddings = DistanceEmbedding(tau_max=3, embedding_dimension=4, seed=0)
        representation = Tensor(np.random.default_rng(0).normal(size=(5, 10)))
        outputs = encoder.embed_all(representation, embeddings.all_embeddings())
        assert len(outputs) == 4
        assert all(output.shape == (5, 8) for output in outputs)

    def test_different_distances_different_embeddings(self):
        encoder = SharedEncoder(
            representation_dimension=6, distance_embedding_dimension=4,
            embedding_dimension=8, hidden_sizes=(16,), seed=0,
        )
        embeddings = DistanceEmbedding(tau_max=2, embedding_dimension=4, seed=0)
        representation = Tensor(np.ones((1, 6)))
        outputs = encoder.embed_all(representation, embeddings.all_embeddings())
        assert not np.allclose(outputs[0].data, outputs[1].data)


class TestAcceleratedEncoder:
    def test_output_shape(self):
        encoder = AcceleratedEncoder(
            representation_dimension=10, tau_max=5, embedding_dimension=9,
            hidden_sizes=(16, 8), seed=0,
        )
        z = encoder(Tensor(np.random.default_rng(0).normal(size=(3, 10))))
        assert z.shape == (3, 6, 9)

    def test_region_widths_partition_embedding(self):
        encoder = AcceleratedEncoder(
            representation_dimension=10, tau_max=5, embedding_dimension=9,
            hidden_sizes=(16, 8), seed=0,
        )
        assert sum(encoder.region_widths) == 9

    def test_embed_all_matches_forward(self):
        encoder = AcceleratedEncoder(
            representation_dimension=6, tau_max=3, embedding_dimension=4,
            hidden_sizes=(8,), seed=0,
        )
        representation = Tensor(np.random.default_rng(1).normal(size=(2, 6)))
        z_matrix = encoder(representation).data
        per_distance = encoder.embed_all(representation)
        for index, embedding in enumerate(per_distance):
            assert np.allclose(embedding.data, z_matrix[:, index, :])

    def test_requires_hidden_layers(self):
        with pytest.raises(ValueError):
            AcceleratedEncoder(representation_dimension=4, tau_max=2, hidden_sizes=())


class TestDecoders:
    def test_nonnegative_outputs(self):
        decoders = PerDistanceDecoders(tau_max=4, embedding_dimension=6, seed=0)
        embeddings = [Tensor(np.random.default_rng(i).normal(size=(7, 6))) for i in range(5)]
        per_distance = decoders.decode_all(embeddings)
        assert per_distance.shape == (7, 5)
        assert np.all(per_distance.data >= 0.0)

    def test_cumulative_monotone_in_tau(self):
        decoders = PerDistanceDecoders(tau_max=4, embedding_dimension=6, seed=0)
        embeddings = [Tensor(np.random.default_rng(i).normal(size=(3, 6))) for i in range(5)]
        per_distance = decoders.decode_all(embeddings)
        previous = np.zeros(3)
        for tau in range(5):
            current = PerDistanceDecoders.cumulative(per_distance, np.full(3, tau)).data
            assert np.all(current >= previous - 1e-12)
            previous = current

    def test_cumulative_equals_manual_sum(self):
        decoders = PerDistanceDecoders(tau_max=3, embedding_dimension=4, seed=1)
        embeddings = [Tensor(np.random.default_rng(i).normal(size=(2, 4))) for i in range(4)]
        per_distance = decoders.decode_all(embeddings)
        taus = np.array([1, 3])
        cumulative = PerDistanceDecoders.cumulative(per_distance, taus).data
        manual = [per_distance.data[0, :2].sum(), per_distance.data[1, :4].sum()]
        assert np.allclose(cumulative, manual)

    def test_out_of_range_distance(self):
        decoders = PerDistanceDecoders(tau_max=2, embedding_dimension=4, seed=0)
        with pytest.raises(IndexError):
            decoders.decode_distance(Tensor(np.zeros((1, 4))), 3)

    def test_wrong_embedding_count(self):
        decoders = PerDistanceDecoders(tau_max=2, embedding_dimension=4, seed=0)
        with pytest.raises(ValueError):
            decoders.decode_all([Tensor(np.zeros((1, 4)))])


class TestLossComponents:
    def test_weighted_msle_unweighted_matches_plain(self):
        prediction = Tensor(np.array([1.0, 5.0, 10.0]))
        target = Tensor(np.array([2.0, 5.0, 8.0]))
        unweighted = weighted_msle(prediction, target).item()
        uniform = weighted_msle(prediction, target, np.ones(3)).item()
        assert unweighted == pytest.approx(uniform)

    def test_weighted_msle_weights_emphasize_rows(self):
        prediction = Tensor(np.array([1.0, 100.0]))
        target = Tensor(np.array([1.0, 1.0]))
        emphasize_bad = weighted_msle(prediction, target, np.array([0.0, 1.0])).item()
        emphasize_good = weighted_msle(prediction, target, np.array([1.0, 0.0])).item()
        assert emphasize_bad > emphasize_good

    def test_dynamic_weights_initial_uniform(self):
        weights = DynamicLossWeights(tau_max=3)
        assert np.allclose(weights.weights, 0.25)

    def test_dynamic_weights_follow_loss_increases(self):
        weights = DynamicLossWeights(tau_max=3)
        weights.update([1.0, 1.0, 1.0, 1.0])
        updated = weights.update([2.0, 1.0, 0.5, 3.0])
        # Distances 0 and 3 got worse; only they receive weight.
        assert updated[1] == 0.0 and updated[2] == 0.0
        assert updated[0] > 0.0 and updated[3] > 0.0
        assert np.isclose(updated.sum(), 1.0)

    def test_dynamic_weights_all_improved(self):
        weights = DynamicLossWeights(tau_max=2)
        weights.update([2.0, 2.0, 2.0])
        updated = weights.update([1.0, 1.0, 1.0])
        assert np.allclose(updated, 0.0)

    def test_dynamic_weights_wrong_shape(self):
        weights = DynamicLossWeights(tau_max=2)
        with pytest.raises(ValueError):
            weights.update([1.0, 2.0])

    def test_empirical_tau_distribution(self):
        distribution = empirical_tau_distribution([0, 0, 1, 3], tau_max=3)
        assert np.isclose(distribution.sum(), 1.0)
        assert distribution[0] == pytest.approx(0.5)
        assert distribution[2] == 0.0

    def test_empirical_tau_distribution_empty(self):
        distribution = empirical_tau_distribution([], tau_max=3)
        assert np.allclose(distribution, 0.25)

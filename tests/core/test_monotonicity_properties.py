"""Property-based tests of CardNet's headline guarantee: monotonicity in θ.

Lemma 1/2 of the paper: with a monotone threshold transform and non-negative
deterministic per-distance decoders, the estimate is monotonically increasing
in the original threshold — for *any* parameters, trained or not.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CardNet, CardNetConfig


def build_model(seed: int, accelerated: bool, tau_max: int = 6) -> CardNet:
    config = CardNetConfig(
        tau_max=tau_max,
        vae_latent_dimension=4,
        vae_hidden_sizes=(8,),
        distance_embedding_dimension=3,
        embedding_dimension=6,
        encoder_hidden_sizes=(10,),
        accelerated=accelerated,
        seed=seed,
    )
    return CardNet(input_dimension=10, config=config)


binary_records = st.lists(st.integers(0, 1), min_size=10, max_size=10)


@settings(max_examples=20, deadline=None)
@given(binary_records, st.integers(0, 100))
def test_untrained_cardnet_is_monotone(record, seed):
    model = build_model(seed % 5, accelerated=False)
    features = np.asarray(record, dtype=float)[None, :]
    curve = model.estimate_curve(features)[0]
    assert np.all(np.diff(curve) >= -1e-12)


@settings(max_examples=20, deadline=None)
@given(binary_records, st.integers(0, 100))
def test_untrained_accelerated_cardnet_is_monotone(record, seed):
    model = build_model(seed % 5, accelerated=True)
    features = np.asarray(record, dtype=float)[None, :]
    curve = model.estimate_curve(features)[0]
    assert np.all(np.diff(curve) >= -1e-12)


@settings(max_examples=20, deadline=None)
@given(binary_records, st.integers(0, 6), st.integers(0, 6))
def test_estimates_ordered_by_tau(record, tau_a, tau_b):
    model = build_model(seed=3, accelerated=False)
    features = np.asarray(record, dtype=float)[None, :]
    low, high = sorted([tau_a, tau_b])
    low_estimate = model.estimate(features, np.array([low]))[0]
    high_estimate = model.estimate(features, np.array([high]))[0]
    assert low_estimate <= high_estimate + 1e-12


@settings(max_examples=20, deadline=None)
@given(binary_records)
def test_estimates_nonnegative(record):
    model = build_model(seed=1, accelerated=True)
    features = np.asarray(record, dtype=float)[None, :]
    assert np.all(model.estimate_curve(features) >= 0.0)


@settings(max_examples=15, deadline=None)
@given(st.lists(binary_records, min_size=2, max_size=5))
def test_batch_and_single_estimates_agree(records):
    model = build_model(seed=2, accelerated=False)
    features = np.asarray(records, dtype=float)
    taus = np.full(len(records), 4)
    batch = model.estimate(features, taus)
    singles = [model.estimate(row[None, :], np.array([4]))[0] for row in features]
    assert np.allclose(batch, singles, atol=1e-9)

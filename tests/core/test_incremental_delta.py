"""O(Δ) label maintenance and the update manager's delta path (paper §8)."""

import numpy as np
import pytest

from repro.core import CardNetEstimator, IncrementalUpdateManager
from repro.datasets.updates import UpdateOperation
from repro.selection import PackedHammingSelector
from repro.workloads.builder import relabel, relabel_delta


@pytest.fixture(scope="module")
def delta_setup(binary_dataset, binary_workload):
    selector = PackedHammingSelector(binary_dataset.records)
    return binary_dataset, binary_workload, selector


class TestRelabelDelta:
    def test_empty_delta_returns_the_same_labels(self, delta_setup):
        _, workload, selector = delta_setup
        examples = list(workload.validation)
        relabelled = relabel_delta(examples, selector, [], [])
        assert [e.cardinality for e in relabelled] == [
            e.cardinality for e in examples
        ]

    @pytest.mark.parametrize("case", ["insert", "delete", "both"])
    def test_delta_relabel_matches_full_relabel(self, delta_setup, case):
        dataset, workload, _ = delta_setup
        rng = np.random.default_rng(13)
        records = list(dataset.records)
        selector = PackedHammingSelector(np.asarray(records, dtype=np.uint8))
        examples = list(workload.validation)

        inserted, removed = [], []
        if case in ("insert", "both"):
            inserted = list(
                rng.integers(0, 2, size=(9, records[0].shape[0]), dtype=np.uint8)
            )
            selector.insert_many(inserted)
        if case in ("delete", "both"):
            positions = np.asarray([3, 17, 40])
            removed = [records[int(i)] for i in positions]
            selector.delete_many(positions)

        fast = relabel_delta(examples, selector, inserted, removed)
        full = relabel(examples, selector)
        assert [e.cardinality for e in fast] == [e.cardinality for e in full]

    def test_accumulated_deltas_cancel_insert_then_delete(self, delta_setup):
        dataset, workload, _ = delta_setup
        rng = np.random.default_rng(5)
        selector = PackedHammingSelector(dataset.records)
        examples = list(workload.validation)

        extra = list(
            rng.integers(0, 2, size=(4, dataset.records.shape[1]), dtype=np.uint8)
        )
        selector.insert_many(extra)
        # Drop two of the rows just inserted: in the *accumulated* delta both
        # sides must cancel, leaving labels equal to a full relabel.
        doomed = np.asarray([len(dataset.records), len(dataset.records) + 1])
        selector.delete_many(doomed)
        inserted = extra
        removed = [extra[0], extra[1]]

        fast = relabel_delta(examples, selector, inserted, removed)
        full = relabel(examples, selector)
        assert [e.cardinality for e in fast] == [e.cardinality for e in full]


@pytest.fixture
def manager(binary_dataset, binary_workload):
    selector = PackedHammingSelector(binary_dataset.records)
    estimator = CardNetEstimator.for_dataset(
        binary_dataset, seed=3, epochs=2, vae_pretrain_epochs=1
    )
    train = relabel(binary_workload.train[:30], selector)
    validation = relabel(binary_workload.validation[:10], selector)
    estimator.fit(train, validation)
    return IncrementalUpdateManager(
        estimator,
        selector,
        train,
        validation,
        max_epochs_per_update=1,
    )


class TestManagerDeltaPath:
    def test_process_applies_in_place_without_rebuilding(self, manager):
        selector = manager.selector
        mutations = selector.mutation_count
        rng = np.random.default_rng(2)
        inserted = rng.integers(
            0, 2, size=(5, np.asarray(manager.records[0]).shape[0]), dtype=np.uint8
        )
        report = manager.process(UpdateOperation("insert", inserted), 0)
        assert manager.selector is selector  # no index rebuild, only a delta
        assert selector.mutation_count == mutations + 1
        assert report.dataset_size == len(manager.records)

    def test_validation_labels_stay_exact_through_the_delta_path(self, manager):
        rng = np.random.default_rng(8)
        width = np.asarray(manager.records[0]).shape[0]
        manager.process(
            UpdateOperation("insert", rng.integers(0, 2, size=(6, width), dtype=np.uint8)),
            0,
        )
        manager.process(UpdateOperation("delete", np.asarray([1, 30, 299])), 1)
        expected = relabel(manager.validation_examples, manager.selector)
        assert [e.cardinality for e in manager.validation_examples] == [
            e.cardinality for e in expected
        ]

    def test_training_deltas_accumulate_until_a_retrain(self, manager):
        rng = np.random.default_rng(4)
        width = np.asarray(manager.records[0]).shape[0]
        # Make the baseline untriggerable so no retrain happens.
        manager._baseline_validation_error = float("inf")
        train_before = manager.train_examples
        manager.process(
            UpdateOperation("insert", rng.integers(0, 2, size=(3, width), dtype=np.uint8)),
            0,
        )
        manager.process(UpdateOperation("delete", np.asarray([7, 8])), 1)
        # Training labels untouched; deltas parked for the next retrain.
        assert manager.train_examples is train_before
        assert len(manager._pending_train_inserted) == 3
        assert len(manager._pending_train_removed) == 2
        # Force a degradation so the next step retrains and drains the queue.
        manager._baseline_validation_error = -1.0
        report = manager.process(UpdateOperation("delete", np.asarray([0])), 2)
        assert report.retrained
        assert manager._pending_train_inserted == []
        assert manager._pending_train_removed == []
        expected = relabel(manager.train_examples, manager.selector)
        assert [e.cardinality for e in manager.train_examples] == [
            e.cardinality for e in expected
        ]

    def test_revalidate_full_relabel_drains_pending(self, manager):
        rng = np.random.default_rng(9)
        width = np.asarray(manager.records[0]).shape[0]
        manager._baseline_validation_error = float("inf")
        manager.process(
            UpdateOperation("insert", rng.integers(0, 2, size=(2, width), dtype=np.uint8)),
            0,
        )
        assert manager._pending_train_inserted
        report = manager.revalidate(force_retrain=True)
        assert report.retrained
        assert manager._pending_train_inserted == []
        assert manager._pending_train_removed == []

"""Tests for the CardNet model, its trainer, the estimator API, and incremental learning."""

import numpy as np
import pytest

from repro.core import (
    CardNet,
    CardNetConfig,
    CardNetEstimator,
    CardNetTrainer,
    featurize_examples,
)
from repro.core.training import RegressionRow, _cumulative_mask, _segment_mask
from repro.datasets import generate_update_stream
from repro.core.incremental import IncrementalUpdateManager
from repro.featurization import build_feature_extractor
from repro.metrics import mean_q_error, monotonicity_violation_rate
from repro.selection import default_selector
from repro.workloads import QueryExample


def tiny_config(tau_max: int = 5, accelerated: bool = False) -> CardNetConfig:
    return CardNetConfig(
        tau_max=tau_max,
        vae_latent_dimension=4,
        vae_hidden_sizes=(8,),
        distance_embedding_dimension=3,
        embedding_dimension=6,
        encoder_hidden_sizes=(12,),
        accelerated=accelerated,
        seed=0,
    )


class TestCardNetModel:
    @pytest.mark.parametrize("accelerated", [False, True])
    def test_estimate_shapes(self, accelerated):
        model = CardNet(input_dimension=12, config=tiny_config(accelerated=accelerated))
        features = np.random.default_rng(0).integers(0, 2, size=(4, 12)).astype(float)
        estimates = model.estimate(features, np.array([0, 1, 3, 5]))
        assert estimates.shape == (4,)
        assert np.all(estimates >= 0.0)

    @pytest.mark.parametrize("accelerated", [False, True])
    def test_estimate_curve_monotone(self, accelerated):
        model = CardNet(input_dimension=12, config=tiny_config(accelerated=accelerated))
        features = np.random.default_rng(1).integers(0, 2, size=(6, 12)).astype(float)
        curves = model.estimate_curve(features)
        assert curves.shape == (6, 6)
        assert np.all(np.diff(curves, axis=1) >= -1e-12)

    def test_inference_is_deterministic(self):
        model = CardNet(input_dimension=12, config=tiny_config())
        features = np.random.default_rng(2).integers(0, 2, size=(3, 12)).astype(float)
        a = model.estimate(features, np.array([2, 2, 2]))
        b = model.estimate(features, np.array([2, 2, 2]))
        assert np.array_equal(a, b)

    def test_training_forward_is_stochastic(self):
        model = CardNet(input_dimension=12, config=tiny_config())
        model.train()
        features = np.random.default_rng(3).integers(0, 2, size=(3, 12)).astype(float)
        from repro.nn import Tensor

        a = model.forward(Tensor(features), np.array([2, 2, 2]), deterministic=False).data
        b = model.forward(Tensor(features), np.array([2, 2, 2]), deterministic=False).data
        assert not np.array_equal(a, b)

    def test_estimate_increasing_in_tau(self):
        model = CardNet(input_dimension=12, config=tiny_config())
        features = np.random.default_rng(4).integers(0, 2, size=(1, 12)).astype(float)
        values = [model.estimate(features, np.array([tau]))[0] for tau in range(6)]
        assert values == sorted(values)

    def test_accelerated_flag_exposed(self):
        model = CardNet(input_dimension=8, config=tiny_config(accelerated=True))
        assert model.accelerated
        assert model.tau_max == 5

    def test_vae_loss_positive(self):
        from repro.nn import Tensor

        model = CardNet(input_dimension=12, config=tiny_config())
        features = Tensor(np.random.default_rng(5).integers(0, 2, size=(4, 12)).astype(float))
        assert model.vae_loss(features).item() > 0.0


class TestFeaturization:
    def test_featurize_examples_groups_queries(self, binary_dataset, binary_workload):
        extractor = build_feature_extractor(binary_dataset)
        split = featurize_examples(binary_workload.train, extractor)
        unique_records = {example.record.tobytes() for example in binary_workload.train}
        assert split.features.shape[0] == len(unique_records)
        assert len(split.rows) > 0

    def test_segment_targets_sum_to_cumulative(self, binary_dataset, binary_workload):
        extractor = build_feature_extractor(binary_dataset)
        split = featurize_examples(binary_workload.train, extractor)
        by_query = {}
        for row in split.rows:
            by_query.setdefault(row.query_index, []).append(row)
        for rows in by_query.values():
            rows.sort(key=lambda r: r.tau)
            total = sum(row.segment_target for row in rows)
            assert total == pytest.approx(rows[-1].cumulative)

    def test_segment_mask_covers_half_open_interval(self):
        rows = [RegressionRow(query_index=0, tau=4, cumulative=10, segment_low=1, segment_target=4)]
        mask = _segment_mask(rows, tau_max=6)
        assert np.array_equal(mask[0], [0, 0, 1, 1, 1, 0, 0])

    def test_cumulative_mask_covers_prefix(self):
        rows = [RegressionRow(query_index=0, tau=2, cumulative=10, segment_low=-1, segment_target=10)]
        mask = _cumulative_mask(rows, tau_max=4)
        assert np.array_equal(mask[0], [1, 1, 1, 0, 0])

    def test_empty_examples(self, binary_dataset):
        extractor = build_feature_extractor(binary_dataset)
        split = featurize_examples([], extractor)
        assert split.features.shape[0] == 0
        assert split.rows == []


class TestTraining:
    def test_training_reduces_validation_loss(self, binary_dataset, binary_workload):
        extractor = build_feature_extractor(binary_dataset)
        model = CardNet(input_dimension=extractor.dimension, config=tiny_config(tau_max=extractor.tau_max))
        trainer = CardNetTrainer(model, extractor, batch_size=32, vae_pretrain_epochs=2, seed=0)
        result = trainer.fit(binary_workload.train, binary_workload.validation, epochs=8)
        assert result.epochs_run == 8
        assert result.validation_losses[-1] < result.validation_losses[0]
        assert result.training_seconds > 0.0

    def test_patience_stops_early(self, binary_dataset, binary_workload):
        # With a zero learning rate the validation loss never improves after the
        # first epoch, so training must stop after exactly (patience + 1) epochs.
        extractor = build_feature_extractor(binary_dataset)
        model = CardNet(input_dimension=extractor.dimension, config=tiny_config(tau_max=extractor.tau_max))
        trainer = CardNetTrainer(
            model, extractor, learning_rate=0.0, batch_size=32, vae_pretrain_epochs=0, seed=0
        )
        result = trainer.fit(
            binary_workload.train, binary_workload.validation, epochs=50, patience=2,
            pretrain_vae=False,
        )
        assert result.epochs_run == 3


class TestEstimatorAPI:
    def test_estimates_are_monotone_in_theta(self, trained_cardnet, binary_dataset):
        record = binary_dataset.records[3]
        thresholds = np.arange(0, int(binary_dataset.theta_max) + 1)
        estimates = [[trained_cardnet.estimate(record, float(t))] for t in thresholds]
        assert monotonicity_violation_rate(estimates) == 0.0

    def test_accelerated_estimates_are_monotone(self, trained_cardnet_accelerated, binary_dataset):
        record = binary_dataset.records[7]
        thresholds = np.arange(0, int(binary_dataset.theta_max) + 1)
        estimates = [[trained_cardnet_accelerated.estimate(record, float(t))] for t in thresholds]
        assert monotonicity_violation_rate(estimates) == 0.0

    def test_accuracy_beats_trivial_zero_estimator(self, trained_cardnet, binary_workload):
        actual = [example.cardinality for example in binary_workload.test]
        estimates = trained_cardnet.estimate_many(binary_workload.test)
        zero_q_error = mean_q_error(actual, np.zeros(len(actual)))
        model_q_error = mean_q_error(actual, estimates)
        assert model_q_error < zero_q_error

    def test_estimate_many_matches_single(self, trained_cardnet, binary_workload):
        examples = binary_workload.test[:5]
        batch = trained_cardnet.estimate_many(examples)
        singles = [trained_cardnet.estimate(e.record, e.theta) for e in examples]
        assert np.allclose(batch, singles, atol=1e-9)

    def test_estimate_curve_length(self, trained_cardnet, binary_dataset):
        curve = trained_cardnet.estimate_curve(binary_dataset.records[0])
        assert len(curve) == trained_cardnet.extractor.tau_max + 1

    def test_size_in_bytes_positive(self, trained_cardnet):
        assert trained_cardnet.size_in_bytes() > 0

    def test_validation_msle_nonnegative(self, trained_cardnet, binary_workload):
        assert trained_cardnet.validation_msle(binary_workload.validation) >= 0.0

    def test_for_dataset_rejects_nothing_sets_name(self, binary_dataset):
        estimator = CardNetEstimator.for_dataset(binary_dataset, accelerated=True, epochs=1)
        assert estimator.name == "CardNet-A"
        assert estimator.monotonic


class TestIncrementalLearning:
    def test_incremental_fit_runs_and_stops(self, binary_dataset, binary_workload):
        estimator = CardNetEstimator.for_dataset(
            binary_dataset, epochs=2, vae_pretrain_epochs=1, seed=3
        )
        estimator.fit(binary_workload.train, binary_workload.validation)
        result = estimator.incremental_fit(
            binary_workload.train, binary_workload.validation, max_epochs=6
        )
        assert 1 <= result.epochs_run <= 6

    def test_update_manager_processes_stream(self, binary_dataset, binary_workload):
        estimator = CardNetEstimator.for_dataset(
            binary_dataset, epochs=2, vae_pretrain_epochs=1, seed=4
        )
        estimator.fit(binary_workload.train, binary_workload.validation)
        selector = default_selector("hamming", binary_dataset.records)
        manager = IncrementalUpdateManager(
            estimator,
            selector,
            binary_workload.train[:40],
            binary_workload.validation[:20],
            max_epochs_per_update=2,
        )
        operations = generate_update_stream(
            binary_dataset, num_operations=3, records_per_operation=10, seed=0
        )
        reports = manager.process_stream(operations)
        assert len(reports) == 3
        assert all(report.dataset_size > 0 for report in reports)
        assert reports[-1].dataset_size == len(manager.records)


class TestQueryExampleIntegration:
    def test_handles_non_array_records(self, set_dataset, set_workload):
        """CardNet must work on set records (hashing via frozenset keys)."""
        estimator = CardNetEstimator.for_dataset(set_dataset, epochs=2, vae_pretrain_epochs=1, seed=0)
        estimator.fit(set_workload.train[:60], set_workload.validation[:20])
        example = set_workload.test[0]
        assert estimator.estimate(example.record, example.theta) >= 0.0

    def test_handles_string_records(self, string_dataset, string_workload):
        estimator = CardNetEstimator.for_dataset(string_dataset, epochs=2, vae_pretrain_epochs=1, seed=0)
        estimator.fit(string_workload.train[:60], string_workload.validation[:20])
        example = string_workload.test[0]
        assert estimator.estimate(example.record, example.theta) >= 0.0

    def test_rejects_unknown_threshold(self, trained_cardnet, binary_dataset):
        with pytest.raises(ValueError):
            trained_cardnet.estimate(binary_dataset.records[0], binary_dataset.theta_max + 100)

"""Trace layer: span trees, the off-by-default no-op path, and propagation
through worker pools — threads and forked children alike."""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import textwrap

import pytest

from repro.obs import (
    NOOP_SPAN,
    Span,
    activate,
    capture_context,
    current_span,
    disable_tracing,
    enable_tracing,
    span,
    start_trace,
    tracing_enabled,
)
from repro.runtime import WorkerPool, fork_available


@pytest.fixture(autouse=True)
def _tracing_off():
    """Every test starts (and leaves) with global tracing disabled."""
    disable_tracing()
    yield
    disable_tracing()


class TestSpanTree:
    def test_nested_spans_build_a_tree(self):
        with start_trace("root") as root:
            assert current_span() is root
            with span("child-a") as a:
                with span("leaf") as leaf:
                    assert current_span() is leaf
            with span("child-b"):
                pass
        assert current_span() is None
        assert [c.name for c in root.children] == ["child-a", "child-b"]
        assert [c.name for c in a.children] == ["leaf"]
        assert root.duration is not None and root.duration >= 0.0
        assert leaf.trace_id == root.trace_id
        assert leaf.parent_id == a.span_id

    def test_attributes_and_find(self):
        with start_trace("root") as root:
            with span("work", shard=3) as node:
                node.set(rows=7)
        found = root.find("work")
        assert len(found) == 1
        assert found[0].attributes == {"shard": 3, "rows": 7}
        assert [s.name for s in root.iter_spans()] == ["root", "work"]

    def test_exception_sets_error_attribute(self):
        with pytest.raises(ValueError):
            with start_trace("root") as root:
                with span("explode"):
                    raise ValueError("boom")
        (failed,) = root.find("explode")
        assert "boom" in failed.attributes["error"]
        assert failed.duration is not None

    def test_to_dict_and_tree_render(self):
        with start_trace("root") as root:
            with span("inner", k="v"):
                pass
        as_dict = root.to_dict()
        assert as_dict["name"] == "root"
        assert as_dict["children"][0]["attributes"] == {"k": "v"}
        rendered = root.tree()
        assert "root" in rendered and "inner" in rendered

    def test_spans_pickle(self):
        with start_trace("root") as root:
            with span("inner"):
                pass
        clone = pickle.loads(pickle.dumps(root))
        assert clone.name == "root"
        assert clone.children[0].name == "inner"
        assert clone.span_id == root.span_id

    def test_adopt_reparents_a_subtree(self):
        foreign = Span("process.task")
        foreign.child("shard.task").finish()
        foreign.finish()
        with start_trace("root") as root:
            with span("pool.task") as task:
                task.adopt(foreign)
        assert foreign.parent_id == task.span_id
        assert foreign.trace_id == root.trace_id
        assert root.find("shard.task")


class TestDisabledPath:
    def test_spans_are_noops_when_off(self):
        assert not tracing_enabled()
        with span("anything") as node:
            assert node is NOOP_SPAN
            with span("nested") as inner:
                assert inner is NOOP_SPAN
        assert current_span() is None
        assert NOOP_SPAN.set(a=1) is NOOP_SPAN
        assert NOOP_SPAN.find("anything") == []
        assert list(NOOP_SPAN.iter_spans()) == []
        assert NOOP_SPAN.children == []

    def test_enable_disable_toggle(self):
        enable_tracing()
        try:
            with span("now-recorded") as node:
                assert isinstance(node, Span)
        finally:
            disable_tracing()
        with span("off-again") as node:
            assert node is NOOP_SPAN

    def test_start_trace_forces_recording_while_off(self):
        with start_trace("forced") as root:
            assert isinstance(root, Span)
            with span("child") as child:
                assert isinstance(child, Span)
        assert root.children == [child]

    def test_env_flag_enables_tracing(self):
        script = textwrap.dedent(
            """
            from repro.obs import tracing_enabled, span, Span
            assert tracing_enabled()
            with span("root") as node:
                assert isinstance(node, Span)
            print("traced-ok")
            """
        )
        env = dict(os.environ, REPRO_TRACE="1")
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        done = subprocess.run(
            [sys.executable, "-c", script],
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            env=env,
            capture_output=True,
            text=True,
        )
        assert done.returncode == 0, done.stderr
        assert "traced-ok" in done.stdout


class TestActivation:
    def test_activate_restores_previous_context(self):
        with start_trace("root") as root:
            captured = capture_context()
            assert captured is root
        assert current_span() is None
        with activate(captured):
            assert current_span() is captured
            with span("late") as late:
                assert late.parent_id == captured.span_id
        assert current_span() is None


class TestPoolPropagation:
    def test_thread_pool_tasks_join_the_submitters_trace(self):
        pool = WorkerPool("trace-threads", 2)
        try:
            def work(i):
                with span("inner", index=i):
                    return i * i

            with start_trace("root") as root:
                handles = [pool.submit(work, i) for i in range(5)]
                assert [h.result() for h in handles] == [0, 1, 4, 9, 16]
            tasks = root.find("pool.task")
            inners = root.find("inner")
            assert len(tasks) == 5 and len(inners) == 5
            assert {s.attributes["pool"] for s in tasks} == {"trace-threads"}
            assert sorted(s.attributes["index"] for s in inners) == list(range(5))
        finally:
            pool.shutdown()

    def test_untraced_tasks_record_nothing(self):
        pool = WorkerPool("trace-none", 1)
        try:
            assert pool.submit(lambda: 41).result() == 41
        finally:
            pool.shutdown()
        assert current_span() is None


@pytest.mark.skipif(not fork_available(), reason="needs the fork start method")
class TestProcessPropagation:
    def test_child_spans_ride_back_and_reparent(self):
        pool = WorkerPool("trace-procs", 2, backend="process")
        try:
            with start_trace("root") as root:
                handles = [pool.submit(os.getpid) for _ in range(3)]
                child_pids = {h.result() for h in handles}
            assert os.getpid() not in child_pids
            proc_spans = root.find("process.task")
            assert len(proc_spans) == 3
            assert {s.pid for s in proc_spans} <= child_pids
            for node in proc_spans:
                assert node.trace_id == root.trace_id
                assert node.duration is not None
            # Each rode back under its parent-side pool.task span.
            for task in root.find("pool.task"):
                assert [c.name for c in task.children] == ["process.task"]
        finally:
            pool.shutdown()

    def test_untraced_process_tasks_stay_spanless(self):
        pool = WorkerPool("trace-procs-off", 1, backend="process")
        try:
            assert pool.submit(os.getpid).result() != os.getpid()
        finally:
            pool.shutdown()
        assert current_span() is None

"""MonitoringHub: the one handle over scraper + SLOs + alerts + profiler.

Deterministic throughout — hubs are driven by ``tick(now)`` with injected
instants; the only live-loop test is start/stop plumbing on a real engine.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.baselines import UniformSamplingEstimator
from repro.engine import ConjunctiveQuery, SimilarityPredicate, SimilarityQueryEngine
from repro.obs import (
    AlertRule,
    MetricsRegistry,
    MonitoringHub,
    SLObjective,
    metric_key,
)
from repro.store import load_component, save_component


def make_hub(**kwargs):
    return MonitoringHub(registry=MetricsRegistry(), **kwargs)


def make_engine(num_records=400, dim=8, seed=5):
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(num_records, dim))
    engine = SimilarityQueryEngine(drift_threshold=1e9)
    engine.register_attribute(
        "vec",
        matrix,
        "euclidean",
        UniformSamplingEstimator(matrix, "euclidean", sample_ratio=0.1, seed=0),
        theta_max=8.0,
    )
    return engine


class TestDeterministicTicks:
    def test_tick_scrapes_and_evaluates(self):
        hub = make_hub()
        hub.registry.counter("repro_ticks_total").inc(4)
        hub.add_objective(SLObjective.latency("e", threshold=0.1))
        assert hub.tick(now=10.0) == 10.0
        hub.registry.counter("repro_ticks_total").inc(2)
        hub.tick(now=20.0)
        assert hub.store.increase("repro_ticks_total", 60.0, now=20.0) == 2.0
        # SLO evaluated each tick; no latency data yet → loud no_data.
        (status,) = hub.last_slo_statuses
        assert status.no_data
        assert hub.status()["ticks"] == 2

    def test_slo_gauges_become_series_on_the_next_tick(self):
        """The monitoring signals feed back into the scraped registry, so
        burn rates are themselves time series one tick later."""
        hub = make_hub()
        hub.add_objective(SLObjective.latency("e", threshold=0.1, objective=0.99))
        latency = hub.registry.histogram(
            "repro_request_latency_seconds",
            labels={"endpoint": "e"},
        )
        hub.tick(now=0.0)  # zero-count baseline scrape
        for _ in range(98):
            latency.observe(0.01)
        for _ in range(2):
            latency.observe(5.0)
        hub.tick(now=60.0)
        hub.tick(now=120.0)
        burn_key = metric_key(
            "repro_slo_burn_rate", {"slo": "latency-e", "window": "fast"}
        )
        latest = hub.store.latest(burn_key)
        assert latest is not None
        assert latest[1] == pytest.approx(2.0)

    def test_alerts_walk_their_fsm_under_ticked_time(self):
        hub = make_hub()
        depth = hub.registry.gauge("repro_depth")
        hub.add_rule(
            AlertRule(
                name="deep", kind="threshold", series="repro_depth",
                value=10.0, for_seconds=30.0,
            )
        )
        depth.set(1.0)
        hub.tick(now=0.0)
        assert hub.alerts.state("deep") == "inactive"
        depth.set(99.0)
        hub.tick(now=10.0)
        assert hub.alerts.state("deep") == "pending"
        hub.tick(now=40.0)
        assert hub.alerts.state("deep") == "firing"
        assert hub.status()["firing"] == ["deep"]

    def test_start_without_runtime_refuses(self):
        with pytest.raises(RuntimeError, match="runtime"):
            make_hub().start()


class TestSnapshotRoundTrip:
    def build_populated_hub(self):
        hub = make_hub()
        hub.add_objective(SLObjective.latency("e", threshold=0.1))
        hub.add_rule(
            AlertRule(name="deep", kind="threshold", series="repro_depth", value=10.0)
        )
        depth = hub.registry.gauge("repro_depth")
        for now in (0.0, 10.0, 20.0):
            depth.set(50.0)
            hub.tick(now=now)
        return hub

    def test_round_trip_preserves_history_and_states(self, tmp_path):
        hub = self.build_populated_hub()
        assert hub.alerts.state("deep") == "firing"
        save_component(hub, tmp_path / "hub")
        restored = load_component(tmp_path / "hub")
        assert restored.store.to_dict() == hub.store.to_dict()
        assert restored.alerts.state("deep") == "firing"
        assert [o.name for o in restored.slos.objectives()] == ["latency-e"]
        # Derived views drop at snapshot; the next tick re-derives them.
        assert restored.last_slo_statuses == []
        restored.registry.gauge("repro_depth").set(50.0)
        restored.tick(now=30.0)
        assert restored.last_slo_statuses

    def test_running_hub_refuses_snapshot(self):
        engine = make_engine()
        hub = engine.monitor(interval=0.01)
        try:
            assert hub.running
            with pytest.raises(RuntimeError, match="running"):
                hub.__snapshot_state__()
        finally:
            hub.stop()
            engine.runtime.shutdown()


class TestEngineIntegration:
    def execute(self, engine, record_id=3):
        record = engine.catalog.get("vec").records[record_id]
        query = ConjunctiveQuery([SimilarityPredicate("vec", record, 2.5)])
        return engine.execute(query)

    def test_monitor_is_cached_and_restartable(self):
        engine = make_engine()
        try:
            hub = engine.monitor(interval=0.01)
            assert engine.monitor() is hub  # same hub on later calls
            hub.stop()
            assert not hub.running
            assert engine.monitor() is hub  # restarted, not rebuilt
            assert hub.running
        finally:
            engine.monitoring.stop()
            engine.runtime.shutdown()

    def test_health_report_without_monitoring(self):
        engine = make_engine()
        try:
            self.execute(engine)
            report = engine.health_report()
            assert report.healthy
            assert report.monitoring is None
            assert report.slos == [] and report.alerts == []
            assert "vec" in report.attributes
            text = report.describe()
            assert "ENGINE HEALTH  [OK]" in text
            assert "alerts: none configured" in text
        finally:
            engine.runtime.shutdown()

    def test_health_report_with_monitoring_text_and_json(self):
        engine = make_engine()
        try:
            hub = engine.monitor(start=False)
            hub.add_objective(SLObjective.latency("vec", threshold=0.5))
            hub.add_rule(
                AlertRule(
                    name="burn", kind="burn_rate", slo="latency-vec",
                )
            )
            self.execute(engine)
            hub.tick(now=0.0)
            self.execute(engine, record_id=7)
            hub.tick(now=60.0)
            report = engine.health_report(now=60.0)
            assert report.monitoring is not None
            assert report.monitoring["ticks"] == 2
            assert [s["name"] for s in report.slos] == ["latency-vec"]
            assert [a["name"] for a in report.alerts] == ["burn"]
            assert report.healthy

            payload = json.loads(report.to_json())
            assert payload["healthy"] is True
            assert payload["monitoring"]["ticks"] == 2
            text = report.describe()
            assert "slos:" in text and "latency-vec" in text
            assert "burn" in text
        finally:
            engine.runtime.shutdown()

    def test_health_probe_is_read_only(self):
        engine = make_engine()
        try:
            hub = engine.monitor(start=False)
            hub.add_objective(SLObjective.latency("vec", threshold=0.5))
            hub.add_rule(AlertRule(name="burn", kind="burn_rate", slo="latency-vec"))
            self.execute(engine)
            hub.tick(now=0.0)
            before = hub.alerts.to_dict()
            engine.health_report(now=60.0)
            assert hub.alerts.to_dict() == before  # FSM did not step
            assert hub.status()["ticks"] == 1  # no extra scrape
        finally:
            engine.runtime.shutdown()

    def test_runtime_shutdown_releases_a_running_hub(self):
        """Forgetting hub.stop() must not deadlock runtime.shutdown(): pool
        shutdown sets the registered loop stop events, so the monitor
        workers become joinable."""
        engine = make_engine(num_records=200)
        hub = engine.monitor(interval=0.01)
        assert hub.running
        engine.runtime.shutdown()  # would join forever without the release

    def test_save_stops_a_running_hub_and_history_survives(self, tmp_path):
        engine = make_engine(num_records=200)
        try:
            hub = engine.monitor(interval=0.01)
            assert hub.running
            self.execute(engine)
            engine.save(tmp_path / "engine")
            assert not hub.running  # save() stopped the live loops
            restored = SimilarityQueryEngine.load(tmp_path / "engine")
            try:
                restored_hub = restored.monitor(start=False)
                assert restored_hub.store.to_dict() == hub.store.to_dict()
            finally:
                restored.runtime.shutdown()
        finally:
            engine.runtime.shutdown()

"""Quantile edge cases: empty, single-bucket, all-overflow, empty windows.

The contract under test: degenerate inputs answer loudly (``nan``/``None``),
never a fabricated 0.0 a dashboard would happily plot as "all good".
"""

from __future__ import annotations

import math

import pytest

from repro.obs import Histogram, Series, bucket_quantile


class TestEmptyHistogram:
    def test_every_quantile_is_nan(self):
        hist = Histogram("repro_lat_seconds")
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert math.isnan(hist.quantile(q))
        percentiles = hist.percentiles()
        assert all(math.isnan(v) for v in percentiles.values())

    def test_bucket_quantile_on_zero_counts_is_nan(self):
        assert math.isnan(bucket_quantile([1.0, 2.0], [0, 0, 0], 0.5))

    def test_invalid_q_raises_even_when_empty(self):
        hist = Histogram("repro_lat_seconds")
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            bucket_quantile([1.0], [0, 0], -0.1)


class TestSingleBucket:
    def test_all_mass_in_one_bucket_interpolates_inside_it(self):
        hist = Histogram("repro_lat_seconds", buckets=(1.0, 2.0, 4.0))
        for _ in range(10):
            hist.observe(1.5)  # all in the (1.0, 2.0] bucket
        q50 = hist.quantile(0.5)
        assert 1.0 < q50 <= 2.0
        assert hist.quantile(1.0) == pytest.approx(2.0)

    def test_single_boundary_histogram(self):
        hist = Histogram("repro_lat_seconds", buckets=(1.0,))
        hist.observe(0.5)
        # One finite bucket holding everything: q interpolates over (0, 1].
        assert 0.0 < hist.quantile(0.5) <= 1.0

    def test_lowest_bucket_interpolates_from_zero(self):
        hist = Histogram("repro_lat_seconds", buckets=(10.0, 20.0))
        hist.observe(3.0)
        hist.observe(7.0)
        q50 = hist.quantile(0.5)
        assert 0.0 < q50 <= 10.0


class TestOverflowBucket:
    def test_all_samples_in_overflow_answer_observed_max(self):
        hist = Histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        for value in (5.0, 9.0, 42.0):
            hist.observe(value)
        # Every observation is beyond the last boundary; the fixed buckets
        # cannot interpolate, so the observed max is the honest upper bound.
        assert hist.quantile(0.5) == 42.0
        assert hist.quantile(0.99) == 42.0

    def test_windowed_overflow_answers_highest_finite_boundary(self):
        # From cumulative snapshots the window's true max is unknowable, so
        # windowed quantiles cap at the highest finite boundary instead.
        series = Series("k", "histogram", buckets=(0.1, 1.0))
        base = {"counts": [0, 0, 0], "sum": 0.0, "count": 0, "max": 0.0}
        series.append(0.0, dict(base))
        series.append(10.0, {"counts": [0, 0, 8], "sum": 40.0, "count": 8, "max": 9.0})
        assert series.windowed_quantile(0.5, 60.0, now=10.0) == 1.0


class TestEmptyWindows:
    def test_windowed_quantile_over_empty_window_is_none(self):
        series = Series("k", "histogram", buckets=(0.1, 1.0))
        sample = {"counts": [3, 2, 0], "sum": 1.0, "count": 5, "max": 0.9}
        series.append(0.0, dict(sample))
        series.append(10.0, dict(sample))  # no growth between ticks
        assert series.windowed_quantile(0.5, 60.0, now=10.0) is None
        percentiles = series.windowed_percentiles(60.0, now=10.0)
        assert percentiles == {"p50": None, "p95": None, "p99": None}

    def test_window_with_one_sample_is_none(self):
        series = Series("k", "histogram", buckets=(0.1, 1.0))
        series.append(0.0, {"counts": [1, 0, 0], "sum": 0.05, "count": 1, "max": 0.05})
        assert series.windowed_quantile(0.5, 60.0, now=0.0) is None

    def test_window_entirely_in_the_past_is_none(self):
        series = Series("k", "histogram", buckets=(0.1, 1.0))
        series.append(0.0, {"counts": [1, 0, 0], "sum": 0.05, "count": 1, "max": 0.05})
        series.append(1.0, {"counts": [2, 0, 0], "sum": 0.10, "count": 2, "max": 0.05})
        # now=100, window=10 → [90, 100]: both samples predate it.
        assert series.windowed_quantile(0.5, 10.0, now=100.0) is None

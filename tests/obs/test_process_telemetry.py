"""Telemetry under the process backend: counters recorded inside forked
children must merge back into the parent telemetry's registry (they used to
be dropped on the nursery floor), with results bit-identical to threads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import Histogram, MetricsRegistry, default_registry
from repro.runtime import Runtime, fork_available
from repro.selection.edit_index import QGramEditSelector
from repro.selection.euclidean_index import BallIndexEuclideanSelector
from repro.selection.hamming_index import PackedHammingSelector
from repro.selection.jaccard_index import PrefixFilterJaccardSelector
from repro.serving.telemetry import ServingTelemetry
from repro.sharding import ShardedSelector
from repro.sharding.selector import SHARD_PROCESS_POOL

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process backend needs the fork start method"
)

RNG = np.random.default_rng(23)

NUM_SHARDS = 2  # two workers, two shards — every shard label must appear

WORKLOADS = {
    "hamming": (
        [row for row in RNG.integers(0, 2, size=(120, 48)).astype(np.uint8)],
        lambda recs: PackedHammingSelector(recs),
        10.0,
    ),
    "euclidean": (
        [row for row in RNG.normal(size=(100, 8))],
        lambda recs: BallIndexEuclideanSelector(recs),
        2.0,
    ),
    "jaccard": (
        [
            set(map(int, RNG.choice(60, size=int(RNG.integers(3, 12)), replace=False)))
            for _ in range(90)
        ],
        lambda recs: PrefixFilterJaccardSelector(recs),
        0.5,
    ),
    "edit": (
        ["similar", "silimar", "dissimilar", "select", "selects", "cardinal",
         "cardinality", "estimate", "estimator", "query"] * 8,
        lambda recs: QGramEditSelector(recs),
        2.0,
    ),
}


def _build(records, factory, backend, telemetry):
    return ShardedSelector(
        records,
        factory,
        num_shards=NUM_SHARDS,
        runtime=Runtime(telemetry=telemetry),
        backend=backend,
    )


@pytest.mark.parametrize("kind", sorted(WORKLOADS))
def test_child_counters_merge_into_parent_registry(kind):
    records, factory, threshold = WORKLOADS[kind]
    telemetry = ServingTelemetry()
    thread_telemetry = ServingTelemetry()
    process_side = _build(records, factory, "process", telemetry)
    thread_side = _build(records, factory, "thread", thread_telemetry)
    try:
        queries = records[:4]
        for query in queries:
            assert process_side.cardinality(query, threshold) == thread_side.cardinality(
                query, threshold
            )
            assert process_side.query(query, threshold) == thread_side.query(
                query, threshold
            )
        # It really ran on forked workers, not a silent thread fallback.
        stats = process_side.runtime.stats()
        assert stats[SHARD_PROCESS_POOL]["backend"] == "process"

        # The shard ops executed inside the children; their counters must now
        # be visible in the PARENT telemetry registry, per op and per shard.
        for op in ("cardinality", "query"):
            for shard in range(NUM_SHARDS):
                labels = {"op": op, "shard": shard}
                counter = telemetry.metrics.get("repro_shard_tasks_total", labels)
                assert counter is not None, f"missing child counter {labels}"
                assert counter.value == len(queries)
                histogram = telemetry.metrics.get("repro_shard_task_seconds", labels)
                assert isinstance(histogram, Histogram)
                assert histogram.count == len(queries)

        # ... and match what the thread backend recorded for the same work.
        for op in ("cardinality", "query"):
            for shard in range(NUM_SHARDS):
                labels = {"op": op, "shard": shard}
                assert (
                    telemetry.metrics.get("repro_shard_tasks_total", labels).value
                    == thread_telemetry.metrics.get(
                        "repro_shard_tasks_total", labels
                    ).value
                )

        # The pool itself reported parent-side task telemetry as usual.
        pool_stats = telemetry.endpoint(f"pool:{SHARD_PROCESS_POOL}")
        assert pool_stats.requests == len(queries) * 2 * NUM_SHARDS
        assert pool_stats.max_latency_seconds > 0.0
    finally:
        process_side.runtime.shutdown()
        thread_side.runtime.shutdown()


def test_merge_survives_a_registry_without_telemetry():
    """Pools without telemetry merge child metrics into the default registry
    instead of dropping them."""
    records, factory, threshold = WORKLOADS["hamming"]
    selector = ShardedSelector(
        records, factory, num_shards=NUM_SHARDS, runtime=Runtime(), backend="process"
    )
    baseline = {}
    for shard in range(NUM_SHARDS):
        labels = {"op": "cardinality", "shard": shard}
        existing = default_registry().get("repro_shard_tasks_total", labels)
        baseline[shard] = existing.value if existing is not None else 0.0
    try:
        selector.cardinality(records[0], threshold)
        for shard in range(NUM_SHARDS):
            labels = {"op": "cardinality", "shard": shard}
            counter = default_registry().get("repro_shard_tasks_total", labels)
            assert counter is not None
            assert counter.value == baseline[shard] + 1
    finally:
        selector.runtime.shutdown()


def test_merge_failures_are_counted_not_fatal():
    """A bucket-mismatched child histogram cannot kill the worker thread —
    the merge failure is itself a counter."""
    telemetry = ServingTelemetry()
    registry = telemetry.metrics
    # Pre-create the histogram identity with DIFFERENT buckets than the
    # child will ship back.
    registry.histogram(
        "repro_shard_task_seconds", {"op": "query", "shard": 0},
        buckets=(1.0, 2.0),
    )
    records, factory, threshold = WORKLOADS["hamming"]
    selector = _build(records, factory, "process", telemetry)
    try:
        # The query still completes and answers correctly.
        expected_ids = sorted(factory(records).query(records[0], threshold))
        assert sorted(selector.query(records[0], threshold)) == expected_ids
        failures = registry.get("repro_metrics_merge_failures_total")
        assert failures is not None and failures.value >= 1
    finally:
        selector.runtime.shutdown()

"""Metrics registry: counters/gauges/histograms, cross-process merge state,
quantile derivation, exposition formats, and the ambient-registry plumbing."""

from __future__ import annotations

import math
import pickle

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_Q_ERROR_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    default_registry,
    disable_metrics,
    enable_metrics,
    metrics_enabled,
    use_registry,
)
from repro.obs.metrics import metric_key


class TestCounter:
    def test_inc_and_export(self):
        counter = MetricsRegistry().counter("hits_total", {"endpoint": "e"})
        counter.inc()
        counter.inc(4)
        assert counter.value == 5.0
        exported = counter.export()
        assert exported["type"] == "counter"
        assert exported["value"] == 5.0
        assert exported["labels"] == {"endpoint": "e"}

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("hits_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_merge_adds(self):
        counter = MetricsRegistry().counter("hits_total")
        counter.inc(2)
        counter.merge_export({"value": 3})
        assert counter.value == 5.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7.0

    def test_merge_is_last_write(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.merge_export({"value": 3})
        assert gauge.value == 3.0


class TestHistogram:
    def test_observe_tracks_sum_count_max_mean(self):
        hist = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 20.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(25.55)
        assert hist.max == 20.0
        assert hist.mean == pytest.approx(25.55 / 4)
        # One observation per bucket, one in overflow.
        assert hist.counts == [1, 1, 1, 1]

    def test_quantiles_interpolate_within_buckets(self):
        hist = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0, 4.0))
        for _ in range(50):
            hist.observe(0.5)
        for _ in range(50):
            hist.observe(1.5)
        assert 0.0 < hist.quantile(0.25) <= 1.0
        assert 1.0 <= hist.quantile(0.75) <= 2.0
        percentiles = hist.percentiles()
        assert set(percentiles) == {"p50", "p95", "p99"}
        assert percentiles["p50"] <= percentiles["p95"] <= percentiles["p99"]

    def test_overflow_quantile_answers_with_max(self):
        hist = MetricsRegistry().histogram("lat", buckets=(1.0,))
        hist.observe(37.0)
        assert hist.quantile(0.99) == 37.0

    def test_empty_histogram_quantile_is_nan(self):
        # An empty histogram must answer loudly (NaN), never a fabricated 0.0
        # that reads as "everything was instant".
        hist = MetricsRegistry().histogram("lat")
        assert math.isnan(hist.quantile(0.5))
        assert hist.mean == 0.0

    def test_quantile_rejects_out_of_range(self):
        hist = MetricsRegistry().histogram("lat")
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_bad_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("a", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("b", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("c", buckets=(1.0, 1.0))

    def test_merge_requires_identical_buckets(self):
        left = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0))
        right = MetricsRegistry().histogram("lat", buckets=(1.0, 3.0))
        with pytest.raises(ValueError):
            left.merge(right)

    def test_merge_adds_counts_and_keeps_max(self):
        left = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0))
        right = MetricsRegistry().histogram("lat", buckets=(1.0, 2.0))
        left.observe(0.5)
        right.observe(1.5)
        right.observe(9.0)
        left.merge(right)
        assert left.count == 3
        assert left.max == 9.0
        assert left.counts == [1, 1, 1]


class TestRegistry:
    def test_get_or_create_is_idempotent_per_identity(self):
        registry = MetricsRegistry()
        a = registry.counter("hits_total", {"endpoint": "x"})
        b = registry.counter("hits_total", {"endpoint": "x"})
        c = registry.counter("hits_total", {"endpoint": "y"})
        assert a is b and a is not c
        assert len(registry) == 2

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing_total")
        with pytest.raises(TypeError):
            registry.gauge("thing_total")

    def test_metric_key_sorts_labels(self):
        assert metric_key("m", {"b": 2, "a": 1}) == 'm{a="1",b="2"}'
        assert metric_key("m") == "m"

    def test_get_by_identity(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", {"endpoint": "x"})
        assert registry.get("hits_total", {"endpoint": "x"}) is counter
        assert registry.get("hits_total") is None

    def test_export_and_merge_state_roundtrip(self):
        source = MetricsRegistry()
        source.counter("tasks_total", {"pool": "p"}).inc(3)
        source.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        source.gauge("depth").set(4)

        state = pickle.loads(pickle.dumps(source.export_state()))
        target = MetricsRegistry()
        target.counter("tasks_total", {"pool": "p"}).inc(1)
        target.merge_state(state)
        target.merge_state(state)  # merges accumulate

        assert target.counter("tasks_total", {"pool": "p"}).value == 7.0
        assert target.histogram("lat", buckets=(1.0, 2.0)).count == 2
        assert target.gauge("depth").value == 4.0

    def test_merge_state_rejects_unknown_type(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.merge_state({"x": {"type": "summary", "name": "x"}})

    def test_to_dict_includes_derived_quantiles(self):
        registry = MetricsRegistry()
        registry.histogram("lat", {"endpoint": "e"}).observe(0.003)
        report = registry.to_dict()
        entry = report['lat{endpoint="e"}']
        assert entry["count"] == 1
        for derived in ("mean", "p50", "p95", "p99"):
            assert derived in entry

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_requests_total", {"endpoint": "e"}, description="requests"
        ).inc(2)
        registry.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        text = registry.to_prometheus()
        assert "# HELP repro_requests_total requests" in text
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{endpoint="e"} 2' in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="2"} 1' in text  # cumulative
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_sum 0.5" in text
        assert "lat_count 1" in text
        assert text.endswith("\n")

    def test_empty_registry_prometheus_is_empty(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_snapshot_hooks_drop_and_rebuild_locks(self):
        registry = MetricsRegistry()
        registry.counter("hits_total").inc(2)
        hist = registry.histogram("lat", buckets=(1.0,))
        hist.observe(0.5)
        state = registry.__snapshot_state__()
        assert "_lock" not in state
        restored = MetricsRegistry.__new__(MetricsRegistry)
        restored.__snapshot_restore__(state)
        restored.counter("hits_total").inc(1)  # lock works again
        assert restored.counter("hits_total").value == 3.0


class TestDefaultBuckets:
    def test_defaults_are_ascending(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
        assert list(DEFAULT_Q_ERROR_BUCKETS) == sorted(DEFAULT_Q_ERROR_BUCKETS)
        assert DEFAULT_Q_ERROR_BUCKETS[0] == 1.0


class TestAmbientRegistry:
    def test_current_registry_defaults_to_process_wide(self):
        assert current_registry() is default_registry()

    def test_use_registry_scopes_and_restores(self):
        scoped = MetricsRegistry()
        with use_registry(scoped) as active:
            assert active is scoped
            assert current_registry() is scoped
            inner = MetricsRegistry()
            with use_registry(inner):
                assert current_registry() is inner
            assert current_registry() is scoped
        assert current_registry() is default_registry()

    def test_kill_switch_toggles(self):
        assert metrics_enabled()  # shipped default: on
        disable_metrics()
        try:
            assert not metrics_enabled()
        finally:
            enable_metrics()
        assert metrics_enabled()

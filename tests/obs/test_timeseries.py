"""Ring-buffer series, windowed rollups, and the scraper — injected clock
throughout (RPR004): every ``now`` is an explicit test-chosen instant."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, Scraper, Series, TimeSeriesStore, metric_key
from repro.runtime import Runtime

BUCKETS = (0.1, 1.0, 10.0)


def hist_sample(counts, total_sum=0.0, maximum=0.0):
    return {
        "counts": list(counts),
        "sum": total_sum,
        "count": sum(counts),
        "max": maximum,
        "buckets": list(BUCKETS),
    }


class TestSeries:
    def test_ring_capacity_drops_oldest(self):
        series = Series("k", "gauge", capacity=4)
        for t in range(10):
            series.append(float(t), float(t))
        assert len(series) == 4
        assert series.points() == [(6.0, 6.0), (7.0, 7.0), (8.0, 8.0), (9.0, 9.0)]
        assert series.latest() == (9.0, 9.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Series("k", "trend")
        with pytest.raises(ValueError):
            Series("k", "gauge", capacity=1)
        with pytest.raises(ValueError):
            Series("k", "histogram")  # histograms need their boundaries

    def test_increase_and_rate_over_window(self):
        series = Series("k", "counter")
        for t, v in [(0.0, 10.0), (10.0, 16.0), (20.0, 22.0), (30.0, 40.0)]:
            series.append(t, v)
        # Window [10, 30]: 40 - 16 = 24 over a 20 s observed span.
        assert series.increase(20.0, now=30.0) == 24.0
        assert series.rate(20.0, now=30.0) == pytest.approx(1.2)
        # The full history: 30 growth over 30 s.
        assert series.rate(100.0, now=30.0) == pytest.approx(1.0)

    def test_single_sample_window_is_none_not_zero(self):
        series = Series("k", "counter")
        series.append(0.0, 5.0)
        assert series.increase(60.0, now=0.0) is None
        assert series.rate(60.0, now=0.0) is None
        # Two samples at the same instant: zero span, still no rate.
        series.append(0.0, 7.0)
        assert series.rate(60.0, now=0.0) is None

    def test_counter_reset_counts_restart_as_new_growth(self):
        series = Series("k", "counter")
        series.append(0.0, 100.0)
        series.append(10.0, 7.0)  # the producer restarted
        assert series.increase(60.0, now=10.0) == 7.0

    def test_histogram_delta_and_windowed_quantile(self):
        series = Series("k", "histogram", buckets=BUCKETS)
        series.append(0.0, hist_sample([5, 0, 0, 0]))
        series.append(60.0, hist_sample([5, 20, 0, 0]))
        delta = series.delta(120.0, now=60.0)
        assert delta["counts"] == [0, 20, 0, 0]
        assert delta["count"] == 20
        # All 20 window observations landed in (0.1, 1.0]; the old 5 in the
        # first bucket are pre-window history and must not skew the quantile.
        q50 = series.windowed_quantile(0.5, 120.0, now=60.0)
        assert 0.1 < q50 <= 1.0

    def test_histogram_reset_treats_snapshot_as_growth(self):
        series = Series("k", "histogram", buckets=BUCKETS)
        series.append(0.0, hist_sample([9, 9, 0, 0]))
        series.append(10.0, hist_sample([2, 0, 0, 0]))  # restarted child
        delta = series.delta(60.0, now=10.0)
        assert delta["counts"] == [2, 0, 0, 0]
        assert delta["count"] == 2

    def test_bucket_boundary_change_refuses(self):
        series = Series("k", "histogram", buckets=BUCKETS)
        series.append(0.0, hist_sample([1, 0, 0, 0]))
        changed = hist_sample([1, 0, 0, 0])
        changed["buckets"] = [0.5, 1.0, 10.0]
        with pytest.raises(ValueError, match="bucket boundaries"):
            series.append(1.0, changed)

    def test_delta_on_non_histogram_refuses(self):
        series = Series("k", "gauge")
        with pytest.raises(TypeError):
            series.delta(60.0, now=0.0)

    def test_prune_and_downsample(self):
        series = Series("k", "gauge", capacity=64)
        for t in range(12):
            series.append(float(t), float(t))
        assert series.prune(4.0) == 4
        assert series.points()[0] == (4.0, 4.0)
        dropped = series.downsample(2)
        assert dropped > 0
        times = [t for t, _ in series.points()]
        assert times[-1] == 11.0  # the newest sample always survives

    def test_export_merge_interleaves_newest_wins(self):
        ours = Series("k", "counter", capacity=4)
        theirs = Series("k", "counter", capacity=4)
        for t in (0.0, 2.0, 4.0):
            ours.append(t, t)
        for t in (1.0, 3.0, 5.0):
            theirs.append(t, t)
        ours.merge_state(theirs.export_state())
        assert [t for t, _ in ours.points()] == [2.0, 3.0, 4.0, 5.0]

    def test_merge_kind_mismatch_refuses(self):
        gauge = Series("k", "gauge")
        counter = Series("k", "counter")
        with pytest.raises(ValueError, match="kind"):
            gauge.merge_state(counter.export_state())


class TestTimeSeriesStore:
    def test_sample_registry_creates_typed_series(self):
        registry = MetricsRegistry()
        registry.counter("repro_ticks_total").inc(3)
        registry.gauge("repro_depth").set(7.0)
        registry.histogram("repro_lat_seconds", buckets=BUCKETS).observe(0.5)
        store = TimeSeriesStore()
        assert store.sample_registry(registry, now=1.0) == 3
        assert store.get("repro_ticks_total").kind == "counter"
        assert store.get("repro_depth").kind == "gauge"
        assert store.get("repro_lat_seconds").kind == "histogram"
        registry.counter("repro_ticks_total").inc(5)
        store.sample_registry(registry, now=2.0)
        assert store.increase("repro_ticks_total", 10.0, now=2.0) == 5.0

    def test_retention_prunes_at_scrape(self):
        registry = MetricsRegistry()
        registry.gauge("repro_depth").set(1.0)
        store = TimeSeriesStore(retention_seconds=10.0)
        for now in (0.0, 5.0, 20.0):
            store.sample_registry(registry, now)
        assert [t for t, _ in store.get("repro_depth").points()] == [20.0]

    def test_store_merge_and_snapshot_roundtrip(self, tmp_path):
        from repro.store import load_component, save_component

        store = TimeSeriesStore()
        series = store.series(metric_key("repro_x_total", {"endpoint": "e"}), "counter")
        series.append(1.0, 4.0)
        series.append(2.0, 9.0)

        other = TimeSeriesStore()
        other.series("repro_y", "gauge").append(3.0, 1.5)
        store.merge(other)
        assert "repro_y" in store

        save_component(store, tmp_path / "snap")
        restored = load_component(tmp_path / "snap")
        assert restored.to_dict() == store.to_dict()
        assert restored.increase('repro_x_total{endpoint="e"}', 10.0, now=2.0) == 5.0

    def test_rollups_on_missing_series_are_none(self):
        store = TimeSeriesStore()
        assert store.rate("nope", 10.0, now=0.0) is None
        assert store.increase("nope", 10.0, now=0.0) is None
        assert store.windowed_quantile("nope", 0.5, 10.0, now=0.0) is None
        assert store.latest("nope") is None


class TestScraper:
    def test_deterministic_ticks_with_injected_clock(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_ticks_total")
        store = TimeSeriesStore()
        ticks = iter([10.0, 20.0])
        scraper = Scraper(store, interval=1.0, clock=lambda: next(ticks))
        scraper.add_source(registry)
        seen = []
        scraper.on_tick = seen.append
        counter.inc()
        assert scraper.scrape_once() == 10.0
        counter.inc(3)
        assert scraper.scrape_once() == 20.0
        assert seen == [10.0, 20.0]
        assert scraper.ticks == 2
        assert store.increase("repro_ticks_total", 60.0, now=20.0) == 3.0

    def test_failures_are_counted_never_fatal(self):
        registry = MetricsRegistry()
        registry.counter("repro_ok_total").inc()
        store = TimeSeriesStore()
        scraper = Scraper(store, interval=1.0)
        scraper.add_source(registry)

        def bad_collector():
            raise RuntimeError("collector broke")

        def bad_tick(now):
            raise RuntimeError("tick broke")

        scraper.add_collector(bad_collector)
        scraper.on_tick = bad_tick
        scraper.scrape_once(now=1.0)
        assert scraper.failures == 2
        failures = registry.get("repro_scrape_failures_total")
        assert failures is not None and failures.value == 2
        # The registry was still sampled despite both hook failures.
        assert "repro_ok_total" in store

    def test_background_loop_on_runtime_pool(self):
        registry = MetricsRegistry()
        registry.gauge("repro_depth").set(1.0)
        store = TimeSeriesStore()
        scraper = Scraper(store, interval=0.01)
        scraper.add_source(registry)
        runtime = Runtime()
        try:
            scraper.start(runtime)
            assert scraper.running
            scraper.start(runtime)  # idempotent while running
            deadline_ticks = 0
            loop_ticks = scraper.stop()
            assert not scraper.running
            assert loop_ticks is not None and loop_ticks >= deadline_ticks
            assert scraper.stop() is None  # idempotent when stopped
        finally:
            runtime.shutdown()

    def test_running_scraper_refuses_snapshot(self):
        store = TimeSeriesStore()
        scraper = Scraper(store, interval=0.05)
        runtime = Runtime()
        try:
            scraper.start(runtime)
            with pytest.raises(RuntimeError, match="running Scraper"):
                scraper.__snapshot_state__()
        finally:
            scraper.stop()
            runtime.shutdown()

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            Scraper(TimeSeriesStore(), interval=0.0)

"""SLO burn-rate math and error-budget accounting, pinned numerically.

Every evaluation runs at an injected instant against hand-built series, so
each expected burn rate is checkable by hand:
``burn = (bad/total) / (1 - objective)``.
"""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, SLObjective, SLOEvaluator, TimeSeriesStore, metric_key

BUCKETS = (0.05, 0.1, 0.5)
LATENCY_KEY = metric_key("repro_request_latency_seconds", {"endpoint": "e"})


def append_latency(store, now, under, over, buckets=BUCKETS):
    """Cumulative snapshot: ``under`` obs <= 0.1 s, ``over`` beyond it."""
    series = store.series(LATENCY_KEY, "histogram", buckets=buckets)
    series.append(
        now,
        {
            "counts": [under, 0, over, 0],
            "sum": 0.0,
            "count": under + over,
            "max": 0.0,
            "buckets": list(buckets),
        },
    )


class TestObjectiveValidation:
    def test_unknown_kind_refuses(self):
        with pytest.raises(ValueError, match="kind"):
            SLObjective(name="x", kind="availability")

    def test_objective_must_be_interior_fraction(self):
        for bad in (0.0, 1.0, 1.5):
            with pytest.raises(ValueError, match="objective"):
                SLObjective(name="x", objective=bad)

    def test_windows_must_nest(self):
        with pytest.raises(ValueError, match="window"):
            SLObjective(name="x", fast_window=600.0, slow_window=300.0)

    def test_error_ratio_needs_both_series(self):
        with pytest.raises(ValueError, match="error_ratio"):
            SLObjective(name="x", kind="error_ratio", total_series="t")

    def test_declarative_constructors_derive_series_keys(self):
        latency = SLObjective.latency("e", threshold=0.1)
        assert latency.name == "latency-e"
        assert latency.series_key() == LATENCY_KEY
        q_error = SLObjective.q_error("e")
        assert q_error.series_key() == metric_key("repro_q_error", {"endpoint": "e"})
        ratio = SLObjective.error_ratio("r", total_series="t", bad_series="b")
        assert ratio.series_key() is None


class TestBurnMath:
    def evaluate(self, store, objective, now):
        return SLOEvaluator(store).evaluate_objective(objective, now)

    def test_burn_is_bad_fraction_over_allowed_fraction(self):
        store = TimeSeriesStore()
        append_latency(store, 0.0, under=0, over=0)
        # 100 events in the window, 2 bad, objective 0.99 → allowed 1%;
        # bad fraction 2% → burn exactly 2.0 on both windows.
        append_latency(store, 60.0, under=98, over=2)
        objective = SLObjective.latency(
            "e",
            threshold=0.1,
            objective=0.99,
            fast_window=300.0,
            slow_window=3600.0,
            burn_threshold=1.5,  # off the 2.0 burn value: no float knife-edge
        )
        status = self.evaluate(store, objective, now=60.0)
        assert status.fast_bad == 2.0 and status.fast_total == 100.0
        assert status.fast_burn == pytest.approx(2.0)
        assert status.slow_burn == pytest.approx(2.0)
        assert status.budget_remaining == pytest.approx(-1.0)  # 2x pace → overspent
        assert status.breaching
        assert not status.no_data

    def test_budget_remaining_tracks_slow_window(self):
        store = TimeSeriesStore()
        append_latency(store, 0.0, under=0, over=0)
        # 0.5% bad at objective 0.99 → burn 0.5 → half the budget left.
        append_latency(store, 60.0, under=995, over=5)
        objective = SLObjective.latency("e", threshold=0.1, objective=0.99)
        status = self.evaluate(store, objective, now=60.0)
        assert status.slow_burn == pytest.approx(0.5)
        assert status.budget_remaining == pytest.approx(0.5)
        assert not status.breaching

    def test_threshold_boundary_is_good(self):
        # The threshold rides the bucket boundary: an observation in the
        # 0.1-bucket counts as good for threshold=0.1 (<= semantics).
        store = TimeSeriesStore()
        series = store.series(LATENCY_KEY, "histogram", buckets=BUCKETS)
        series.append(0.0, {"counts": [0, 0, 0, 0], "sum": 0.0, "count": 0, "max": 0.0})
        series.append(
            60.0, {"counts": [0, 10, 0, 0], "sum": 0.0, "count": 10, "max": 0.0}
        )
        objective = SLObjective.latency("e", threshold=0.1, objective=0.9)
        status = self.evaluate(store, objective, now=60.0)
        assert status.fast_bad == 0.0
        assert status.fast_burn == 0.0

    def test_breaching_requires_both_windows_hot(self):
        store = TimeSeriesStore()
        append_latency(store, 0.0, under=0, over=0)
        append_latency(store, 3000.0, under=980, over=0)
        # A burst inside the fast window only: 20 bad of 20 recent events,
        # but the slow window dilutes them across 1000 total.
        append_latency(store, 3590.0, under=980, over=20)
        objective = SLObjective.latency(
            "e",
            threshold=0.1,
            objective=0.99,
            fast_window=600.0,
            slow_window=3600.0,
            burn_threshold=30.0,
        )
        status = self.evaluate(store, objective, now=3590.0)
        assert status.fast_burn == pytest.approx(100.0)  # 100% bad / 1%
        assert status.slow_burn == pytest.approx(2.0)  # 2% bad / 1%
        assert not status.breaching  # slow window below threshold: a blip

    def test_no_data_is_loud_not_zero(self):
        store = TimeSeriesStore()
        objective = SLObjective.latency("e", threshold=0.1)
        status = self.evaluate(store, objective, now=0.0)
        assert status.no_data
        assert status.fast_burn is None
        assert status.slow_burn is None
        assert status.budget_remaining is None
        assert not status.breaching

    def test_single_scrape_point_is_still_no_data(self):
        store = TimeSeriesStore()
        append_latency(store, 0.0, under=50, over=50)
        objective = SLObjective.latency("e", threshold=0.1)
        status = self.evaluate(store, objective, now=0.0)
        assert status.no_data  # one cumulative snapshot holds no delta

    def test_error_ratio_divides_counters(self):
        store = TimeSeriesStore()
        total = store.series("repro_requests_total", "counter")
        bad = store.series("repro_failures_total", "counter")
        for now, t, b in [(0.0, 0.0, 0.0), (60.0, 200.0, 10.0)]:
            total.append(now, t)
            bad.append(now, b)
        objective = SLObjective.error_ratio(
            "failures",
            total_series="repro_requests_total",
            bad_series="repro_failures_total",
            objective=0.9,
        )
        status = SLOEvaluator(store).evaluate_objective(objective, now=60.0)
        # 5% bad over a 10% allowance → burn 0.5 on both windows.
        assert status.fast_burn == pytest.approx(0.5)
        assert status.budget_remaining == pytest.approx(0.5)


class TestEvaluatorRecording:
    def test_evaluate_records_burn_gauges(self):
        store = TimeSeriesStore()
        registry = MetricsRegistry()
        append_latency(store, 0.0, under=0, over=0)
        append_latency(store, 60.0, under=98, over=2)
        evaluator = SLOEvaluator(store, registry=registry)
        evaluator.add(SLObjective.latency("e", threshold=0.1, objective=0.99))
        statuses = evaluator.evaluate(now=60.0)
        assert len(statuses) == 1
        fast = registry.get("repro_slo_burn_rate", {"slo": "latency-e", "window": "fast"})
        slow = registry.get("repro_slo_burn_rate", {"slo": "latency-e", "window": "slow"})
        budget = registry.get("repro_slo_budget_remaining", {"slo": "latency-e"})
        assert fast.value == pytest.approx(2.0)
        assert slow.value == pytest.approx(2.0)
        assert budget.value == pytest.approx(-1.0)

    def test_record_false_leaves_registry_untouched(self):
        store = TimeSeriesStore()
        registry = MetricsRegistry()
        append_latency(store, 0.0, under=0, over=0)
        append_latency(store, 60.0, under=98, over=2)
        evaluator = SLOEvaluator(store, registry=registry)
        evaluator.add(SLObjective.latency("e", threshold=0.1))
        evaluator.evaluate(now=60.0, record=False)
        assert registry.get("repro_slo_burn_rate", {"slo": "latency-e", "window": "fast"}) is None

    def test_declarative_replace_and_deterministic_order(self):
        evaluator = SLOEvaluator(TimeSeriesStore())
        evaluator.add(SLObjective.latency("b"))
        evaluator.add(SLObjective.latency("a"))
        evaluator.add(SLObjective.latency("a", threshold=0.5))  # replace
        assert len(evaluator) == 2
        names = [status.name for status in evaluator.evaluate(now=0.0)]
        assert names == ["latency-a", "latency-b"]
        assert evaluator.objectives()[0].threshold == 0.5

"""Sampling profiler: attribution, collapsed stacks, merge, and the noop.

Synthetic-frame tests pin the collapse/attribution logic without timing;
the live test runs a real sharded workload under the profiler and requires
>=90% of samples attributed to a pool or endpoint.
"""

from __future__ import annotations

import multiprocessing
import sys
import threading

import numpy as np
import pytest

from repro.obs import (
    NOOP_PROFILER,
    SamplingProfiler,
    active_profiler,
    create_profiler,
    disable_profiling,
    enable_profiling,
    merge_child_state,
    profile_scope,
    profiling_enabled,
    set_active_profiler,
)
from repro.runtime import Runtime
from repro.selection.euclidean_index import BallIndexEuclideanSelector
from repro.sharding import ShardedSelector


@pytest.fixture(autouse=True)
def restore_profiling_switch():
    was_enabled = profiling_enabled()
    previous_active = active_profiler()
    yield
    (enable_profiling if was_enabled else disable_profiling)()
    set_active_profiler(previous_active)


def synthetic_frames():
    """A frames mapping for idents no live thread owns."""
    frame = sys._getframe()
    return {990001: frame, 990002: frame}


class TestSyntheticAttribution:
    def test_scope_label_wins_and_counts_as_attributed(self):
        profiler = SamplingProfiler()
        profiler.register_scope(990001, "endpoint:vec")
        taken = profiler.sample_once(frames=synthetic_frames())
        assert taken == 2
        totals = profiler.label_totals()
        assert totals["endpoint:vec"] == 1
        # The unknown ident fell back to thread:<ident> — unattributed.
        assert totals[f"thread:{990002}"] == 1
        assert profiler.attribution_fraction() == pytest.approx(0.5)

    def test_unregister_scope_restores_fallback(self):
        profiler = SamplingProfiler()
        profiler.register_scope(990001, "endpoint:vec")
        profiler.unregister_scope(990001)
        profiler.sample_once(frames={990001: sys._getframe()})
        assert list(profiler.label_totals()) == [f"thread:{990001}"]

    def test_excluded_threads_are_never_sampled(self):
        profiler = SamplingProfiler()
        profiler.exclude_thread(990001)
        assert profiler.sample_once(frames={990001: sys._getframe()}) == 0
        assert profiler.total_samples == 0

    def test_pool_thread_name_convention(self):
        profiler = SamplingProfiler()
        names = {"repro-execute-3": "pool:execute",
                 "repro-shard-process-0": "pool:shard-process",
                 "MainThread": "thread:MainThread"}
        for name, expected in names.items():
            assert profiler._label_for(123, name, {}) == expected

    def test_child_identity_fallback(self):
        profiler = SamplingProfiler()
        process = multiprocessing.current_process()
        original = process.name
        try:
            process.name = "repro-shard-process-proc-1"
            profiler.adopt_child_identity()
        finally:
            process.name = original
        assert profiler.fallback_label == "pool:shard-process"
        profiler.sample_once(frames={990001: sys._getframe()})
        assert profiler.attribution_fraction() == 1.0

    def test_collapsed_output_format(self):
        profiler = SamplingProfiler()
        profiler.register_scope(990001, "endpoint:vec")
        profiler.sample_once(frames={990001: sys._getframe()})
        profiler.sample_once(frames={990001: sys._getframe()})
        lines = profiler.collapsed().splitlines()
        assert lines  # label;file:func;... count
        for line in lines:
            stack, count = line.rsplit(" ", 1)
            assert stack.startswith("endpoint:vec;")
            assert ";test_profiler.py:" in stack
            assert int(count) >= 1

    def test_max_depth_truncates_stacks(self):
        profiler = SamplingProfiler(max_depth=2)
        profiler.register_scope(990001, "endpoint:vec")
        profiler.sample_once(frames={990001: sys._getframe()})
        (key,) = profiler.stacks()
        assert len(key.split(";")) == 3  # label + two frames


class TestStateMerge:
    def test_export_reset_is_a_delta(self):
        profiler = SamplingProfiler()
        profiler.register_scope(990001, "endpoint:vec")
        profiler.sample_once(frames={990001: sys._getframe()})
        state = profiler.export_state(reset=True)
        assert state["total_samples"] == 1
        assert profiler.total_samples == 0
        assert profiler.stacks() == {}

    def test_merge_state_accumulates(self):
        parent = SamplingProfiler()
        parent.merge_state(
            {"stacks": {"pool:shard;a:b": 3}, "total_samples": 3,
             "attributed_samples": 3, "errors": 1}
        )
        parent.merge_state(
            {"stacks": {"pool:shard;a:b": 2, "thread:x;c:d": 1},
             "total_samples": 3, "attributed_samples": 2, "errors": 0}
        )
        assert parent.stacks() == {"pool:shard;a:b": 5, "thread:x;c:d": 1}
        assert parent.total_samples == 6
        assert parent.attribution_fraction() == pytest.approx(5 / 6)
        assert parent.errors == 1

    def test_merge_child_state_targets_active_profiler(self):
        parent = SamplingProfiler()
        set_active_profiler(parent)
        assert merge_child_state({"stacks": {"pool:p;f:g": 1}, "total_samples": 1,
                                  "attributed_samples": 1})
        assert parent.total_samples == 1
        set_active_profiler(None)
        # No active profiler: dropping the child state is correct, not fatal.
        assert not merge_child_state({"stacks": {}, "total_samples": 0})


class TestDisabledPath:
    def test_create_profiler_answers_the_shared_noop(self):
        disable_profiling()
        assert create_profiler() is NOOP_PROFILER
        assert create_profiler(interval=0.5) is NOOP_PROFILER

    def test_enabled_create_profiler_is_live(self):
        enable_profiling()
        profiler = create_profiler(interval=0.25)
        assert isinstance(profiler, SamplingProfiler)
        assert profiler.interval == 0.25

    def test_noop_has_the_live_shape_and_costs_nothing(self):
        assert NOOP_PROFILER.sample_once() == 0
        assert NOOP_PROFILER.export_state(reset=True) == {}
        assert NOOP_PROFILER.collapsed() == ""
        assert NOOP_PROFILER.attribution_fraction() is None
        assert NOOP_PROFILER.stop() is None
        assert not NOOP_PROFILER.running
        assert NOOP_PROFILER.to_dict() == {"enabled": False}

    def test_profile_scope_is_inert_when_disabled(self):
        disable_profiling()
        profiler = SamplingProfiler()
        set_active_profiler(profiler)
        with profile_scope("vec"):
            assert profiler._scopes == {}

    def test_profile_scope_registers_when_enabled(self):
        enable_profiling()
        profiler = SamplingProfiler()
        set_active_profiler(profiler)
        ident = threading.get_ident()
        with profile_scope("vec"):
            assert profiler._scopes[ident] == "endpoint:vec"
        assert ident not in profiler._scopes


class TestLiveAttribution:
    def test_sharded_workload_is_90_percent_attributed(self):
        """Thread backend: pool workers attribute by thread name, the driver
        thread by its profile_scope — >=90% of samples must land rooted."""
        enable_profiling()
        rng = np.random.default_rng(3)
        records = [row for row in rng.normal(size=(4000, 12))]
        runtime = Runtime()
        selector = ShardedSelector(
            records,
            lambda recs: BallIndexEuclideanSelector(recs),
            num_shards=4,
            runtime=runtime,
            backend="thread",
        )
        profiler = create_profiler(interval=0.001)
        try:
            profiler.start(runtime)
            with profile_scope("driver"):
                for query in records[:60]:
                    selector.cardinality(query, 2.5)
        finally:
            profiler.stop()
            runtime.shutdown()
        assert profiler.total_samples > 0
        fraction = profiler.attribution_fraction()
        assert fraction is not None and fraction >= 0.9, (
            f"only {fraction:.0%} of {profiler.total_samples} samples attributed:"
            f" {profiler.label_totals()}"
        )
        totals = profiler.label_totals()
        assert any(label.startswith("pool:") for label in totals), totals
        assert "endpoint:driver" in totals

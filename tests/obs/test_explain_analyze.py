"""Engine.explain_analyze: per-predicate estimated-vs-actual reports, span
trees covering the shard fan-out (both backends), the slow-query ring, and
the tracing-never-changes-results guarantee."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.baselines import UniformSamplingEstimator
from repro.engine import ConjunctiveQuery, SimilarityPredicate, SimilarityQueryEngine
from repro.obs import SlowQueryLog, disable_tracing, enable_tracing
from repro.runtime import fork_available

RNG = np.random.default_rng(31)

NUM_ROWS = 90


def sampling_factory(distance_name, **options):
    def factory(shard_records, shard_index):
        return UniformSamplingEstimator(
            shard_records, distance_name, seed=shard_index, **options
        )

    return factory


def _build_engine(backend="thread", **engine_kwargs):
    """Two euclidean attributes over one relation: 'vec' sharded 3 ways on
    the requested backend, 'aux' unsharded."""
    vec = [row for row in RNG.normal(size=(NUM_ROWS, 8))]
    aux = [row for row in RNG.normal(size=(NUM_ROWS, 4))]
    engine = SimilarityQueryEngine(**engine_kwargs)
    engine.register_sharded_attribute(
        "vec",
        vec,
        "euclidean",
        sampling_factory("euclidean", sample_ratio=0.3),
        num_shards=3,
        theta_max=6.0,
        backend=backend,
    )
    engine.register_attribute(
        "aux",
        aux,
        "euclidean",
        UniformSamplingEstimator(aux, "euclidean", sample_ratio=0.3, seed=0),
        theta_max=4.0,
    )
    return engine, vec, aux


def _two_predicate_query(vec, aux, index=0):
    return ConjunctiveQuery(
        [
            SimilarityPredicate("vec", vec[index], 3.0),
            SimilarityPredicate("aux", aux[index], 2.5),
        ]
    )


@pytest.fixture(autouse=True)
def _tracing_off():
    disable_tracing()
    yield
    disable_tracing()


class TestReportContents:
    def test_two_predicate_report_pairs_estimates_with_actuals(self):
        engine, vec, aux = _build_engine()
        try:
            report = engine.explain_analyze(_two_predicate_query(vec, aux))
            assert report.result_count >= 1  # the query record matches itself
            assert {p.role for p in report.predicates} == {"driver", "residual"}
            assert {p.attribute for p in report.predicates} == {"vec", "aux"}
            for predicate in report.predicates:
                assert predicate.estimated > 0.0
                # The conjunction is an intersection: every single predicate
                # matches at least every row the full query returned.
                assert predicate.actual >= report.result_count
                assert predicate.q_error >= 1.0
            assert report.driver is not None
            assert report.plan["driver"] in ("vec", "aux")
            assert report.plan["execution_seconds"] > 0.0
            as_dict = report.to_dict()
            assert len(as_dict["predicates"]) == 2
            assert as_dict["trace"]["name"] == "query.explain_analyze"
        finally:
            engine.runtime.shutdown()

    def test_trace_covers_planning_and_execution_stages(self):
        engine, vec, aux = _build_engine()
        try:
            report = engine.explain_analyze(_two_predicate_query(vec, aux))
            stages = report.stage_seconds()
            for stage in (
                "query.explain_analyze",
                "query.plan",
                "query.execute",
                "execute.driver",
                "execute.verify",
                "analyze.actuals",
            ):
                assert stage in stages, f"missing stage {stage}"
            rendered = report.describe()
            assert "EXPLAIN ANALYZE" in rendered
            assert "q-err=" in rendered
            assert "query.plan" in rendered
        finally:
            engine.runtime.shutdown()

    def test_thread_backend_records_per_shard_spans(self):
        engine, vec, aux = _build_engine()
        try:
            report = engine.explain_analyze(_two_predicate_query(vec, aux))
            # 'vec' fans out either as the driver scan or as the residual
            # actual-cardinality measurement — shard spans appear either way.
            shard_spans = report.shard_spans()
            assert {s.attributes["shard"] for s in shard_spans} == {0, 1, 2}
            assert all(s.duration is not None for s in shard_spans)
        finally:
            engine.runtime.shutdown()

    def test_gph_hamming_report_carries_the_allocation(self):
        records = [row for row in RNG.integers(0, 2, size=(80, 24)).astype(np.uint8)]
        engine = SimilarityQueryEngine()
        engine.register_attribute(
            "bits",
            records,
            "hamming",
            UniformSamplingEstimator(records, "hamming", sample_ratio=0.3, seed=0),
            theta_max=12.0,
            gph_part_size=8,
        )
        try:
            report = engine.explain_analyze(
                SimilarityPredicate("bits", records[0], 6.0)
            )
            assert report.plan["allocation"] is not None
            assert "plan.gph" in report.stage_seconds()
            (driver,) = report.predicates
            assert driver.role == "driver"
            assert driver.actual >= 1
        finally:
            engine.runtime.shutdown()


@pytest.mark.skipif(not fork_available(), reason="needs the fork start method")
class TestProcessBackendReport:
    def test_shard_spans_come_from_forked_children(self):
        engine, vec, aux = _build_engine(backend="process")
        try:
            # Warm once so the report's fan-out runs on an already-published
            # plane; then the traced query.
            engine.execute(_two_predicate_query(vec, aux, index=1))
            report = engine.explain_analyze(_two_predicate_query(vec, aux))
            assert {p.role for p in report.predicates} == {"driver", "residual"}
            process_spans = report.process_spans()
            assert process_spans, "no child spans rode back"
            assert all(s.pid != os.getpid() for s in process_spans)
            shard_spans = report.shard_spans()
            assert {s.attributes["shard"] for s in shard_spans} == {0, 1, 2}
            # Every shard span sits inside some child process span.
            child_shards = [
                node for proc in process_spans for node in proc.find("shard.task")
            ]
            assert len(child_shards) == len(shard_spans)
        finally:
            engine.runtime.shutdown()


class TestResultsUnchanged:
    def test_explain_analyze_matches_execute(self):
        engine, vec, aux = _build_engine()
        try:
            query = _two_predicate_query(vec, aux)
            expected = engine.execute(query)
            report = engine.explain_analyze(query, feedback=False)
            assert report.result_count == len(expected.record_ids)
        finally:
            engine.runtime.shutdown()

    def test_tracing_does_not_change_results(self):
        engine, vec, aux = _build_engine()
        try:
            query = _two_predicate_query(vec, aux)
            untraced = engine.execute(query)
            enable_tracing()
            try:
                traced = engine.execute(query)
            finally:
                disable_tracing()
            assert traced.record_ids == untraced.record_ids
            assert traced.driver_actual == untraced.driver_actual
        finally:
            engine.runtime.shutdown()


class TestSlowQueryLog:
    def test_threshold_filters_entries(self):
        log = SlowQueryLog(threshold_seconds=10.0, capacity=4)
        assert not log.record({"duration_seconds": 0.01})
        assert len(log) == 0
        assert log.record({"duration_seconds": 11.0})
        assert len(log) == 1

    def test_capacity_bounds_the_ring(self):
        log = SlowQueryLog(threshold_seconds=0.0, capacity=2)
        for index in range(5):
            log.record({"duration_seconds": 1.0, "index": index})
        entries = log.entries()
        assert len(entries) == 2
        assert [entry["index"] for entry in entries] == [3, 4]  # oldest dropped
        log.clear()
        assert len(log) == 0

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)

    def test_engine_records_slow_queries(self):
        engine, vec, aux = _build_engine(slow_query_seconds=0.0, slow_query_capacity=8)
        try:
            for index in (0, 1, 2):
                engine.execute(_two_predicate_query(vec, aux, index=index))
            entries = engine.slow_queries.entries()
            assert len(entries) == 3
            entry = entries[0]
            assert entry["duration_seconds"] > 0.0
            assert entry["driver"] in ("vec", "aux")
            assert sorted(attr for attr, _ in entry["predicates"]) == ["aux", "vec"]
            assert "result_count" in entry and "estimated" in entry
        finally:
            engine.runtime.shutdown()

    def test_quiet_engine_keeps_an_empty_ring(self):
        engine, vec, aux = _build_engine(slow_query_seconds=30.0)
        try:
            engine.execute(_two_predicate_query(vec, aux))
            assert len(engine.slow_queries) == 0
        finally:
            engine.runtime.shutdown()

    def test_snapshot_hooks_roundtrip(self):
        log = SlowQueryLog(threshold_seconds=0.5, capacity=3)
        log.record({"duration_seconds": 1.0, "driver": "vec"})
        state = log.__snapshot_state__()
        restored = SlowQueryLog.__new__(SlowQueryLog)
        restored.__snapshot_restore__(state)
        assert restored.threshold_seconds == 0.5
        assert restored.entries() == log.entries()
        restored.record({"duration_seconds": 2.0})  # lock rebuilt
        assert len(restored) == 2

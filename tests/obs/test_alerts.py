"""Alert rule engine: a deterministic state machine under an injected clock.

Each test steps ``evaluate(now)`` with explicit instants and pins the full
``inactive → pending → firing → resolved → pending`` walk, the ``for_seconds``
dwell, and the transition/firing metrics.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    AlertManager,
    AlertRule,
    MetricsRegistry,
    SLObjective,
    SLOEvaluator,
    TimeSeriesStore,
)


def manager_with_gauge(registry=None):
    store = TimeSeriesStore()
    series = store.series("repro_depth", "gauge")
    manager = AlertManager(store, registry=registry)
    return manager, series


class TestRuleValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            AlertRule(name="x", kind="pager")

    def test_threshold_needs_series_and_value(self):
        with pytest.raises(ValueError, match="series"):
            AlertRule(name="x", kind="threshold", value=1.0)
        with pytest.raises(ValueError, match="value"):
            AlertRule(name="x", kind="threshold", series="s")
        with pytest.raises(ValueError, match="comparator"):
            AlertRule(name="x", kind="threshold", series="s", value=1.0, comparator="!")

    def test_burn_rate_needs_slo(self):
        with pytest.raises(ValueError, match="SLO"):
            AlertRule(name="x", kind="burn_rate")

    def test_negative_dwell(self):
        with pytest.raises(ValueError, match="for_seconds"):
            AlertRule(name="x", kind="threshold", series="s", value=1.0, for_seconds=-1)


class TestThresholdStateMachine:
    def test_full_walk_with_dwell(self):
        manager, series = manager_with_gauge()
        manager.add_rule(
            AlertRule(
                name="deep", kind="threshold", series="repro_depth",
                value=10.0, comparator=">", for_seconds=30.0,
            )
        )
        series.append(0.0, 5.0)
        assert manager.evaluate(now=0.0)[0].state == "inactive"

        series.append(10.0, 50.0)  # condition turns on
        status = manager.evaluate(now=10.0)[0]
        assert status.state == "pending"
        assert status.pending_since == 10.0

        assert manager.evaluate(now=30.0)[0].state == "pending"  # dwell not met
        status = manager.evaluate(now=40.0)[0]  # 30 s in pending
        assert status.state == "firing"
        assert manager.firing() == ["deep"]

        series.append(50.0, 2.0)  # condition clears
        status = manager.evaluate(now=50.0)[0]
        assert status.state == "resolved"
        assert manager.firing() == []

        series.append(60.0, 50.0)  # re-arms from resolved
        assert manager.evaluate(now=60.0)[0].state == "pending"

    def test_zero_dwell_fires_immediately(self):
        manager, series = manager_with_gauge()
        manager.add_rule(
            AlertRule(name="deep", kind="threshold", series="repro_depth", value=10.0)
        )
        series.append(0.0, 11.0)
        status = manager.evaluate(now=0.0)[0]
        assert status.state == "firing"
        assert status.transitions == 2  # inactive→pending→firing, one tick

    def test_pending_flap_returns_to_inactive(self):
        manager, series = manager_with_gauge()
        manager.add_rule(
            AlertRule(
                name="deep", kind="threshold", series="repro_depth",
                value=10.0, for_seconds=60.0,
            )
        )
        series.append(0.0, 50.0)
        assert manager.evaluate(now=0.0)[0].state == "pending"
        series.append(10.0, 1.0)  # cleared before the dwell elapsed
        status = manager.evaluate(now=10.0)[0]
        assert status.state == "inactive"
        assert status.pending_since is None

    def test_missing_series_is_not_a_threshold_breach(self):
        store = TimeSeriesStore()
        manager = AlertManager(store)
        manager.add_rule(
            AlertRule(name="deep", kind="threshold", series="absent", value=1.0)
        )
        assert manager.evaluate(now=0.0)[0].state == "inactive"

    def test_replay_is_deterministic(self):
        """The same (samples, instants) walk produces the same transitions."""
        walks = []
        for _ in range(2):
            manager, series = manager_with_gauge()
            manager.add_rule(
                AlertRule(
                    name="deep", kind="threshold", series="repro_depth",
                    value=10.0, for_seconds=20.0,
                )
            )
            states = []
            for now, value in [(0, 5), (10, 60), (20, 60), (30, 60), (40, 2), (50, 60)]:
                series.append(float(now), float(value))
                states.append(manager.evaluate(now=float(now))[0].state)
            walks.append(states)
        assert walks[0] == walks[1]
        assert walks[0] == [
            "inactive", "pending", "pending", "firing", "resolved", "pending",
        ]


class TestAbsenceRules:
    def test_fires_when_series_goes_stale(self):
        manager, series = manager_with_gauge()
        manager.add_rule(
            AlertRule(name="stale", kind="absence", series="repro_depth", window=60.0)
        )
        series.append(0.0, 1.0)
        assert manager.evaluate(now=30.0)[0].state == "inactive"
        status = manager.evaluate(now=100.0)[0]  # 100 s old > 60 s window
        assert status.state == "firing"
        assert status.value == pytest.approx(100.0)  # the observed age
        series.append(110.0, 1.0)
        assert manager.evaluate(now=110.0)[0].state == "resolved"

    def test_never_seen_series_is_absent(self):
        manager = AlertManager(TimeSeriesStore())
        manager.add_rule(
            AlertRule(name="stale", kind="absence", series="never", window=60.0)
        )
        assert manager.evaluate(now=0.0)[0].state == "firing"


class TestBurnRateRules:
    BUCKETS = (0.1, 1.0)

    def _store_with_burn(self, bad, total):
        from repro.obs import metric_key

        store = TimeSeriesStore()
        key = metric_key("repro_request_latency_seconds", {"endpoint": "e"})
        series = store.series(key, "histogram", buckets=self.BUCKETS)
        series.append(0.0, {"counts": [0, 0, 0], "sum": 0.0, "count": 0, "max": 0.0})
        series.append(
            60.0,
            {
                "counts": [total - bad, bad, 0],
                "sum": 0.0,
                "count": total,
                "max": 0.0,
            },
        )
        return store

    def test_watches_slo_via_evaluator_fallback(self):
        store = self._store_with_burn(bad=10, total=100)  # burn 10x at 0.99
        evaluator = SLOEvaluator(store)
        evaluator.add(SLObjective.latency("e", threshold=0.1, objective=0.99))
        manager = AlertManager(store, evaluator=evaluator)
        manager.add_rule(AlertRule(name="burn", kind="burn_rate", slo="latency-e"))
        assert manager.evaluate(now=60.0)[0].state == "firing"

    def test_value_overrides_burn_threshold(self):
        store = self._store_with_burn(bad=10, total=100)
        evaluator = SLOEvaluator(store)
        evaluator.add(SLObjective.latency("e", threshold=0.1, objective=0.99))
        manager = AlertManager(store, evaluator=evaluator)
        manager.add_rule(
            AlertRule(name="burn", kind="burn_rate", slo="latency-e", value=50.0)
        )
        assert manager.evaluate(now=60.0)[0].state == "inactive"

    def test_no_data_slo_never_fires(self):
        store = TimeSeriesStore()
        evaluator = SLOEvaluator(store)
        evaluator.add(SLObjective.latency("e", threshold=0.1))
        manager = AlertManager(store, evaluator=evaluator)
        manager.add_rule(AlertRule(name="burn", kind="burn_rate", slo="latency-e"))
        assert manager.evaluate(now=0.0)[0].state == "inactive"

    def test_unknown_slo_never_fires(self):
        manager = AlertManager(TimeSeriesStore())
        manager.add_rule(AlertRule(name="burn", kind="burn_rate", slo="ghost"))
        assert manager.evaluate(now=0.0, slo_statuses=[])[0].state == "inactive"


class TestTransitionMetrics:
    def test_every_transition_is_counted(self):
        registry = MetricsRegistry()
        manager, series = manager_with_gauge(registry)
        manager.add_rule(
            AlertRule(name="deep", kind="threshold", series="repro_depth", value=10.0)
        )
        series.append(0.0, 50.0)
        manager.evaluate(now=0.0)  # inactive→pending→firing
        series.append(10.0, 1.0)
        manager.evaluate(now=10.0)  # firing→resolved

        def count(to):
            counter = registry.get(
                "repro_alert_transitions_total", {"alert": "deep", "to": to}
            )
            return 0 if counter is None else counter.value

        assert count("pending") == 1
        assert count("firing") == 1
        assert count("resolved") == 1
        assert registry.get("repro_alerts_firing").value == 0

    def test_firing_gauge_tracks_current_state(self):
        registry = MetricsRegistry()
        manager, series = manager_with_gauge(registry)
        manager.add_rule(
            AlertRule(name="deep", kind="threshold", series="repro_depth", value=10.0)
        )
        series.append(0.0, 50.0)
        manager.evaluate(now=0.0)
        assert registry.get("repro_alerts_firing").value == 1


class TestExportAndSnapshot:
    def test_to_json_round_trips(self):
        manager, series = manager_with_gauge()
        manager.add_rule(
            AlertRule(name="deep", kind="threshold", series="repro_depth", value=10.0)
        )
        series.append(0.0, 50.0)
        manager.evaluate(now=0.0)
        exported = json.loads(manager.to_json())
        assert exported["rules"][0]["name"] == "deep"
        assert exported["states"]["deep"]["state"] == "firing"
        assert exported["states"]["deep"]["transitions"] == 2

    def test_replacing_a_rule_resets_its_state(self):
        manager, series = manager_with_gauge()
        rule = AlertRule(name="deep", kind="threshold", series="repro_depth", value=10.0)
        manager.add_rule(rule)
        series.append(0.0, 50.0)
        manager.evaluate(now=0.0)
        assert manager.state("deep") == "firing"
        manager.add_rule(
            AlertRule(name="deep", kind="threshold", series="repro_depth", value=99.0)
        )
        assert manager.state("deep") == "inactive"

    def test_snapshot_preserves_rules_and_states(self, tmp_path):
        from repro.store import load_component, save_component

        manager, series = manager_with_gauge()
        manager.add_rule(
            AlertRule(name="deep", kind="threshold", series="repro_depth", value=10.0)
        )
        series.append(0.0, 50.0)
        manager.evaluate(now=0.0)
        save_component(manager, tmp_path / "snap")
        restored = load_component(tmp_path / "snap")
        assert restored.state("deep") == "firing"
        assert restored.to_dict() == manager.to_dict()

"""Monitoring across the process backend: series scraped from child-merged
counters and child profiler samples riding home in task extras.

Mirrors :mod:`tests.obs.test_process_telemetry` — the same four distances,
two forked shards each — but pins the *monitoring* surfaces: the parent
scrape must see child work as counter growth, and a parent-side profiler
must absorb the children's sample deltas with pool attribution intact.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.obs import (
    SamplingProfiler,
    TimeSeriesStore,
    disable_profiling,
    enable_profiling,
    metric_key,
    profiling_enabled,
    set_active_profiler,
)
from repro.runtime import Runtime, fork_available
from repro.selection.edit_index import QGramEditSelector
from repro.selection.euclidean_index import BallIndexEuclideanSelector
from repro.selection.hamming_index import PackedHammingSelector
from repro.selection.jaccard_index import PrefixFilterJaccardSelector
from repro.serving.telemetry import ServingTelemetry
from repro.sharding import ShardedSelector
from repro.sharding.selector import SHARD_PROCESS_POOL

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process backend needs the fork start method"
)

RNG = np.random.default_rng(31)

NUM_SHARDS = 2
NUM_QUERIES = 4

WORKLOADS = {
    "hamming": (
        [row for row in RNG.integers(0, 2, size=(120, 48)).astype(np.uint8)],
        lambda recs: PackedHammingSelector(recs),
        10.0,
    ),
    "euclidean": (
        [row for row in RNG.normal(size=(100, 8))],
        lambda recs: BallIndexEuclideanSelector(recs),
        2.0,
    ),
    "jaccard": (
        [
            set(map(int, RNG.choice(60, size=int(RNG.integers(3, 12)), replace=False)))
            for _ in range(90)
        ],
        lambda recs: PrefixFilterJaccardSelector(recs),
        0.5,
    ),
    "edit": (
        ["similar", "silimar", "dissimilar", "select", "selects", "cardinal",
         "cardinality", "estimate", "estimator", "query"] * 8,
        lambda recs: QGramEditSelector(recs),
        2.0,
    ),
}


@pytest.mark.parametrize("kind", sorted(WORKLOADS))
def test_child_work_lands_in_scraped_series(kind):
    """Scrapes of the parent registry bracket the workload; the increase on
    every per-shard counter series equals the child tasks that ran."""
    records, factory, threshold = WORKLOADS[kind]
    telemetry = ServingTelemetry()
    selector = ShardedSelector(
        records,
        factory,
        num_shards=NUM_SHARDS,
        runtime=Runtime(telemetry=telemetry),
        backend="process",
    )
    store = TimeSeriesStore()
    try:
        # One warm query materialises the per-shard counters so the baseline
        # scrape captures a starting point for every series.
        selector.cardinality(records[0], threshold)
        store.sample_registry(telemetry.metrics, now=0.0)
        for query in records[:NUM_QUERIES]:
            selector.cardinality(query, threshold)
        store.sample_registry(telemetry.metrics, now=60.0)
        assert selector.runtime.stats()[SHARD_PROCESS_POOL]["backend"] == "process"
    finally:
        selector.runtime.shutdown()

    for shard in range(NUM_SHARDS):
        key = metric_key(
            "repro_shard_tasks_total", {"op": "cardinality", "shard": shard}
        )
        assert store.increase(key, 120.0, now=60.0) == float(NUM_QUERIES), key
        latency_key = metric_key(
            "repro_shard_task_seconds", {"op": "cardinality", "shard": shard}
        )
        assert store.get(latency_key).kind == "histogram"
        delta = store.get(latency_key).delta(120.0, now=60.0)
        assert delta["count"] == NUM_QUERIES


@pytest.mark.parametrize("kind", sorted(WORKLOADS))
def test_child_profiles_merge_into_parent_profiler(kind):
    """Each forked worker runs its own sampler; per-task deltas ride home in
    task extras and must merge into the parent's active profiler, attributed
    to the shard pool."""
    records, factory, threshold = WORKLOADS[kind]
    was_enabled = profiling_enabled()
    parent = SamplingProfiler()
    enable_profiling()  # before the fork: children inherit the switch
    set_active_profiler(parent)
    selector = ShardedSelector(
        records,
        factory,
        num_shards=NUM_SHARDS,
        runtime=Runtime(telemetry=ServingTelemetry()),
        backend="process",
    )
    try:
        for round_idx in range(6):
            for query in records[:NUM_QUERIES]:
                selector.cardinality(query, threshold)
            if parent.total_samples:
                break
            # Let the child samplers accumulate; the next task ships them.
            time.sleep(0.05)
    finally:
        selector.runtime.shutdown()
        set_active_profiler(None)
        (enable_profiling if was_enabled else disable_profiling)()

    assert parent.total_samples > 0
    totals = parent.label_totals()
    assert any(label == f"pool:{SHARD_PROCESS_POOL}" for label in totals), totals
    # Child samples carry the pool fallback label — near-total attribution.
    fraction = parent.attribution_fraction()
    assert fraction is not None and fraction >= 0.9, totals

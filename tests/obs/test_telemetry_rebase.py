"""ServingTelemetry on the metrics registry: the flat-counter API is
unchanged, percentiles and Prometheus exposition come from the registry, and
snapshot restore tolerates pre-rebase states."""

from __future__ import annotations

import pytest

from repro.obs import Histogram, disable_metrics, enable_metrics
from repro.serving.telemetry import EndpointStats, ServingTelemetry


@pytest.fixture(autouse=True)
def _metrics_on():
    enable_metrics()
    yield
    enable_metrics()


class TestEndpointStats:
    def test_record_duration_tracks_sum_and_max(self):
        stats = EndpointStats()
        stats.record_duration(0.2)
        stats.record_duration(0.5)
        stats.record_duration(0.1)
        assert stats.latency_seconds == pytest.approx(0.8)
        assert stats.max_latency_seconds == 0.5
        assert stats.snapshot()["max_latency_seconds"] == 0.5

    def test_restore_tolerates_states_missing_new_fields(self):
        stats = EndpointStats.__new__(EndpointStats)
        stats.__snapshot_restore__({"requests": 7, "latency_seconds": 1.5})
        assert stats.requests == 7
        assert stats.latency_seconds == 1.5
        assert stats.max_latency_seconds == 0.0  # defaulted, not KeyError
        assert stats.drift_events == 0


class TestRegistryFeeds:
    def test_requests_feed_labelled_counters(self):
        telemetry = ServingTelemetry()
        telemetry.record_requests("euclid", count=5, hits=3, misses=2)
        assert telemetry.endpoint("euclid").requests == 5
        assert telemetry.total.requests == 5
        metrics = telemetry.metrics
        labels = {"endpoint": "euclid"}
        assert metrics.get("repro_requests_total", labels).value == 5.0
        assert metrics.get("repro_cache_hits_total", labels).value == 3.0
        assert metrics.get("repro_cache_misses_total", labels).value == 2.0

    def test_latency_feeds_endpoint_and_total_histograms(self):
        telemetry = ServingTelemetry()
        telemetry.record_latency("euclid", 0.004)
        telemetry.record_latency("euclid", 0.04)
        for endpoint in ("euclid", "total"):
            histogram = telemetry.metrics.get(
                "repro_request_latency_seconds", {"endpoint": endpoint}
            )
            assert isinstance(histogram, Histogram)
            assert histogram.count == 2

    def test_snapshot_reports_latency_percentiles(self):
        telemetry = ServingTelemetry()
        for _ in range(20):
            telemetry.record_latency("euclid", 0.002)
        report = telemetry.snapshot()
        for name in ("euclid", "total"):
            entry = report[name]
            assert entry["latency_p50"] <= entry["latency_p95"] <= entry["latency_p99"]
            assert 0.0 < entry["latency_p50"] < 0.01
        # Endpoints that never recorded a latency get no percentile keys.
        telemetry.record_requests("cold", 1, 0, 1)
        assert "latency_p50" not in telemetry.snapshot()["cold"]

    def test_pool_tasks_share_the_endpoint_helper_and_track_max(self):
        telemetry = ServingTelemetry()
        telemetry.record_pool_task("shards", 0.01)
        telemetry.record_pool_task("shards", 0.03)
        stats = telemetry.endpoint("pool:shards")
        assert stats.requests == 2
        assert stats.latency_seconds == pytest.approx(0.04)
        assert stats.max_latency_seconds == 0.03
        # Pool tasks never inflate the client-facing totals.
        assert telemetry.total.requests == 0
        labels = {"pool": "shards"}
        assert telemetry.metrics.get("repro_pool_tasks_total", labels).value == 2.0
        assert telemetry.metrics.get("repro_pool_task_seconds", labels).count == 2

    def test_observation_feeds_q_error_histogram(self):
        telemetry = ServingTelemetry()
        error = telemetry.record_observation("euclid", estimated=10, actual=5)
        assert error == 2.0
        histogram = telemetry.metrics.get("repro_q_error", {"endpoint": "euclid"})
        assert histogram.count == 1
        assert histogram.max == 2.0

    def test_drift_feeds_counter(self):
        telemetry = ServingTelemetry()
        telemetry.record_drift("euclid")
        assert (
            telemetry.metrics.get(
                "repro_drift_events_total", {"endpoint": "euclid"}
            ).value
            == 1.0
        )

    def test_kill_switch_skips_registry_but_keeps_flat_counters(self):
        telemetry = ServingTelemetry()
        disable_metrics()
        try:
            telemetry.record_requests("euclid", 2, 1, 1)
            telemetry.record_latency("euclid", 0.01)
            telemetry.record_pool_task("shards", 0.01)
        finally:
            enable_metrics()
        assert telemetry.endpoint("euclid").requests == 2
        assert telemetry.endpoint("pool:shards").max_latency_seconds == 0.01
        assert len(telemetry.metrics) == 0

    def test_to_prometheus_delegates_to_registry(self):
        telemetry = ServingTelemetry()
        telemetry.record_requests("euclid", 1, 1, 0)
        text = telemetry.to_prometheus()
        assert 'repro_requests_total{endpoint="euclid"} 1' in text

    def test_reset_clears_registry_too(self):
        telemetry = ServingTelemetry()
        telemetry.record_requests("euclid", 1, 1, 0)
        telemetry.reset()
        assert len(telemetry.metrics) == 0
        assert telemetry.snapshot() == {"total": telemetry.total.snapshot()}


class TestSnapshotHooks:
    def test_state_roundtrip_drops_and_rebuilds_lock(self):
        telemetry = ServingTelemetry()
        telemetry.record_requests("euclid", 3, 2, 1)
        telemetry.record_latency("euclid", 0.01)
        state = telemetry.__snapshot_state__()
        assert "_lock" not in state
        restored = ServingTelemetry.__new__(ServingTelemetry)
        restored.__snapshot_restore__(state)
        restored.record_requests("euclid", 1, 0, 1)  # lock works again
        assert restored.endpoint("euclid").requests == 4

    def test_restore_defaults_registry_for_pre_rebase_states(self):
        restored = ServingTelemetry.__new__(ServingTelemetry)
        restored.__snapshot_restore__(
            {"_endpoints": {}, "total": EndpointStats()}
        )
        restored.record_latency("euclid", 0.01)
        assert restored.metrics.get(
            "repro_request_latency_seconds", {"endpoint": "euclid"}
        ).count == 1

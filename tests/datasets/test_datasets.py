"""Unit tests for synthetic dataset generators, registry, relations, and updates."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_REGISTRY,
    DEFAULT_DATASETS,
    apply_operation,
    apply_stream,
    generate_update_stream,
    list_datasets,
    load_dataset,
    make_binary_dataset,
    make_multi_attribute_relation,
    make_set_dataset,
    make_string_dataset,
    make_vector_dataset,
)
from repro.datasets.updates import UpdateOperation


class TestBinaryDataset:
    def test_shape_and_dtype(self):
        dataset = make_binary_dataset(num_records=100, dimension=16, seed=0)
        assert dataset.records.shape == (100, 16)
        assert set(np.unique(dataset.records)) <= {0, 1}

    def test_deterministic_given_seed(self):
        a = make_binary_dataset(num_records=50, dimension=8, seed=3)
        b = make_binary_dataset(num_records=50, dimension=8, seed=3)
        assert np.array_equal(a.records, b.records)

    def test_different_seeds_differ(self):
        a = make_binary_dataset(num_records=50, dimension=8, seed=3)
        b = make_binary_dataset(num_records=50, dimension=8, seed=4)
        assert not np.array_equal(a.records, b.records)

    def test_cluster_labels_cover_all_records(self):
        dataset = make_binary_dataset(num_records=80, dimension=8, num_clusters=4, seed=1)
        assert len(dataset.cluster_labels) == 80
        assert dataset.num_clusters == 4

    def test_cluster_sizes_sorted_descending(self):
        dataset = make_binary_dataset(num_records=100, dimension=8, num_clusters=5, seed=1)
        sizes = dataset.cluster_sizes()
        assert list(sizes) == sorted(sizes, reverse=True)
        assert sizes.sum() == 100

    def test_skew_produces_unequal_clusters(self):
        dataset = make_binary_dataset(
            num_records=200, dimension=8, num_clusters=4, cluster_skew=2.0, seed=1
        )
        sizes = dataset.cluster_sizes()
        assert sizes[0] > sizes[-1]

    def test_default_theta_max(self):
        dataset = make_binary_dataset(num_records=20, dimension=40, seed=0)
        assert dataset.theta_max == pytest.approx(12)


class TestStringDataset:
    def test_records_are_strings(self):
        dataset = make_string_dataset(num_records=60, seed=0)
        assert all(isinstance(record, str) for record in dataset.records)

    def test_alphabet_respected(self):
        dataset = make_string_dataset(num_records=60, alphabet="xyz", seed=0)
        assert set("".join(dataset.records)) <= set("xyz")

    def test_max_length_metadata(self):
        dataset = make_string_dataset(num_records=60, seed=0)
        assert dataset.extra["max_length"] == max(len(r) for r in dataset.records)

    def test_deterministic(self):
        a = make_string_dataset(num_records=30, seed=9)
        b = make_string_dataset(num_records=30, seed=9)
        assert a.records == b.records


class TestSetDataset:
    def test_records_are_frozensets(self):
        dataset = make_set_dataset(num_records=50, seed=0)
        assert all(isinstance(record, frozenset) for record in dataset.records)

    def test_elements_within_universe(self):
        dataset = make_set_dataset(num_records=50, universe_size=30, seed=0)
        assert all(0 <= element < 30 for record in dataset.records for element in record)

    def test_no_empty_records(self):
        dataset = make_set_dataset(num_records=50, seed=0)
        assert all(len(record) > 0 for record in dataset.records)


class TestVectorDataset:
    def test_normalized_rows(self):
        dataset = make_vector_dataset(num_records=40, dimension=8, seed=0)
        norms = np.linalg.norm(dataset.records, axis=1)
        assert np.allclose(norms, 1.0)

    def test_unnormalized_option(self):
        dataset = make_vector_dataset(num_records=40, dimension=8, normalize=False, seed=0)
        norms = np.linalg.norm(dataset.records, axis=1)
        assert not np.allclose(norms, 1.0)

    def test_clusters_are_tighter_than_random(self):
        dataset = make_vector_dataset(num_records=100, dimension=8, cluster_std=0.05, seed=0)
        labels = dataset.cluster_labels
        records = dataset.records
        same_cluster = []
        for cluster in range(dataset.num_clusters):
            members = records[labels == cluster]
            if len(members) > 1:
                same_cluster.append(np.linalg.norm(members[0] - members[1]))
        overall = np.linalg.norm(records[0] - records[50])
        assert np.mean(same_cluster) < overall + 1.0  # sanity: intra-cluster is small


class TestRegistry:
    def test_all_registered_datasets_load(self):
        for name in list_datasets():
            dataset = load_dataset(name, seed=0)
            assert len(dataset) > 0
            assert dataset.name == name

    def test_default_datasets_cover_four_distances(self):
        distances = {load_dataset(name).distance_name for name in DEFAULT_DATASETS}
        assert distances == {"hamming", "edit", "jaccard", "euclidean"}

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_dataset("not-a-dataset")

    def test_registry_and_list_agree(self):
        assert sorted(DATASET_REGISTRY) == list_datasets()


class TestRelations:
    def test_attributes_share_rows(self):
        relation = make_multi_attribute_relation(num_records=50, seed=0)
        for matrix in relation.attributes.values():
            assert matrix.shape[0] == 50

    def test_attribute_names(self):
        relation = make_multi_attribute_relation(
            num_records=20, attribute_dims=(4, 4), attribute_names=("a", "b"), seed=0
        )
        assert relation.attribute_names == ["a", "b"]

    def test_mismatched_dims_and_names_raise(self):
        with pytest.raises(ValueError):
            make_multi_attribute_relation(attribute_dims=(4,), attribute_names=("a", "b"))


class TestUpdates:
    def test_stream_is_deterministic(self, binary_dataset):
        a = generate_update_stream(binary_dataset, num_operations=10, seed=5)
        b = generate_update_stream(binary_dataset, num_operations=10, seed=5)
        assert [op.kind for op in a] == [op.kind for op in b]

    def test_insert_grows_dataset(self, binary_dataset):
        records = list(binary_dataset.records)
        operation = UpdateOperation("insert", [records[0], records[1]])
        updated = apply_operation(records, operation)
        assert len(updated) == len(records) + 2

    def test_delete_shrinks_dataset(self, binary_dataset):
        records = list(binary_dataset.records)
        operation = UpdateOperation("delete", [0, 1, 2])
        updated = apply_operation(records, operation)
        assert len(updated) == len(records) - 3

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            UpdateOperation("upsert", [])

    def test_apply_stream_tracks_sizes(self, binary_dataset):
        operations = generate_update_stream(
            binary_dataset, num_operations=8, records_per_operation=3, seed=2
        )
        final, sizes = apply_stream(binary_dataset.records, operations)
        assert len(sizes) == 8
        assert sizes[-1] == len(final)

    def test_delete_out_of_range_is_ignored(self):
        records = [1, 2, 3]
        updated = apply_operation(records, UpdateOperation("delete", [10]))
        assert updated == records

"""Engine integration for sharded attributes: plan, execute, update, repair.

Covers the wiring the tentpole adds across layers: the planner reads one
merged monotone curve, the executor fans out across shard indexes and merges
exactly, updates route to per-shard managers so only the touched shard
relabels/retrains, and merged-endpoint drift revalidates every shard.
"""

import numpy as np
import pytest

from repro.baselines import UniformSamplingEstimator
from repro.core import CardNetEstimator, IncrementalUpdateManager
from repro.datasets.synthetic import Dataset
from repro.datasets.updates import UpdateOperation
from repro.distances import get_distance
from repro.engine import (
    ConjunctiveQuery,
    ShardedUpdateReport,
    SimilarityPredicate,
    SimilarityQueryEngine,
)
from repro.selection import LinearScanSelector
from repro.workloads.builder import relabel


def sampling_factory(distance_name, **options):
    def factory(shard_records, shard_index):
        return UniformSamplingEstimator(
            shard_records, distance_name, seed=shard_index, **options
        )

    return factory


@pytest.fixture
def sharded_engine(binary_dataset):
    engine = SimilarityQueryEngine()
    engine.register_sharded_attribute(
        "hm",
        binary_dataset.records,
        "hamming",
        sampling_factory("hamming", sample_ratio=0.3),
        num_shards=4,
        theta_max=binary_dataset.theta_max,
    )
    return engine


class TestShardedExecution:
    def test_registration_wires_endpoints_and_binding(self, sharded_engine):
        binding = sharded_engine.catalog.get("hm")
        assert binding.sharded
        assert binding.endpoint == "hm"
        assert binding.shard_endpoints == [f"hm#shard{k}" for k in range(4)]
        for endpoint in ["hm", *binding.shard_endpoints]:
            assert endpoint in sharded_engine.service.registry
        assert sharded_engine.shard_group("hm").num_shards == 4

    def test_plans_read_the_merged_curve(self, sharded_engine, binary_dataset):
        plan = sharded_engine.explain(
            SimilarityPredicate("hm", binary_dataset.records[0], 5.0)
        )
        assert plan.driver_shards == 4
        assert "shards=4" in plan.describe()
        # Merged estimate == sum of the per-shard served estimates.
        group = sharded_engine.shard_group("hm")
        per_shard = group.shard_estimates([binary_dataset.records[0]], [5.0])
        assert plan.driver.estimated_cardinality == pytest.approx(per_shard.sum())

    def test_execution_is_exact_with_shard_counts(self, sharded_engine, binary_dataset):
        reference = LinearScanSelector(binary_dataset.records, get_distance("hamming"))
        rng = np.random.default_rng(6)
        for record_id in rng.choice(len(binary_dataset.records), size=8, replace=False):
            record = binary_dataset.records[int(record_id)]
            theta = float(rng.integers(2, int(binary_dataset.theta_max)))
            result = sharded_engine.execute(SimilarityPredicate("hm", record, theta))
            assert result.record_ids == reference.query(record, theta)
            assert result.shard_counts is not None and len(result.shard_counts) == 4
            assert sum(result.shard_counts) == result.driver_actual

    def test_conjunction_mixes_sharded_and_unsharded(self, relation):
        engine = SimilarityQueryEngine()
        names = relation.attribute_names
        engine.register_sharded_attribute(
            names[0],
            relation.attributes[names[0]],
            "euclidean",
            sampling_factory("euclidean", sample_ratio=0.3),
            num_shards=3,
            theta_max=1.0,
        )
        for attribute in names[1:]:
            engine.register_attribute(
                attribute,
                relation.attributes[attribute],
                "euclidean",
                UniformSamplingEstimator(
                    relation.attributes[attribute], "euclidean", sample_ratio=0.3, seed=0
                ),
                theta_max=1.0,
            )
        scans = {
            attribute: LinearScanSelector(matrix, get_distance("euclidean"))
            for attribute, matrix in relation.attributes.items()
        }
        rng = np.random.default_rng(2)
        for _ in range(5):
            record_id = int(rng.integers(0, len(relation)))
            query = ConjunctiveQuery(
                [
                    SimilarityPredicate(
                        attribute,
                        relation.attributes[attribute][record_id]
                        + rng.normal(0.0, 0.05, relation.attributes[attribute].shape[1]),
                        float(rng.uniform(0.3, 0.6)),
                    )
                    for attribute in names
                ]
            )
            truth = None
            for predicate in query.predicates:
                matches = set(
                    scans[predicate.attribute].query(predicate.record, predicate.theta)
                )
                truth = matches if truth is None else truth & matches
            assert engine.execute(query).record_ids == sorted(truth)

    def test_duplicate_name_and_single_manager_rejected(
        self, sharded_engine, binary_dataset
    ):
        with pytest.raises(KeyError):
            sharded_engine.register_sharded_attribute(
                "hm",
                binary_dataset.records,
                "hamming",
                sampling_factory("hamming", sample_ratio=0.3),
                theta_max=binary_dataset.theta_max,
            )
        manager = object()
        with pytest.raises(ValueError):
            sharded_engine.attach_manager("hm", manager)

    def test_failed_registration_leaves_no_half_state(self, binary_dataset):
        """A name collision on the serving side must not leave a poisoned
        catalog binding or leaked shard endpoints (regression)."""
        engine = SimilarityQueryEngine()
        # Occupy the merged endpoint name directly on the service.
        engine.service.register(
            "hm",
            UniformSamplingEstimator(binary_dataset.records, "hamming", seed=0),
            theta_max=binary_dataset.theta_max,
        )
        with pytest.raises(KeyError):
            engine.register_sharded_attribute(
                "hm",
                binary_dataset.records,
                "hamming",
                sampling_factory("hamming", sample_ratio=0.3),
                num_shards=2,
                theta_max=binary_dataset.theta_max,
            )
        assert "hm" not in engine.catalog
        assert "hm#shard0" not in engine.service.registry
        assert "hm#shard1" not in engine.service.registry
        # A fresh registration under an unclaimed name still works.
        binding = engine.register_sharded_attribute(
            "hm2",
            binary_dataset.records,
            "hamming",
            sampling_factory("hamming", sample_ratio=0.3),
            num_shards=2,
            theta_max=binary_dataset.theta_max,
        )
        assert binding.sharded


class TestManagerWiring:
    def test_miswired_manager_endpoint_rejected(self, sharded_engine, binary_dataset):
        """A pre-wired manager pointing at anything but its shard endpoint on
        the engine's service would invalidate the wrong curves on retrain —
        the merged endpoint would keep summing a stale shard (regression)."""

        class StubManager:
            def __init__(self, records, service, endpoint):
                self.records = records
                self.service = service
                self.service_endpoint = endpoint

            def ensure_baseline(self):
                return 0.0

            def revalidate(self):
                return None

            def process(self, operation, operation_index=0):
                return None

        binding = sharded_engine.catalog.get("hm")
        shard_records = list(binding.selector.shard(0).dataset)
        # Wired to the MERGED endpoint instead of hm#shard0: rejected.
        wrong_endpoint = StubManager(shard_records, sharded_engine.service, "hm")
        with pytest.raises(ValueError):
            sharded_engine.attach_shard_managers("hm", {0: wrong_endpoint})
        # Wired to the right endpoint name but on a foreign service: rejected.
        from repro.serving import EstimationService

        foreign = StubManager(shard_records, EstimationService(), "hm#shard0")
        with pytest.raises(ValueError):
            sharded_engine.attach_shard_managers("hm", {0: foreign})
        # Correctly wired (or unwired) managers attach fine.
        correct = StubManager(shard_records, sharded_engine.service, "hm#shard0")
        sharded_engine.attach_shard_managers("hm", {0: correct})


class TestShardedUpdates:
    def test_update_touches_only_routed_shards(self, sharded_engine, binary_dataset):
        binding = sharded_engine.catalog.get("hm")
        shards_before = binding.selector.shards
        report = sharded_engine.apply_update(
            "hm", UpdateOperation("insert", [binary_dataset.records[0]])
        )
        assert isinstance(report, ShardedUpdateReport)
        assert len(report.touched_shards) == 1
        touched = report.touched_shards[0]
        # Shards absorb updates as in-place O(Δ) deltas: every shard object
        # keeps its identity, and only the routed shard saw a mutation.
        for shard_id in range(4):
            assert binding.selector.shard(shard_id) is shards_before[shard_id]
            expected_mutations = 1 if shard_id == touched else 0
            assert (
                binding.selector.shard(shard_id).mutation_count == expected_mutations
            )
        assert report.dataset_size == len(binary_dataset.records) + 1
        assert len(binding.records) == report.dataset_size

    def test_results_stay_exact_through_update_stream(
        self, sharded_engine, binary_dataset
    ):
        from repro.datasets import generate_update_stream

        operations = generate_update_stream(
            binary_dataset, num_operations=4, records_per_operation=8, seed=9
        )
        for operation in operations:
            sharded_engine.apply_update("hm", operation)
        binding = sharded_engine.catalog.get("hm")
        reference = LinearScanSelector(binding.records, get_distance("hamming"))
        record = binding.records[3]
        result = sharded_engine.execute(SimilarityPredicate("hm", record, 6.0))
        assert result.record_ids == reference.query(record, 6.0)


@pytest.fixture(scope="module")
def managed_sharded_setup(binary_dataset, binary_workload):
    """Two-shard CardNet deployment with one real update manager per shard."""
    engine = SimilarityQueryEngine()

    trained = {}

    def cardnet_factory(shard_records, shard_index):
        shard_dataset = Dataset(
            name=f"HM-Shard{shard_index}",
            records=shard_records,
            distance_name="hamming",
            theta_max=binary_dataset.theta_max,
            cluster_labels=np.zeros(len(shard_records), dtype=np.int64),
        )
        estimator = CardNetEstimator.for_dataset(
            shard_dataset, epochs=2, vae_pretrain_epochs=1, seed=shard_index
        )
        trained[shard_index] = (estimator, shard_records)
        return estimator

    binding = engine.register_sharded_attribute(
        "hm",
        binary_dataset.records,
        "hamming",
        cardnet_factory,
        num_shards=2,
        partitioner="round_robin",
        theta_max=binary_dataset.theta_max,
    )
    managers = {}
    for shard_index, shard in enumerate(binding.selector.shards):
        estimator, shard_records = trained[shard_index]
        train = relabel(binary_workload.train[:30], shard)
        validation = relabel(binary_workload.validation[:10], shard)
        estimator.fit(train, validation)
        managers[shard_index] = IncrementalUpdateManager(
            estimator,
            shard,
            train,
            validation,
            max_epochs_per_update=1,
        )
    engine.attach_shard_managers("hm", managers)
    return engine, managers


class TestPerShardManagers:
    def test_update_relabels_only_the_touched_shard(
        self, managed_sharded_setup, binary_dataset
    ):
        engine, managers = managed_sharded_setup
        sizes_before = {k: len(m.records) for k, m in managers.items()}
        # Round-robin: one appended record lands on shard len(dataset) % 2.
        touched = len(engine.catalog.get("hm").records) % 2
        report = engine.apply_update(
            "hm", UpdateOperation("insert", [binary_dataset.records[1]])
        )
        assert report.touched_shards == [touched]
        assert set(report.reports) == {touched}
        assert len(managers[touched].records) == sizes_before[touched] + 1
        untouched = 1 - touched
        assert len(managers[untouched].records) == sizes_before[untouched]
        # The manager's rebuilt selector was adopted by the sharded selector.
        binding = engine.catalog.get("hm")
        assert binding.selector.shard(touched) is managers[touched].selector

    def test_post_update_execution_exact(self, managed_sharded_setup):
        engine, _ = managed_sharded_setup
        binding = engine.catalog.get("hm")
        reference = LinearScanSelector(binding.records, get_distance("hamming"))
        record = binding.records[-1]
        result = engine.execute(SimilarityPredicate("hm", record, 5.0))
        assert result.record_ids == reference.query(record, 5.0)

    def test_merged_drift_revalidates_every_shard(self, managed_sharded_setup):
        engine, managers = managed_sharded_setup
        monitor = engine.feedback
        # Push estimated-vs-actual pairs that are wildly wrong straight into
        # the monitor (the unit under test is repair fan-out, not planning).
        events = [
            monitor.observe("hm", estimated=1.0, actual=50_000.0)
            for _ in range(monitor.min_observations + 1)
        ]
        fired = [event for event in events if event is not None]
        assert fired, "drift should have fired on the merged endpoint"
        event = fired[0]
        assert event.endpoint == "hm"
        revalidation = event.revalidation
        assert revalidation is not None
        assert sorted(revalidation.reports) == sorted(managers)
        assert revalidation.epochs_run >= 0  # aggregate is well-formed
        snapshot = engine.feedback.snapshot()
        assert snapshot["events"][-1]["endpoint"] == "hm"


class TestEngineRebalance:
    def test_rebalance_swaps_endpoints_and_stays_exact(
        self, sharded_engine, binary_dataset
    ):
        from repro.sharding import RebalancePlan, SplitShard

        engine = sharded_engine
        binding = engine.catalog.get("hm")
        record = binary_dataset.records[5]
        predicate = SimilarityPredicate("hm", record, 6.0)
        before_ids = engine.execute(predicate).record_ids
        old_group = engine.shard_group("hm")
        old_grid = old_group.curve_thetas
        version = binding.version

        report = engine.rebalance_attribute(
            "hm", RebalancePlan([SplitShard(0, parts=2)])
        )

        assert report is not None
        assert report.num_shards_after == report.num_shards_before + 1
        assert binding.shard_endpoints == [
            f"hm#shard{i}" for i in range(report.num_shards_after)
        ]
        assert binding.version == version + 1
        new_group = engine.shard_group("hm")
        assert new_group is not old_group
        assert list(new_group.curve_thetas) == list(old_grid)
        # Planning still works against the swapped endpoints...
        plan = engine.explain(ConjunctiveQuery([predicate]))
        assert plan.driver.predicate.attribute == "hm"
        assert plan.driver_shards == report.num_shards_after
        # ...and execution is still bit-identical.
        assert engine.execute(predicate).record_ids == before_ids

    def test_rebalance_detaches_stale_shard_managers(
        self, managed_sharded_setup
    ):
        from repro.sharding import MergeShards, RebalancePlan

        engine, managers = managed_sharded_setup
        assert "hm" in engine._shard_managers
        report = engine.rebalance_attribute(
            "hm", RebalancePlan([MergeShards((0, 1))])
        )
        assert report is not None
        assert "hm" not in engine._shard_managers
        assert "hm" not in engine._links
        # Drift on the merged endpoint must not try to repair via managers
        # built for the old layout (they hold dead shard selectors).
        monitor = engine.feedback
        events = [
            monitor.observe("hm", estimated=1.0, actual=50_000.0)
            for _ in range(monitor.min_observations + 1)
        ]
        fired = [event for event in events if event is not None]
        assert fired and fired[0].revalidation is None

    def test_rebalance_requires_estimator_factory(self, sharded_engine):
        from repro.sharding import RebalancePlan, SplitShard

        engine = sharded_engine
        engine._estimator_factories.pop("hm")
        with pytest.raises(RuntimeError, match="set_estimator_factory"):
            engine.rebalance_attribute("hm", RebalancePlan([SplitShard(0)]))
        engine.set_estimator_factory("hm", sampling_factory("hamming", sample_ratio=0.3))
        report = engine.rebalance_attribute("hm", RebalancePlan([SplitShard(0)]))
        assert report is not None

    def test_rebalance_rejects_unsharded_attribute(self, binary_dataset):
        from repro.baselines import UniformSamplingEstimator

        engine = SimilarityQueryEngine()
        engine.register_attribute(
            "flat",
            binary_dataset.records,
            "hamming",
            UniformSamplingEstimator(
                binary_dataset.records, "hamming", sample_ratio=0.3, seed=0
            ),
            theta_max=binary_dataset.theta_max,
        )
        with pytest.raises(ValueError, match="not sharded"):
            engine.rebalance_attribute("flat")
        with pytest.raises(ValueError, match="not sharded"):
            engine.set_estimator_factory("flat", sampling_factory("hamming"))

    def test_updates_keep_flowing_after_rebalance(
        self, sharded_engine, binary_dataset
    ):
        from repro.sharding import RebalancePlan, SplitShard

        engine = sharded_engine
        engine.rebalance_attribute("hm", RebalancePlan([SplitShard(1, parts=2)]))
        rng = np.random.default_rng(21)
        inserted = rng.integers(0, 2, size=(6, 32), dtype=np.uint8)
        report = engine.apply_update("hm", UpdateOperation("insert", inserted))
        assert isinstance(report, ShardedUpdateReport)
        binding = engine.catalog.get("hm")
        assert len(binding.records) == len(binary_dataset.records) + 6
        record = inserted[0]
        reference = LinearScanSelector(
            np.asarray(binding.records), get_distance("hamming")
        )
        result = engine.execute(SimilarityPredicate("hm", record, 5.0))
        assert result.record_ids == reference.query(record, 5.0)

"""Tests for the sharding layer: partitioners, fan-out selection, serving.

The load-bearing guarantees:

* sharded exact selection is bit-identical to the unsharded selector for any
  partitioning, any shard count, and all four distances;
* the merged serving endpoint's curve equals the elementwise sum of the
  per-shard cached curves and stays monotone (the paper's monotonicity
  composes under partitioning);
* a global update routes into per-shard local operations whose application
  matches applying the update globally — and only the touched shards do work.
"""

import numpy as np
import pytest

from repro.baselines import UniformSamplingEstimator
from repro.core.interface import CardinalityEstimator
from repro.datasets.updates import UpdateOperation, apply_operation, generate_update_stream
from repro.distances import get_distance
from repro.selection import LinearScanSelector, default_selector
from repro.serving import EstimationService
from repro.sharding import (
    HashPartitioner,
    RoundRobinPartitioner,
    ShardAssignment,
    ShardedEstimatorGroup,
    ShardedSelector,
    get_partitioner,
)


class ExactCountEstimator(CardinalityEstimator):
    """Exact per-shard oracle: merged serving answers equal unsharded counts."""

    name = "ExactCount"
    monotonic = True

    def __init__(self, records, distance_name):
        self._selector = LinearScanSelector(records, get_distance(distance_name))

    def estimate_batch(self, records, thetas):
        return np.asarray(
            [
                float(self._selector.cardinality(record, float(theta)))
                for record, theta in zip(records, thetas)
            ]
        )

    def estimate_curve_many(self, records, thetas=None):
        thetas = self._resolve_curve_thetas(thetas)
        return np.stack(
            [
                self._selector.cardinality_curve(record, thetas).astype(np.float64)
                for record in records
            ]
        )


def sharded_for(dataset, num_shards, partitioner="hash", parallel=True):
    return ShardedSelector(
        dataset.records,
        lambda shard_records: default_selector(dataset.distance_name, shard_records),
        num_shards=num_shards,
        partitioner=partitioner,
        parallel=parallel,
    )


# --------------------------------------------------------------------------- #
# Partitioners and assignments
# --------------------------------------------------------------------------- #
class TestPartitioner:
    def test_hash_is_content_stable(self, binary_dataset):
        partitioner = HashPartitioner(4)
        first = partitioner.assign(binary_dataset.records[:20])
        again = partitioner.assign([np.array(r) for r in binary_dataset.records[:20]])
        assert np.array_equal(first, again)  # copies land on the same shard

    def test_round_robin_is_balanced(self):
        partitioner = RoundRobinPartitioner(4)
        assignment = partitioner.partition(list(range(103)))
        sizes = assignment.shard_sizes()
        assert sum(sizes) == 103
        assert max(sizes) - min(sizes) <= 1

    def test_assignment_views_are_inverse(self, binary_dataset):
        assignment = HashPartitioner(3).partition(binary_dataset.records)
        for shard, ids in enumerate(assignment.global_ids):
            assert np.array_equal(assignment.shard_of[ids], np.full(len(ids), shard))
            assert np.array_equal(
                assignment.local_of[ids], np.arange(len(ids))
            )
            assert np.array_equal(assignment.to_global(shard, np.arange(len(ids))), ids)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            RoundRobinPartitioner(0)
        with pytest.raises(KeyError):
            get_partitioner("nope", 2)
        with pytest.raises(ValueError):
            ShardAssignment.from_shard_of(np.asarray([0, 5]), num_shards=2)

    def test_conflicting_num_shards_and_partitioner_rejected(self, binary_dataset):
        """num_shards and an explicit partitioner instance must agree — a
        silent preference would hand back a different shard count than the
        caller asked for (regression)."""
        with pytest.raises(ValueError):
            ShardedSelector(
                binary_dataset.records,
                lambda shard_records: default_selector("hamming", shard_records),
                num_shards=8,
                partitioner=HashPartitioner(4),
            )
        # Consistent and partitioner-only configurations both work.
        consistent = ShardedSelector(
            binary_dataset.records,
            lambda shard_records: default_selector("hamming", shard_records),
            num_shards=4,
            partitioner=HashPartitioner(4),
        )
        assert consistent.num_shards == 4
        inferred = ShardedSelector(
            binary_dataset.records,
            lambda shard_records: default_selector("hamming", shard_records),
            partitioner=HashPartitioner(3),
        )
        assert inferred.num_shards == 3


# --------------------------------------------------------------------------- #
# Exactness: fan-out + merge is bit-identical to the unsharded selector
# --------------------------------------------------------------------------- #
class TestShardedSelectorExact:
    @pytest.fixture(
        params=["binary_dataset", "string_dataset", "set_dataset", "vector_dataset"]
    )
    def dataset(self, request):
        return request.getfixturevalue(request.param)

    def thetas(self, dataset):
        if get_distance(dataset.distance_name).integer_valued:
            top = int(dataset.theta_max)
            return [1.0, float(max(1, top // 2)), float(top)]
        return [dataset.theta_max * 0.3, dataset.theta_max * 0.7, dataset.theta_max]

    @pytest.mark.parametrize("partitioner", ["hash", "round_robin"])
    @pytest.mark.parametrize("num_shards", [1, 3, 4])
    def test_query_bit_identical(self, dataset, partitioner, num_shards):
        reference = LinearScanSelector(
            dataset.records, get_distance(dataset.distance_name)
        )
        sharded = sharded_for(dataset, num_shards, partitioner)
        assert sum(sharded.shard_sizes()) == len(dataset.records)
        rng = np.random.default_rng(3)
        for record_id in rng.choice(len(dataset.records), size=5, replace=False):
            record = dataset.records[int(record_id)]
            for theta in self.thetas(dataset):
                assert sharded.query(record, theta) == reference.query(record, theta)
                assert sharded.cardinality(record, theta) == reference.cardinality(
                    record, theta
                )

    def test_cardinality_curve_matches_and_is_monotone(self, dataset):
        reference = LinearScanSelector(
            dataset.records, get_distance(dataset.distance_name)
        )
        sharded = sharded_for(dataset, 4)
        grid = np.linspace(0.0, dataset.theta_max, 7)
        record = dataset.records[5]
        curve = sharded.cardinality_curve(record, grid)
        assert np.array_equal(curve, reference.cardinality_curve(record, grid))
        assert np.all(np.diff(curve) >= 0)

    def test_query_many_equals_per_query(self, dataset):
        sharded = sharded_for(dataset, 3)
        rng = np.random.default_rng(8)
        records = [
            dataset.records[int(i)]
            for i in rng.choice(len(dataset.records), size=6, replace=False)
        ]
        thetas = [self.thetas(dataset)[1]] * len(records)
        batched = sharded.query_many(records, thetas)
        singles = [sharded.query(r, t) for r, t in zip(records, thetas)]
        assert batched == singles

    def test_query_with_counts_sums(self, binary_dataset):
        sharded = sharded_for(binary_dataset, 4)
        record = binary_dataset.records[0]
        matches, counts = sharded.query_with_counts(record, 6.0)
        assert len(counts) == 4
        assert sum(counts) == len(matches)

    def test_sequential_matches_parallel(self, vector_dataset):
        parallel = sharded_for(vector_dataset, 4, parallel=True)
        sequential = sharded_for(vector_dataset, 4, parallel=False)
        record = vector_dataset.records[7]
        assert parallel.query(record, 0.5) == sequential.query(record, 0.5)

    def test_rebuild_preserves_configuration(self, binary_dataset):
        sharded = sharded_for(binary_dataset, 3, partitioner="round_robin")
        rebuilt = sharded.rebuild(binary_dataset.records[:100])
        assert isinstance(rebuilt, ShardedSelector)
        assert rebuilt.num_shards == 3
        assert len(rebuilt) == 100
        reference = LinearScanSelector(
            binary_dataset.records[:100], get_distance("hamming")
        )
        record = binary_dataset.records[0]
        assert rebuilt.query(record, 5.0) == reference.query(record, 5.0)

    def test_mismatched_query_many_lengths(self, binary_dataset):
        sharded = sharded_for(binary_dataset, 2)
        with pytest.raises(ValueError):
            sharded.query_many([binary_dataset.records[0]], [1.0, 2.0])


# --------------------------------------------------------------------------- #
# Update routing: per-shard local operations == the global operation
# --------------------------------------------------------------------------- #
class TestUpdateRouting:
    @pytest.mark.parametrize("partitioner", ["hash", "round_robin"])
    def test_routed_stream_tracks_global_apply(self, binary_dataset, partitioner):
        sharded = sharded_for(binary_dataset, 3, partitioner)
        records = list(binary_dataset.records)
        operations = generate_update_stream(
            binary_dataset, num_operations=8, records_per_operation=6, seed=2
        )
        for operation in operations:
            sharded.apply_operation(operation)
            records = apply_operation(records, operation)
            assert len(sharded) == len(records)
            reference = LinearScanSelector(records, get_distance("hamming"))
            record = records[0]
            assert sharded.query(record, 6.0) == reference.query(record, 6.0)
        assert all(
            np.array_equal(a, b) for a, b in zip(sharded.dataset, records)
        )

    def test_untouched_shards_keep_their_index(self, binary_dataset):
        sharded = sharded_for(binary_dataset, 4, partitioner="round_robin")
        before = sharded.shards
        versions = [shard.mutation_count for shard in before]
        # Round-robin sends one appended record to shard len(dataset) % 4.
        touched = len(sharded) % 4
        routing = sharded.route_operation(
            UpdateOperation("insert", [binary_dataset.records[0]])
        )
        assert routing.touched_shards == [touched]
        sharded.apply_routed(routing)
        # Every shard object survives in place (O(Δ) deltas, no rebuilds);
        # only the touched shard absorbed a mutation.
        for shard_id in range(4):
            assert sharded.shard(shard_id) is before[shard_id]
            if shard_id == touched:
                assert sharded.shard(shard_id).mutation_count == versions[shard_id] + 1
            else:
                assert sharded.shard(shard_id).mutation_count == versions[shard_id]

    def test_delete_routing_skips_out_of_range(self, binary_dataset):
        sharded = sharded_for(binary_dataset, 2)
        size = len(sharded)
        routing = sharded.route_operation(UpdateOperation("delete", [0, size + 50]))
        assert sum(len(op.records) for op in routing.local_operations.values()) == 1
        sharded.apply_routed(routing)
        assert len(sharded) == size - 1

    def test_adopted_shard_size_is_validated(self, binary_dataset):
        sharded = sharded_for(binary_dataset, 2)
        routing = sharded.route_operation(UpdateOperation("delete", [0, 1]))
        wrong = default_selector("hamming", binary_dataset.records)  # stale size
        shard_id = routing.touched_shards[0]
        with pytest.raises(ValueError):
            sharded.apply_routed(routing, {shard_id: wrong})


# --------------------------------------------------------------------------- #
# Sharded serving: merged endpoint = sum of per-shard cached curves
# --------------------------------------------------------------------------- #
class TestShardedEstimatorGroup:
    @pytest.fixture
    def setup(self, binary_dataset):
        sharded = sharded_for(binary_dataset, 3)
        service = EstimationService()
        estimators = [
            ExactCountEstimator(list(shard.dataset), "hamming")
            for shard in sharded.shards
        ]
        group = ShardedEstimatorGroup(
            "hm",
            service,
            estimators,
            curve_thetas=np.arange(int(binary_dataset.theta_max) + 1, dtype=np.float64),
            distance_name="hamming",
        )
        return sharded, service, group

    def test_endpoints_registered(self, setup):
        _, service, group = setup
        assert group.shard_endpoints == ["hm#shard0", "hm#shard1", "hm#shard2"]
        for endpoint in [*group.shard_endpoints, "hm"]:
            assert endpoint in service.registry

    def test_merged_equals_shard_sum_and_unsharded_exact(self, setup, binary_dataset):
        _, _, group = setup
        rng = np.random.default_rng(4)
        records = [
            binary_dataset.records[int(i)]
            for i in rng.choice(len(binary_dataset.records), size=8, replace=False)
        ]
        thetas = [float(rng.integers(1, int(binary_dataset.theta_max))) for _ in records]
        merged = group.estimate_many(records, thetas)
        assert merged == pytest.approx(group.shard_estimates(records, thetas).sum(axis=0))
        # Exact per-shard oracles: the sum IS the unsharded exact count.
        reference = LinearScanSelector(binary_dataset.records, get_distance("hamming"))
        assert merged == pytest.approx(
            [reference.cardinality(r, t) for r, t in zip(records, thetas)]
        )

    def test_merged_curve_is_monotone_by_construction(self, setup, binary_dataset):
        _, _, group = setup
        for record_id in (0, 11, 42):
            curve = group.estimate_curve(binary_dataset.records[record_id])
            assert np.all(np.diff(curve) >= -1e-9)

    def test_repeat_requests_hit_every_cache(self, setup, binary_dataset):
        _, service, group = setup
        records = [binary_dataset.records[i] for i in range(5)]
        thetas = [4.0] * 5
        group.estimate_many(records, thetas)
        hits_before = service.cache.hits
        group.estimate_many(records, thetas)
        # The repeat is answered fully from the merged endpoint's cache.
        assert service.cache.hits >= hits_before + len(records)
        assert service.telemetry.endpoint("hm").hit_rate > 0.0

    def test_shard_invalidation_also_drops_merged_curves(self, setup, binary_dataset):
        _, service, group = setup
        group.estimate_many([binary_dataset.records[0]], [4.0])
        # One record through the merged endpoint: 3 shard curves + 1 merged.
        assert len(service.cache) == 4
        dropped = group.invalidate_shard(1)
        # The merged curve sums every shard, so it went stale with shard 1 —
        # but the untouched shards keep their cached curves.
        assert dropped == 2
        assert len(service.cache) == 2

    def test_mismatched_canonical_grids_rejected(self, binary_dataset):
        class GriddedEstimator(ExactCountEstimator):
            def __init__(self, records, grid):
                super().__init__(records, "hamming")
                self._grid = np.asarray(grid, dtype=np.float64)

            def curve_thetas(self):
                return self._grid

        service = EstimationService()
        with pytest.raises(ValueError):
            ShardedEstimatorGroup(
                "bad",
                service,
                [
                    GriddedEstimator(binary_dataset.records[:10], np.arange(5.0)),
                    GriddedEstimator(binary_dataset.records[10:20], np.arange(7.0)),
                ],
            )

    def test_gridless_estimators_require_theta_max(self, binary_dataset):
        service = EstimationService()
        estimators = [
            UniformSamplingEstimator(binary_dataset.records[:50], "hamming", seed=0)
        ]
        with pytest.raises(ValueError):
            ShardedEstimatorGroup("us", service, estimators)
        group = ShardedEstimatorGroup(
            "us", service, estimators, theta_max=binary_dataset.theta_max
        )
        assert group.curve_thetas[-1] == pytest.approx(binary_dataset.theta_max)

    def test_unregister_removes_every_endpoint(self, setup):
        _, service, group = setup
        group.unregister()
        assert "hm" not in service.registry
        assert "hm#shard0" not in service.registry

"""Process-backend shard fan-out: bit-identity, fallback, invalidation.

The process path must be an invisible substitution for the thread path:
identical answers for every selector type that can publish a plane, graceful
permanent fallback for one that cannot, plane invalidation when updates
rebuild shards, and snapshot hooks that never persist plane state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.updates import UpdateOperation
from repro.runtime import Runtime, fork_available
from repro.selection.edit_index import QGramEditSelector
from repro.selection.euclidean_index import BallIndexEuclideanSelector
from repro.selection.hamming_index import PackedHammingSelector, PigeonholeHammingSelector
from repro.selection.jaccard_index import PrefixFilterJaccardSelector
from repro.sharding import ShardedSelector
from repro.sharding.selector import SHARD_PROCESS_POOL

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process backend needs the fork start method"
)

RNG = np.random.default_rng(17)


def _pair(records, factory, num_shards=3):
    """The same sharded deployment on both backends, isolated runtimes."""
    thread_side = ShardedSelector(
        records, factory, num_shards=num_shards, runtime=Runtime(), backend="thread"
    )
    process_side = ShardedSelector(
        records, factory, num_shards=num_shards, runtime=Runtime(), backend="process"
    )
    return thread_side, process_side


def _teardown(*selectors):
    for selector in selectors:
        selector.runtime.shutdown()


WORKLOADS = {
    "packed_hamming": (
        [row for row in RNG.integers(0, 2, size=(150, 48)).astype(np.uint8)],
        lambda recs: PackedHammingSelector(recs),
        [8.0, 12.0],
    ),
    "pigeonhole_hamming": (
        [row for row in RNG.integers(0, 2, size=(150, 48)).astype(np.uint8)],
        lambda recs: PigeonholeHammingSelector(recs),
        [8.0, 12.0],
    ),
    "euclidean": (
        [row for row in RNG.normal(size=(120, 8))],
        lambda recs: BallIndexEuclideanSelector(recs),
        [1.5, 2.5],
    ),
    "jaccard": (
        [
            set(map(int, RNG.choice(60, size=int(RNG.integers(3, 12)), replace=False)))
            for _ in range(100)
        ],
        lambda recs: PrefixFilterJaccardSelector(recs),
        [0.4, 0.6],
    ),
    "edit": (
        ["similar", "silimar", "dissimilar", "select", "selects", "cardinal",
         "cardinality", "estimate", "estimator", "query"] * 9,
        lambda recs: QGramEditSelector(recs),
        [1.0, 2.0],
    ),
}


class TestBitIdentity:
    @pytest.mark.parametrize("kind", sorted(WORKLOADS))
    def test_all_ops_match_thread_backend(self, kind):
        records, factory, thresholds = WORKLOADS[kind]
        thread_side, process_side = _pair(records, factory)
        try:
            queries = records[:3]
            for query in queries:
                for threshold in thresholds:
                    assert thread_side.query(query, threshold) == process_side.query(
                        query, threshold
                    )
                    assert thread_side.cardinality(
                        query, threshold
                    ) == process_side.cardinality(query, threshold)
                grid = np.linspace(0.0, max(thresholds) * 2, 6)
                assert np.array_equal(
                    thread_side.cardinality_curve(query, grid),
                    process_side.cardinality_curve(query, grid),
                )
            workload_thresholds = [thresholds[0]] * len(queries)
            assert thread_side.query_many(
                queries, workload_thresholds
            ) == process_side.query_many(queries, workload_thresholds)
            # The fan-out genuinely ran on the process pool.
            stats = process_side.runtime.stats()
            assert stats[SHARD_PROCESS_POOL]["backend"] == "process"
        finally:
            _teardown(thread_side, process_side)

    def test_query_with_counts_matches(self):
        records, factory, thresholds = WORKLOADS["packed_hamming"]
        thread_side, process_side = _pair(records, factory)
        try:
            ids_t, counts_t = thread_side.query_with_counts(records[0], thresholds[1])
            ids_p, counts_p = process_side.query_with_counts(records[0], thresholds[1])
            assert ids_t == ids_p
            assert counts_t == counts_p
        finally:
            _teardown(thread_side, process_side)


class TestFallbacks:
    def test_non_exportable_shards_fall_back_to_threads(self):
        # String tokens: PrefixFilterJaccardSelector.export_arrays is None.
        records = [{f"tok{i}", f"tok{i + 1}", f"tok{i % 7}"} for i in range(60)]
        selector = ShardedSelector(
            records,
            lambda recs: PrefixFilterJaccardSelector(recs),
            num_shards=2,
            runtime=Runtime(),
            backend="process",
        )
        try:
            matches = selector.query(records[0], 0.5)
            assert 0 in matches
            assert selector._plane_disabled  # permanent until shards change
            assert SHARD_PROCESS_POOL not in selector.runtime.stats()
        finally:
            selector.runtime.shutdown()

    def test_parallel_false_stays_serial(self):
        records, factory, thresholds = WORKLOADS["packed_hamming"]
        selector = ShardedSelector(
            records, factory, num_shards=2, runtime=Runtime(),
            backend="process", parallel=False,
        )
        try:
            assert selector.query(records[0], thresholds[0])
            assert selector.runtime.stats() == {}  # never started a pool
        finally:
            selector.runtime.shutdown()

    def test_unknown_backend_rejected(self):
        records, factory, _ = WORKLOADS["packed_hamming"]
        with pytest.raises(ValueError, match="backend"):
            ShardedSelector(records, factory, num_shards=2, backend="fibers")


class TestUpdateInvalidation:
    def test_updates_republish_and_stay_identical(self):
        records, factory, thresholds = WORKLOADS["packed_hamming"]
        thread_side, process_side = _pair(records, factory)
        try:
            query = np.array(records[0], copy=True)
            # Warm the plane, then mutate the dataset both sides.
            assert thread_side.query(query, 12.0) == process_side.query(query, 12.0)
            first_planes = process_side._shard_planes
            assert first_planes is not None
            insert = UpdateOperation(
                "insert", [row for row in RNG.integers(0, 2, size=(20, 48)).astype(np.uint8)]
            )
            thread_side.apply_operation(insert)
            routing = process_side.apply_operation(insert)
            # Only the touched shards' planes are marked dirty; untouched
            # shards keep their published plane (workers keep warm views).
            assert process_side._shard_planes is not None
            assert process_side._dirty_plane_shards == set(routing.touched_shards)
            untouched = [
                shard_id
                for shard_id in range(process_side.num_shards)
                if shard_id not in routing.touched_shards
            ]
            before = dict(enumerate(first_planes))
            assert thread_side.query(query, 12.0) == process_side.query(query, 12.0)
            assert process_side._dirty_plane_shards == set()  # republished lazily
            after = process_side._shard_planes
            assert after is not None
            for shard_id in untouched:
                assert after[shard_id][0] is before[shard_id][0]  # same handle
            for shard_id in routing.touched_shards:
                assert after[shard_id][0] is not before[shard_id][0]
            delete = UpdateOperation("delete", [3, 11, 40])
            thread_side.apply_operation(delete)
            process_side.apply_operation(delete)
            assert thread_side.query(query, 12.0) == process_side.query(query, 12.0)
        finally:
            _teardown(thread_side, process_side)


class TestSnapshotHooks:
    def test_plane_state_never_serializes(self, tmp_path):
        from repro.store import load_component, save_component

        records, factory, _ = WORKLOADS["packed_hamming"]
        selector = ShardedSelector(
            records, factory, num_shards=2, runtime=Runtime(), backend="process"
        )
        try:
            query = records[0]
            expected = selector.query(query, 10.0)
            assert selector._shard_planes is not None
            save_component(selector, tmp_path / "snap")
            restored = load_component(tmp_path / "snap")
            assert restored.backend == "process"
            assert restored._plane is None
            assert restored._shard_planes is None
            assert not restored._plane_disabled
            # Restored selector republishes lazily and answers identically.
            assert restored.query(query, 10.0) == expected
            restored.runtime.shutdown()
        finally:
            selector.runtime.shutdown()

"""Live resharding: plan resolution, journaled execution, engine swap."""

import numpy as np
import pytest

from repro.datasets.updates import UpdateOperation
from repro.distances import get_distance
from repro.obs.metrics import metric_key
from repro.obs.timeseries import TimeSeriesStore
from repro.selection import LinearScanSelector, PackedHammingSelector
from repro.sharding import (
    HashPartitioner,
    MergeShards,
    MigrateRange,
    RebalancePlan,
    Rebalancer,
    ShardAssignment,
    ShardedSelector,
    SplitShard,
    suggest_plan,
)


def make_records(count, width=64, seed=11):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(count, width), dtype=np.uint8)


def make_sharded(records, num_shards=4, **kwargs):
    return ShardedSelector(
        records,
        lambda recs: PackedHammingSelector(np.asarray(recs, dtype=np.uint8)),
        num_shards=num_shards,
        **kwargs,
    )


def reference_ids(selector, record, threshold):
    scan = LinearScanSelector(
        np.asarray(selector.dataset), distance=get_distance("hamming")
    )
    return sorted(scan.query(record, threshold))


class TestPlanResolution:
    def test_split_appends_new_shards(self):
        assignment = ShardAssignment.from_shard_of(
            np.array([0, 0, 0, 0, 1, 1]), num_shards=2
        )
        resolved = RebalancePlan([SplitShard(0, parts=2)]).resolve(assignment)
        assert resolved.num_shards == 3
        # Chunk 0 stays on shard 0; chunk 1 becomes the appended shard 2.
        assert list(resolved.shard_of) == [0, 0, 2, 2, 1, 1]
        assert resolved.sources == {0: None, 1: 1, 2: None}
        assert resolved.build_targets == [0, 2]
        assert resolved.aliased == {1: 1}

    def test_merge_frees_the_higher_slot_and_renumbers(self):
        assignment = ShardAssignment.from_shard_of(
            np.array([0, 1, 1, 2, 2, 2]), num_shards=3
        )
        resolved = RebalancePlan([MergeShards((0, 1))]).resolve(assignment)
        assert resolved.num_shards == 2
        # Merge lands on min(0, 1) = 0; old shard 2 renumbers down to 1.
        assert list(resolved.shard_of) == [0, 0, 0, 1, 1, 1]
        assert resolved.sources == {0: None, 1: 2}

    def test_migrate_moves_the_range(self):
        assignment = ShardAssignment.from_shard_of(
            np.array([0, 0, 1, 1, 2, 2]), num_shards=3
        )
        resolved = RebalancePlan([MigrateRange(0, 2, to_shard=2)]).resolve(assignment)
        assert list(resolved.shard_of) == [2, 2, 1, 1, 2, 2]
        # Source 0 drained and target 2 grew: both must rebuild; 1 aliases.
        assert resolved.sources == {0: None, 1: 1, 2: None}

    def test_migrate_of_records_already_on_target_is_a_noop(self):
        assignment = ShardAssignment.from_shard_of(
            np.array([2, 2, 1, 1, 2, 2]), num_shards=3
        )
        resolved = RebalancePlan([MigrateRange(0, 2, to_shard=2)]).resolve(assignment)
        assert resolved.sources == {0: 0, 1: 1, 2: 2}
        assert resolved.build_targets == []

    def test_shard_referenced_twice_is_rejected(self):
        assignment = ShardAssignment.from_shard_of(
            np.array([0, 0, 1, 1, 2, 2]), num_shards=3
        )
        plan = RebalancePlan([SplitShard(0), MergeShards((0, 1))])
        with pytest.raises(ValueError, match="at most once"):
            plan.resolve(assignment)

    def test_overlapping_migrate_ranges_are_rejected(self):
        assignment = ShardAssignment.from_shard_of(
            np.array([0, 0, 1, 1, 2, 2]), num_shards=3
        )
        plan = RebalancePlan(
            [MigrateRange(0, 3, to_shard=2), MigrateRange(2, 4, to_shard=1)]
        )
        with pytest.raises(ValueError, match="overlap"):
            plan.resolve(assignment)

    def test_migrate_draining_a_split_shard_is_rejected(self):
        assignment = ShardAssignment.from_shard_of(
            np.array([0, 0, 0, 0, 1, 1]), num_shards=2
        )
        plan = RebalancePlan([SplitShard(0), MigrateRange(0, 2, to_shard=1)])
        with pytest.raises(ValueError, match="drains"):
            plan.resolve(assignment)

    def test_action_constructor_validation(self):
        with pytest.raises(ValueError):
            SplitShard(0, parts=1)
        with pytest.raises(ValueError):
            MergeShards((3,))
        with pytest.raises(ValueError):
            MergeShards((1, 1))
        with pytest.raises(ValueError):
            MigrateRange(5, 5, to_shard=0)

    def test_out_of_range_shard_and_range_are_rejected(self):
        assignment = ShardAssignment.from_shard_of(np.array([0, 0, 1, 1]), num_shards=2)
        with pytest.raises(ValueError, match="has 2 shards"):
            RebalancePlan([SplitShard(5)]).resolve(assignment)
        with pytest.raises(ValueError, match="exceeds"):
            RebalancePlan([MigrateRange(0, 99, to_shard=1)]).resolve(assignment)


class TestExecution:
    @pytest.mark.parametrize(
        "actions",
        [
            [SplitShard(0, parts=2)],
            [MergeShards((1, 2))],
            [MigrateRange(10, 60, to_shard=3)],
            [SplitShard(1, parts=3), MergeShards((2, 3))],
        ],
        ids=["split", "merge", "migrate", "split+merge"],
    )
    def test_rebalance_is_bit_identical(self, actions):
        records = make_records(260)
        sharded = make_sharded(records, num_shards=4)
        queries = [records[i] for i in (0, 17, 130)]
        before = [sorted(sharded.query(q, 14)) for q in queries]

        report = Rebalancer().execute(sharded, RebalancePlan(actions))

        assert len(sharded) == len(records)
        for query, expected in zip(queries, before):
            assert sorted(sharded.query(query, 14)) == expected
            assert sorted(sharded.query(query, 14)) == reference_ids(
                sharded, query, 14
            )
        assert report.moved_records == sum(
            len(sharded._assignment.global_ids[t]) for t in report.built_targets
        )

    def test_untouched_shards_are_aliased_not_rebuilt(self):
        records = make_records(200)
        sharded = make_sharded(records, num_shards=4)
        untouched = [s for s in range(4) if s not in (1, 2)]
        before = {s: sharded.shard(s) for s in untouched}

        report = Rebalancer().execute(sharded, RebalancePlan([MergeShards((1, 2))]))

        assert report.aliased_targets  # at least shards 0 and 3
        for old_id in untouched:
            new_id = old_id if old_id < 1 else old_id - 1 if old_id > 2 else old_id
            assert sharded.shard(new_id) is before[old_id]

    def test_mid_rebalance_updates_are_journaled_and_replayed(self):
        records = make_records(180)
        sharded = make_sharded(records, num_shards=3)

        class UpdatingRebalancer(Rebalancer):
            """Injects updates after staging starts, before the commit."""

            def _build_targets(self, selector, base, assignment, resolved, scratch):
                built = super()._build_targets(
                    selector, base, assignment, resolved, scratch
                )
                extra = make_records(7, seed=99)
                selector.apply_operation(UpdateOperation("insert", extra))
                selector.apply_operation(
                    UpdateOperation("delete", np.array([4, 40, 170]))
                )
                return built

        report = UpdatingRebalancer().execute(
            sharded, RebalancePlan([SplitShard(0, parts=2)])
        )
        assert report.journal_replayed == 2
        assert len(sharded) == 180 + 7 - 3
        assert sharded.stats()["journal_depth"] == 0
        query = records[9]
        assert sorted(sharded.query(query, 14)) == reference_ids(sharded, query, 14)

    def test_mutated_alias_candidate_is_rebuilt_from_base_plus_journal(self):
        records = make_records(160)
        sharded = make_sharded(records, num_shards=4)
        positions = np.flatnonzero(np.asarray(sharded._assignment.shard_of) == 3)[:2]

        class MutatingRebalancer(Rebalancer):
            """Deletes rows on an otherwise-aliased shard mid-rebalance."""

            def _build_targets(self, selector, base, assignment, resolved, scratch):
                built = super()._build_targets(
                    selector, base, assignment, resolved, scratch
                )
                selector.apply_operation(UpdateOperation("delete", positions))
                return built

        report = MutatingRebalancer().execute(
            sharded, RebalancePlan([MergeShards((0, 1))])
        )
        # Shard 3 was an alias candidate but mutated mid-flight: the commit
        # must fall back to rebuilding it from base records, then journal
        # replay re-applies the delete — never silently losing either side.
        assert report.journal_replayed == 1
        assert len(sharded) == 158
        query = records[25]
        assert sorted(sharded.query(query, 14)) == reference_ids(sharded, query, 14)

    def test_failure_aborts_and_the_old_layout_keeps_serving(self):
        records = make_records(120)
        sharded = make_sharded(records, num_shards=3)
        query = records[3]
        expected = sorted(sharded.query(query, 14))
        boom = RuntimeError("factory exploded")
        original_factory = sharded.selector_factory

        def exploding_factory(recs):
            raise boom

        sharded.selector_factory = exploding_factory
        try:
            with pytest.raises(RuntimeError, match="factory exploded"):
                Rebalancer().execute(sharded, RebalancePlan([SplitShard(0)]))
        finally:
            sharded.selector_factory = original_factory
        assert sharded.stats()["rebalance_in_flight"] is False
        assert sorted(sharded.query(query, 14)) == expected
        # A fresh rebalance is possible after the abort.
        Rebalancer().execute(sharded, RebalancePlan([SplitShard(0)]))
        assert sorted(sharded.query(query, 14)) == expected

    def test_concurrent_rebalance_is_rejected(self):
        sharded = make_sharded(make_records(60), num_shards=2)
        sharded.begin_rebalance()
        with pytest.raises(RuntimeError, match="rebalance"):
            Rebalancer().execute(sharded, RebalancePlan([SplitShard(0)]))
        assert sharded.abort_rebalance() == 0

    def test_shard_count_change_derives_a_partitioner(self):
        sharded = make_sharded(make_records(90), num_shards=3)
        Rebalancer().execute(sharded, RebalancePlan([SplitShard(0, parts=2)]))
        assert sharded.num_shards == 4
        assert sharded.partitioner.num_shards == 4
        assert isinstance(sharded.partitioner, HashPartitioner)
        # Routing against the new width works (inserts land in range).
        sharded.apply_operation(UpdateOperation("insert", make_records(5, seed=1)))
        assert len(sharded) == 95

    def test_background_start_returns_a_handle(self):
        records = make_records(140)
        sharded = make_sharded(records, num_shards=4)
        query = records[2]
        expected = sorted(sharded.query(query, 14))
        handle = Rebalancer().start(sharded, RebalancePlan([MergeShards((1, 3))]))
        report = handle.result(timeout=30)
        assert report.num_shards_after == 3
        assert sorted(sharded.query(query, 14)) == expected

    def test_process_backend_rebalance_stays_identical(self):
        records = make_records(150)
        sharded = make_sharded(records, num_shards=3, backend="process")
        query = records[7]
        expected = sorted(sharded.query(query, 14))
        Rebalancer().execute(sharded, RebalancePlan([SplitShard(1, parts=2)]))
        assert sorted(sharded.query(query, 14)) == expected

    def test_emptied_shard_still_queries_merges_and_snapshots(self, tmp_path):
        from repro.store import load_component, save_component

        records = make_records(80)
        sharded = make_sharded(records, num_shards=4)
        victim = 2
        positions = np.flatnonzero(np.asarray(sharded._assignment.shard_of) == victim)
        sharded.apply_operation(UpdateOperation("delete", positions))
        assert len(sharded.shard(victim)) == 0
        query = records[1]
        assert sorted(sharded.query(query, 14)) == reference_ids(sharded, query, 14)

        save_component(sharded, tmp_path / "sharded")
        restored = load_component(tmp_path / "sharded")
        assert sorted(restored.query(query, 14)) == sorted(sharded.query(query, 14))

        # A rebalance can then merge the empty shard away entirely.
        Rebalancer().execute(sharded, RebalancePlan([MergeShards((victim, 3))]))
        assert sharded.num_shards == 3
        assert sorted(sharded.query(query, 14)) == reference_ids(sharded, query, 14)


class TestSuggestPlan:
    def test_balanced_layout_suggests_nothing(self):
        assignment = ShardAssignment.from_shard_of(
            np.array([0, 0, 1, 1, 2, 2]), num_shards=3
        )
        assert suggest_plan(assignment) is None

    def test_oversized_shard_is_split(self):
        shard_of = np.array([0] * 30 + [1] * 5 + [2] * 5)
        plan = suggest_plan(ShardAssignment.from_shard_of(shard_of, num_shards=3))
        assert plan is not None
        assert any(
            isinstance(a, SplitShard) and a.shard_id == 0 for a in plan.actions
        )

    def test_cold_shards_are_merged(self):
        shard_of = np.array([0] * 40 + [1] * 40 + [2] * 1 + [3] * 1)
        plan = suggest_plan(ShardAssignment.from_shard_of(shard_of, num_shards=4))
        assert plan is not None
        merges = [a for a in plan.actions if isinstance(a, MergeShards)]
        assert merges and set(merges[0].shard_ids) == {2, 3}

    def test_latency_hot_shard_is_split_from_scraped_series(self):
        from repro.obs.metrics import MetricsRegistry

        shard_of = np.array([0] * 10 + [1] * 10 + [2] * 10)
        assignment = ShardAssignment.from_shard_of(shard_of, num_shards=3)
        registry = MetricsRegistry()
        store = TimeSeriesStore()
        # Two scrapes bracketing the observations: windowed quantiles are
        # computed from cumulative-histogram growth, exactly like the hub's.
        for shard in range(3):
            registry.histogram(
                "repro_shard_task_seconds", {"op": "query", "shard": shard}
            )
        store.sample_registry(registry, 100.0)
        for shard, latency in ((0, 0.001), (1, 0.5), (2, 0.001)):
            histogram = registry.histogram(
                "repro_shard_task_seconds", {"op": "query", "shard": shard}
            )
            for _ in range(8):
                histogram.observe(latency)
        store.sample_registry(registry, 105.0)
        assert (
            store.windowed_quantile(
                metric_key(
                    "repro_shard_task_seconds", {"op": "query", "shard": 1}
                ),
                0.99,
                60.0,
                106.0,
            )
            is not None
        )
        plan = suggest_plan(assignment, store=store, now=106.0, window=60.0)
        assert plan is not None
        assert any(
            isinstance(a, SplitShard) and a.shard_id == 1 for a in plan.actions
        )

"""Unit tests for the baseline estimators (DB-*, TL-*, DL-*)."""

import numpy as np
import pytest

from repro.baselines import (
    COMPARISON_NAMES,
    ESTIMATOR_NAMES,
    DeepLatticeNetworkEstimator,
    DNNEstimator,
    ExactEstimator,
    GradientBoostedTreesEstimator,
    HistogramHammingEstimator,
    KernelDensityEstimator,
    LSHSamplingEuclideanEstimator,
    MeanEstimator,
    MixtureOfExpertsEstimator,
    MonotoneCalibrator,
    PerThresholdDNNEstimator,
    QGramInvertedIndexEstimator,
    QueryFeaturizer,
    RecursiveModelIndexEstimator,
    RegressionTree,
    SketchJaccardEstimator,
    UniformSamplingEstimator,
    build_estimator,
    build_estimators,
)
from repro.metrics import mean_q_error
from repro.selection import default_selector
from repro.nn import Tensor


class TestQueryFeaturizer:
    def test_raw_vectors_for_hamming(self, binary_dataset):
        featurizer = QueryFeaturizer.for_dataset(binary_dataset)
        assert featurizer.dimension == binary_dataset.records.shape[1]

    def test_extractor_for_sets(self, set_dataset):
        featurizer = QueryFeaturizer.for_dataset(set_dataset)
        vector = featurizer.record_vector(set_dataset.records[0])
        assert set(np.unique(vector)) <= {0.0, 1.0}

    def test_features_append_normalized_theta(self, binary_dataset):
        featurizer = QueryFeaturizer.for_dataset(binary_dataset)
        features = featurizer.features(binary_dataset.records[0], binary_dataset.theta_max)
        assert features.shape == (featurizer.input_dimension,)
        assert features[-1] == pytest.approx(1.0)

    def test_matrix_and_targets(self, binary_dataset, binary_workload):
        featurizer = QueryFeaturizer.for_dataset(binary_dataset)
        examples = binary_workload.train[:10]
        assert featurizer.matrix(examples).shape == (10, featurizer.input_dimension)
        assert featurizer.targets(examples).shape == (10,)


class TestSimpleEstimators:
    def test_mean_estimator_monotone_buckets(self, binary_workload, binary_dataset):
        estimator = MeanEstimator(theta_max=binary_dataset.theta_max).fit(binary_workload.train)
        record = binary_dataset.records[0]
        estimates = [estimator.estimate(record, float(t)) for t in range(int(binary_dataset.theta_max) + 1)]
        assert estimates == sorted(estimates)

    def test_mean_estimator_query_independent(self, binary_workload, binary_dataset):
        estimator = MeanEstimator(theta_max=binary_dataset.theta_max).fit(binary_workload.train)
        a = estimator.estimate(binary_dataset.records[0], 4.0)
        b = estimator.estimate(binary_dataset.records[9], 4.0)
        assert a == b

    def test_exact_estimator_matches_labels(self, binary_dataset, binary_workload):
        selector = default_selector("hamming", binary_dataset.records)
        estimator = ExactEstimator(selector)
        for example in binary_workload.test[:10]:
            assert estimator.estimate(example.record, example.theta) == example.cardinality


class TestSampling:
    def test_scales_with_sample_ratio(self, binary_dataset):
        estimator = UniformSamplingEstimator(binary_dataset.records, "hamming", sample_ratio=0.2, seed=0)
        estimate = estimator.estimate(binary_dataset.records[0], binary_dataset.theta_max)
        assert estimate > 0.0

    def test_full_sample_is_exact(self, binary_dataset, binary_workload):
        estimator = UniformSamplingEstimator(binary_dataset.records, "hamming", sample_ratio=1.0, seed=0)
        example = binary_workload.test[0]
        assert estimator.estimate(example.record, example.theta) == pytest.approx(example.cardinality)

    def test_monotone_in_threshold(self, binary_dataset):
        estimator = UniformSamplingEstimator(binary_dataset.records, "hamming", sample_ratio=0.1, seed=0)
        record = binary_dataset.records[1]
        values = [estimator.estimate(record, float(t)) for t in range(0, 12)]
        assert values == sorted(values)

    def test_invalid_ratio(self, binary_dataset):
        with pytest.raises(ValueError):
            UniformSamplingEstimator(binary_dataset.records, "hamming", sample_ratio=0.0)

    def test_size_in_bytes_positive(self, binary_dataset):
        estimator = UniformSamplingEstimator(binary_dataset.records, "hamming", sample_ratio=0.1)
        assert estimator.size_in_bytes() > 0


class TestDBSpecialized:
    def test_histogram_hamming_reasonable(self, binary_dataset, binary_workload):
        estimator = HistogramHammingEstimator(binary_dataset.records, group_size=8)
        example = max(binary_workload.test, key=lambda e: e.cardinality)
        estimate = estimator.estimate(example.record, example.theta)
        assert estimate >= 0.0
        # At the maximum possible threshold the histogram must return ~all records.
        full = estimator.estimate(example.record, binary_dataset.records.shape[1])
        assert full == pytest.approx(len(binary_dataset), rel=1e-6)

    def test_histogram_monotone(self, binary_dataset):
        estimator = HistogramHammingEstimator(binary_dataset.records, group_size=8)
        record = binary_dataset.records[2]
        values = [estimator.estimate(record, float(t)) for t in range(0, 13)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_histogram_empty_dataset(self):
        estimator = HistogramHammingEstimator(np.zeros((0, 16), dtype=np.uint8), group_size=8)
        assert estimator.estimate(np.zeros(16, dtype=np.uint8), 4.0) == 0.0

    def test_qgram_edit_estimator(self, string_dataset, string_workload):
        estimator = QGramInvertedIndexEstimator(string_dataset.records)
        example = string_workload.test[0]
        assert estimator.estimate(example.record, example.theta) >= 0.0

    def test_qgram_edit_monotone(self, string_dataset):
        estimator = QGramInvertedIndexEstimator(string_dataset.records)
        record = string_dataset.records[0]
        values = [estimator.estimate(record, float(t)) for t in range(0, 6)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_sketch_jaccard_estimator(self, set_dataset):
        universe = set_dataset.extra["universe_size"]
        estimator = SketchJaccardEstimator(set_dataset.records, universe_size=universe, seed=0)
        record = set_dataset.records[0]
        assert estimator.estimate(record, 0.0) >= 1.0  # record matches itself
        assert estimator.estimate(record, 1.0) == len(set_dataset)

    def test_lsh_euclidean_estimator(self, vector_dataset, vector_workload):
        estimator = LSHSamplingEuclideanEstimator(vector_dataset.records, seed=0)
        example = max(vector_workload.test, key=lambda e: e.cardinality)
        estimate = estimator.estimate(example.record, example.theta)
        assert estimate > 0.0

    def test_lsh_euclidean_monotone(self, vector_dataset):
        estimator = LSHSamplingEuclideanEstimator(vector_dataset.records, seed=0)
        record = vector_dataset.records[0]
        values = [estimator.estimate(record, t) for t in np.linspace(0.0, 1.5, 10)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))


class TestKDE:
    def test_monotone_in_threshold(self, vector_dataset):
        estimator = KernelDensityEstimator(vector_dataset.records, "euclidean", sample_size=60, seed=0)
        record = vector_dataset.records[0]
        values = [estimator.estimate(record, t) for t in np.linspace(0.0, 1.5, 12)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_estimates_bounded_by_dataset_size(self, vector_dataset):
        estimator = KernelDensityEstimator(vector_dataset.records, "euclidean", sample_size=60, seed=0)
        estimate = estimator.estimate(vector_dataset.records[0], 100.0)
        assert estimate == pytest.approx(len(vector_dataset), rel=1e-6)

    def test_explicit_bandwidth(self, vector_dataset):
        estimator = KernelDensityEstimator(
            vector_dataset.records, "euclidean", sample_size=40, bandwidth=0.05, seed=0
        )
        assert estimator.estimate(vector_dataset.records[0], 0.3) >= 0.0


class TestRegressionTreeAndGBT:
    def test_tree_fits_simple_function(self):
        rng = np.random.default_rng(0)
        features = rng.uniform(size=(200, 2))
        targets = (features[:, 0] > 0.5).astype(float) * 10.0
        tree = RegressionTree(max_depth=2, min_samples_leaf=5).fit(features, targets)
        predictions = tree.predict(features)
        assert np.mean((predictions - targets) ** 2) < 1.0

    def test_tree_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((1, 2)))

    def test_gbt_improves_over_constant(self, binary_dataset, binary_workload, binary_featurizer):
        estimator = GradientBoostedTreesEstimator.xgb_preset(binary_featurizer, seed=0)
        estimator.fit(binary_workload.train, binary_workload.validation)
        actual = [e.cardinality for e in binary_workload.test]
        predictions = estimator.estimate_many(binary_workload.test)
        constant = np.full(len(actual), np.mean([e.cardinality for e in binary_workload.train]))
        assert mean_q_error(actual, predictions) < mean_q_error(actual, constant)

    def test_gbt_requires_training_data(self, binary_featurizer):
        estimator = GradientBoostedTreesEstimator.xgb_preset(binary_featurizer)
        with pytest.raises(ValueError):
            estimator.fit([])

    def test_lgbm_preset_differs(self, binary_featurizer):
        xgb = GradientBoostedTreesEstimator.xgb_preset(binary_featurizer)
        lgbm = GradientBoostedTreesEstimator.lgbm_preset(binary_featurizer)
        assert xgb.name == "TL-XGB" and lgbm.name == "TL-LGBM"
        assert lgbm.max_depth < xgb.max_depth

    def test_size_in_bytes_after_fit(self, binary_workload, binary_featurizer):
        estimator = GradientBoostedTreesEstimator.xgb_preset(binary_featurizer, seed=0)
        estimator.fit(binary_workload.train[:50])
        assert estimator.size_in_bytes() > 0


class TestDeepBaselines:
    @pytest.fixture(scope="class")
    def small_training(self, binary_workload):
        return binary_workload.train[:80], binary_workload.validation[:20]

    def test_dnn_trains_and_estimates(self, binary_featurizer, small_training, binary_workload):
        train, validation = small_training
        estimator = DNNEstimator(binary_featurizer, hidden_sizes=(32, 16), epochs=5, seed=0)
        estimator.fit(train, validation)
        predictions = estimator.estimate_many(binary_workload.test[:10])
        assert predictions.shape == (10,)
        assert np.all(predictions >= 0.0)

    def test_per_threshold_dnn(self, binary_featurizer, small_training, binary_workload):
        train, validation = small_training
        estimator = PerThresholdDNNEstimator(
            binary_featurizer, num_ranges=4, hidden_sizes=(16,), epochs=4, seed=0
        )
        estimator.fit(train, validation)
        example = binary_workload.test[0]
        assert estimator.estimate(example.record, example.theta) >= 0.0
        assert estimator.size_in_bytes() > 0

    def test_rmi_routes_to_experts(self, binary_featurizer, small_training, binary_workload):
        train, validation = small_training
        estimator = RecursiveModelIndexEstimator(
            binary_featurizer, num_experts=3, stage1_hidden=(16,), stage2_hidden=(16,), epochs=5, seed=0
        )
        estimator.fit(train, validation)
        assert any(expert is not None for expert in estimator.experts)
        example = binary_workload.test[0]
        assert estimator.estimate(example.record, example.theta) >= 0.0

    def test_moe_gate_weights_sum_to_one(self, binary_featurizer, small_training):
        train, validation = small_training
        estimator = MixtureOfExpertsEstimator(
            binary_featurizer, num_experts=3, expert_hidden=(16,), epochs=3, seed=0
        )
        estimator.fit(train, validation)
        features = binary_featurizer.matrix(train[:4])
        weights = estimator.model.gate_weights(Tensor(features)).data
        assert np.allclose(weights.sum(axis=1), 1.0)
        assert np.all(weights >= 0.0)

    def test_dln_monotone_in_threshold(self, binary_featurizer, small_training, binary_dataset):
        train, validation = small_training
        estimator = DeepLatticeNetworkEstimator(
            binary_featurizer, num_units=8, hidden_sizes=(16,), epochs=4, seed=0
        )
        estimator.fit(train, validation)
        record = binary_dataset.records[0]
        values = [estimator.estimate(record, float(t)) for t in range(0, 13)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_monotone_calibrator_is_monotone(self):
        calibrator = MonotoneCalibrator(num_segments=6, num_outputs=3, seed=0)
        thresholds = np.linspace(0.0, 1.0, 11)[:, None]
        outputs = calibrator(Tensor(thresholds)).data
        assert np.all(np.diff(outputs, axis=0) >= -1e-12)


class TestFactory:
    def test_all_names_buildable_for_binary(self, binary_dataset):
        for name in ESTIMATOR_NAMES:
            estimator = build_estimator(name, binary_dataset, seed=0, epochs=1)
            assert estimator is not None

    def test_unknown_name_raises(self, binary_dataset):
        with pytest.raises(KeyError):
            build_estimator("DL-Transformer", binary_dataset)

    def test_build_estimators_subset(self, binary_dataset):
        estimators = build_estimators(["DB-US", "Mean"], binary_dataset)
        assert set(estimators) == {"DB-US", "Mean"}

    def test_comparison_names_exclude_oracles(self):
        assert "Exact" not in COMPARISON_NAMES
        assert "Mean" not in COMPARISON_NAMES

    @pytest.mark.parametrize(
        "fixture_name", ["string_dataset", "set_dataset", "vector_dataset"]
    )
    def test_db_se_specializes_per_distance(self, request, fixture_name):
        dataset = request.getfixturevalue(fixture_name)
        estimator = build_estimator("DB-SE", dataset, seed=0)
        assert estimator.estimate(dataset.records[0], dataset.theta_max) >= 0.0

"""Tests for the serving layer: registry, curve cache, micro-batching service.

The load-bearing guarantees:

* cache-hit answers are bit-identical to the cold path;
* batching/caching preserve monotonicity in the threshold;
* dataset updates (via :class:`IncrementalUpdateManager`) invalidate cached
  curves, and post-update answers match direct estimation again.
"""

import numpy as np
import pytest

from repro.baselines import UniformSamplingEstimator
from repro.core import IncrementalUpdateManager
from repro.datasets import generate_update_stream
from repro.selection import default_selector
from repro.serving import (
    CurveCache,
    EstimationService,
    EstimatorRegistry,
    default_record_key,
)


@pytest.fixture
def service(trained_cardnet):
    service = EstimationService(cache_capacity=256, max_batch_size=8)
    service.register("cardnet/hm", trained_cardnet, distance_name="hamming")
    return service


@pytest.fixture
def test_queries(binary_workload):
    examples = binary_workload.test[:30]
    records = [example.record for example in examples]
    thetas = [example.theta for example in examples]
    return records, thetas


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_register_and_lookup(self, trained_cardnet):
        registry = EstimatorRegistry()
        entry = registry.register("a", trained_cardnet)
        assert registry.get("a") is entry
        assert "a" in registry and registry.names() == ["a"]
        assert entry.canonical  # CardNet supplies its own grid

    def test_duplicate_name_rejected(self, trained_cardnet):
        registry = EstimatorRegistry()
        registry.register("a", trained_cardnet)
        with pytest.raises(KeyError):
            registry.register("a", trained_cardnet)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            EstimatorRegistry().get("nope")

    def test_gridless_estimator_requires_theta_max(self, binary_dataset):
        estimator = UniformSamplingEstimator(binary_dataset.records, "hamming", seed=0)
        registry = EstimatorRegistry()
        with pytest.raises(ValueError):
            registry.register("us", estimator)
        entry = registry.register("us", estimator, theta_max=binary_dataset.theta_max)
        assert not entry.canonical
        assert entry.curve_thetas[0] == 0.0
        assert entry.curve_thetas[-1] == pytest.approx(binary_dataset.theta_max)

    def test_unregister(self, trained_cardnet):
        registry = EstimatorRegistry()
        registry.register("a", trained_cardnet)
        registry.unregister("a")
        assert "a" not in registry

    def test_default_record_key_types(self):
        vector = np.asarray([1.0, 0.0, 0.0])
        assert default_record_key(vector) == default_record_key(vector.copy())
        assert default_record_key(vector) != default_record_key(vector[::-1].copy())
        assert default_record_key("abc") != default_record_key("abd")
        assert default_record_key(frozenset({3, 1})) == default_record_key({1, 3})


# --------------------------------------------------------------------------- #
# Curve cache
# --------------------------------------------------------------------------- #
class TestCurveCache:
    def test_lru_eviction(self):
        cache = CurveCache(capacity=2)
        cache.put("e", b"a", np.zeros(3))
        cache.put("e", b"b", np.ones(3))
        cache.get("e", b"a")  # refresh "a"
        cache.put("e", b"c", np.full(3, 2.0))  # evicts "b"
        assert cache.get("e", b"a") is not None
        assert cache.get("e", b"b") is None
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_invalidate_single_estimator(self):
        cache = CurveCache(capacity=8)
        cache.put("x", b"k", np.zeros(2))
        cache.put("y", b"k", np.zeros(2))
        assert cache.invalidate("x") == 1
        assert cache.get("x", b"k") is None
        assert cache.get("y", b"k") is not None

    def test_invalidate_all(self):
        cache = CurveCache(capacity=8)
        cache.put("x", b"k", np.zeros(2))
        cache.put("y", b"k", np.zeros(2))
        assert cache.invalidate() == 2
        assert len(cache) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CurveCache(capacity=0)

    def test_put_freezes_the_cached_array(self):
        cache = CurveCache(capacity=4)
        curve = np.arange(3, dtype=np.float64)
        cache.put("e", b"k", curve)
        handed_out = cache.get("e", b"k")
        with pytest.raises(ValueError):
            handed_out[0] = 99.0
        with pytest.raises(ValueError):
            curve[0] = 99.0  # the caller's reference is the same frozen array
        assert np.array_equal(cache.get("e", b"k"), [0.0, 1.0, 2.0])

    def test_put_of_a_view_cannot_be_poisoned_through_its_base(self):
        """Freezing a view would not freeze its base — put must own the
        memory before freezing or the poisoning hole stays open (regression)."""
        cache = CurveCache(capacity=4)
        base = np.zeros((2, 3), dtype=np.float64)
        cache.put("e", b"k", base[0])
        base[0, 0] = 99.0  # mutate through the base, not the cached handle
        assert np.array_equal(cache.get("e", b"k"), [0.0, 0.0, 0.0])


# --------------------------------------------------------------------------- #
# Service: correctness of the cached curve path
# --------------------------------------------------------------------------- #
class TestServiceCorrectness:
    def test_cache_hits_bit_identical_to_cold_path(self, service, test_queries):
        records, thetas = test_queries
        cold = service.estimate_many("cardnet/hm", records, thetas)
        assert service.cache.misses > 0
        warm = service.estimate_many("cardnet/hm", records, thetas)
        assert np.array_equal(cold, warm)
        assert service.cache.hits >= len(records)

    def test_cold_path_matches_direct_estimation(self, service, trained_cardnet, binary_workload):
        examples = binary_workload.test[:30]
        served = service.estimate_many(
            "cardnet/hm",
            [example.record for example in examples],
            [example.theta for example in examples],
        )
        direct = trained_cardnet.estimate_many(examples)
        assert served == pytest.approx(direct, abs=1e-9)

    def test_single_estimate_equals_batched(self, service, test_queries):
        records, thetas = test_queries
        batched = service.estimate_many("cardnet/hm", records[:5], thetas[:5])
        singles = [
            service.estimate("cardnet/hm", record, theta)
            for record, theta in zip(records[:5], thetas[:5])
        ]
        assert singles == pytest.approx(batched, abs=0.0)

    def test_monotone_through_batching_and_caching(self, service, binary_dataset):
        record = binary_dataset.records[3]
        grid = np.linspace(0.0, binary_dataset.theta_max, 9)
        # Interleave other records so the batch mixes hits, misses, and records.
        other = binary_dataset.records[4]
        records = [record, other] * len(grid)
        thetas = np.repeat(grid, 2)
        answers = service.estimate_many("cardnet/hm", records, thetas)
        curve_of_record = answers[0::2]
        assert np.all(np.diff(curve_of_record) >= -1e-9)
        # And again, now answered fully from cache.
        cached = service.estimate_many("cardnet/hm", [record] * len(grid), grid)
        assert np.all(np.diff(cached) >= -1e-9)
        assert np.array_equal(cached, curve_of_record)

    def test_estimate_curve_is_monotone_and_cached(self, service, binary_dataset):
        record = binary_dataset.records[0]
        curve = service.estimate_curve("cardnet/hm", record)
        assert np.all(np.diff(curve) >= -1e-9)
        again = service.estimate_curve("cardnet/hm", record)
        assert np.array_equal(curve, again)

    def test_quantized_grid_estimator(self, binary_dataset, test_queries):
        """A gridless baseline serves through a uniform θ grid, consistently."""
        estimator = UniformSamplingEstimator(binary_dataset.records, "hamming", seed=0)
        service = EstimationService()
        # Hamming thresholds are integers, so an integer grid is exact.
        service.register(
            "us/hm",
            estimator,
            curve_thetas=np.arange(int(binary_dataset.theta_max) + 1, dtype=np.float64),
        )
        records, thetas = test_queries
        cold = service.estimate_many("us/hm", records, thetas)
        warm = service.estimate_many("us/hm", records, thetas)
        assert np.array_equal(cold, warm)
        direct = estimator.estimate_batch(records, np.floor(np.asarray(thetas)))
        assert cold == pytest.approx(direct, abs=1e-9)

    def test_mismatched_lengths_rejected(self, service, test_queries):
        records, thetas = test_queries
        with pytest.raises(ValueError):
            service.estimate_many("cardnet/hm", records[:3], thetas[:2])

    def test_empty_batch(self, service):
        assert service.estimate_many("cardnet/hm", [], []).shape == (0,)

    def test_empty_batch_on_unknown_endpoint_raises(self, service):
        """Endpoint resolution happens before the empty short-circuit: an
        unknown endpoint must not silently succeed just because there was
        no work to do (regression)."""
        with pytest.raises(KeyError):
            service.estimate_many("nope", [], [])

    def test_empty_batch_records_latency_telemetry(self, trained_cardnet):
        service = EstimationService()
        service.register("m", trained_cardnet)
        service.estimate_many("m", [], [])
        stats = service.telemetry.endpoint("m")
        assert stats.requests == 0  # no records were served...
        assert stats.latency_seconds > 0.0  # ...but the request was timed

    def test_estimate_curve_many_matches_singles(self, service, binary_dataset):
        records = [binary_dataset.records[i] for i in range(4)]
        stacked = service.estimate_curve_many("cardnet/hm", records)
        singles = [service.estimate_curve("cardnet/hm", record) for record in records]
        assert np.array_equal(stacked, np.stack(singles))
        assert stacked.flags.writeable  # callers get a fresh matrix
        empty = service.estimate_curve_many("cardnet/hm", [])
        assert empty.shape == (0, len(service.registry.get("cardnet/hm").curve_thetas))

    def test_cached_curves_cannot_be_poisoned_by_callers(self, service, binary_dataset):
        """A caller mutating a curve it was handed must not corrupt future
        hits: cached arrays are frozen at put time (regression)."""
        record = binary_dataset.records[0]
        service.estimate("cardnet/hm", record, 4.0)
        entry = service.registry.get("cardnet/hm")
        cached = service.cache.get("cardnet/hm", entry.key_for(record))
        before = cached.copy()
        with pytest.raises(ValueError):
            cached[:] = -1.0
        assert np.array_equal(
            service.cache.get("cardnet/hm", entry.key_for(record)), before
        )
        # Served answers keep matching the uncorrupted curve.
        again = service.estimate("cardnet/hm", record, 4.0)
        assert again == pytest.approx(before[entry.curve_index(4.0)])


# --------------------------------------------------------------------------- #
# Service: micro-batching, telemetry, deferred API
# --------------------------------------------------------------------------- #
class TestMicroBatching:
    def test_distinct_records_form_one_micro_batch(self, service, binary_dataset):
        records = [binary_dataset.records[i] for i in range(6)]
        thetas = [4.0] * 6
        service.estimate_many("cardnet/hm", records, thetas)
        stats = service.telemetry.endpoint("cardnet/hm")
        assert stats.batches == 1
        assert stats.max_batch_size == 6 and stats.batched_records == 6

    def test_duplicate_records_deduplicated_in_batch(self, service, binary_dataset):
        record = binary_dataset.records[0]
        service.estimate_many("cardnet/hm", [record] * 10, np.linspace(0, 10, 10))
        stats = service.telemetry.endpoint("cardnet/hm")
        assert stats.batches == 1
        assert stats.max_batch_size == 1  # ten requests, one distinct record
        assert stats.cache_misses == 10 and stats.cache_hits == 0
        # Any later threshold for that record is answered from the cached curve.
        service.estimate_many("cardnet/hm", [record] * 10, np.linspace(0, 10, 10))
        assert service.telemetry.endpoint("cardnet/hm").cache_hits == 10

    def test_submit_flush_roundtrip(self, service, test_queries):
        records, thetas = test_queries
        direct = service.estimate_many("cardnet/hm", records[:4], thetas[:4])
        service.invalidate()
        pending = [
            service.submit("cardnet/hm", record, theta)
            for record, theta in zip(records[:4], thetas[:4])
        ]
        assert service.pending_count == 4
        service.flush()
        assert service.pending_count == 0
        assert [p.result() for p in pending] == pytest.approx(direct, abs=0.0)

    def test_submit_autoflushes_at_max_batch_size(self, trained_cardnet, binary_dataset):
        service = EstimationService(max_batch_size=3)
        service.register("m", trained_cardnet)
        handles = [
            service.submit("m", binary_dataset.records[i], 4.0) for i in range(3)
        ]
        assert all(handle.done for handle in handles)
        assert service.pending_count == 0

    def test_autoflush_leaves_other_endpoints_queued(self, trained_cardnet, binary_dataset):
        """One endpoint filling its batch must not flush another's half-built one."""
        service = EstimationService(max_batch_size=2)
        service.register("a", trained_cardnet)
        service.register("b", trained_cardnet)
        slow = service.submit("b", binary_dataset.records[0], 3.0)
        service.submit("a", binary_dataset.records[1], 3.0)
        service.submit("a", binary_dataset.records[2], 3.0)  # fills a's batch
        assert not slow.done                 # b's micro-batch keeps accumulating
        assert service.pending_count == 1
        service.flush()
        assert slow.result() >= 0.0

    def test_unflushed_result_raises(self, service, binary_dataset):
        pending = service.submit("cardnet/hm", binary_dataset.records[0], 2.0)
        with pytest.raises(RuntimeError):
            pending.result()
        service.flush()
        assert pending.result() >= 0.0

    def test_unregister_drops_cached_curves(self, trained_cardnet, binary_dataset):
        """Re-registering a name must never serve the old estimator's curves."""
        service = EstimationService()
        service.register("m", trained_cardnet)
        service.estimate("m", binary_dataset.records[0], 4.0)
        assert service.stats()["cache"]["size"] == 1
        service.unregister("m")
        assert "m" not in service.registry
        assert service.stats()["cache"]["size"] == 0

    def test_flush_failure_fails_only_failing_endpoint(
        self, trained_cardnet, binary_dataset
    ):
        service = EstimationService()
        service.register("good", trained_cardnet)
        service.register("bad", trained_cardnet)
        ok = service.submit("good", binary_dataset.records[0], 4.0)
        # θ beyond theta_max makes the extractor raise inside estimate_many.
        broken = service.submit("bad", binary_dataset.records[1], 10_000.0)
        with pytest.raises(ValueError):
            service.flush()
        assert ok.done and ok.result() >= 0.0      # healthy endpoint resolved
        assert broken.failed                       # bad request carries its error
        with pytest.raises(ValueError):
            broken.result()
        assert service.pending_count == 0          # queue drained — no poisoning
        # The service keeps working afterwards.
        again = service.submit("good", binary_dataset.records[2], 3.0)
        service.flush()
        assert again.result() >= 0.0

    def test_telemetry_snapshot(self, service, test_queries):
        records, thetas = test_queries
        service.estimate_many("cardnet/hm", records, thetas)
        report = service.stats()
        assert report["registered"] == ["cardnet/hm"]
        endpoint = report["endpoints"]["cardnet/hm"]
        assert endpoint["requests"] == len(records)
        assert 0.0 <= endpoint["hit_rate"] <= 1.0
        assert endpoint["latency_seconds"] > 0.0
        assert report["cache"]["size"] > 0


# --------------------------------------------------------------------------- #
# Cache invalidation on dataset updates
# --------------------------------------------------------------------------- #
class TestUpdateInvalidation:
    @pytest.fixture
    def fresh_setup(self, binary_dataset, binary_workload):
        """A private estimator/service pair — retraining here must not mutate
        the session-shared ``trained_cardnet`` fixture other tests rely on."""
        from repro.core import CardNetEstimator

        estimator = CardNetEstimator.for_dataset(
            binary_dataset, epochs=2, vae_pretrain_epochs=1, seed=9
        )
        estimator.fit(binary_workload.train[:60], binary_workload.validation[:20])
        service = EstimationService(cache_capacity=256)
        service.register("cardnet/hm", estimator, distance_name="hamming")
        return estimator, service

    def _manager(self, estimator, dataset, workload, service, **options):
        return IncrementalUpdateManager(
            estimator,
            default_selector("hamming", dataset.records),
            workload.train[:60],
            workload.validation[:20],
            service=service,
            service_endpoint="cardnet/hm",
            **options,
        )

    def test_service_requires_endpoint_name(self, trained_cardnet, binary_dataset, binary_workload):
        service = EstimationService()
        with pytest.raises(ValueError):
            IncrementalUpdateManager(
                trained_cardnet,
                default_selector("hamming", binary_dataset.records),
                binary_workload.train,
                binary_workload.validation,
                service=service,
            )

    def test_update_invalidates_cached_curves(
        self, fresh_setup, binary_dataset, binary_workload, test_queries
    ):
        estimator, service = fresh_setup
        records, thetas = test_queries
        service.estimate_many("cardnet/hm", records, thetas)
        cached_before = service.stats()["cache"]["size"]
        assert cached_before > 0
        manager = self._manager(estimator, binary_dataset, binary_workload, service)
        operations = generate_update_stream(
            binary_dataset, num_operations=1, records_per_operation=20, seed=3
        )
        manager.process(operations[0])
        # The stale curves were dropped (revalidation then refills the cache).
        assert service.cache.invalidations >= cached_before

    def test_post_update_answers_match_direct_estimation(
        self, fresh_setup, binary_dataset, binary_workload, test_queries
    ):
        estimator, service = fresh_setup
        records, thetas = test_queries
        before = service.estimate_many("cardnet/hm", records, thetas)
        manager = self._manager(
            estimator,
            binary_dataset,
            binary_workload,
            service,
            # Force the retrain path so the model parameters actually move.
            error_tolerance=-1.0,
            max_epochs_per_update=1,
        )
        operations = generate_update_stream(
            binary_dataset, num_operations=1, records_per_operation=30, seed=4
        )
        report = manager.process(operations[0])
        assert report.retrained
        served = service.estimate_many("cardnet/hm", records, thetas)
        direct = estimator.estimate_batch(records, np.asarray(thetas))
        assert served == pytest.approx(direct, abs=1e-9)
        assert not np.array_equal(served, before)  # the retrain actually moved it

    def test_revalidate_without_update(self, fresh_setup, binary_dataset, binary_workload):
        """Drift-triggered revalidation: no dataset change, labels refreshed,
        retrain only when forced or degraded."""
        estimator, service = fresh_setup
        manager = self._manager(
            estimator, binary_dataset, binary_workload, service, max_epochs_per_update=1
        )
        report = manager.revalidate()
        assert not report.retrained  # first call sets the baseline
        assert report.validation_msle_after == report.validation_msle_before
        forced = manager.revalidate(force_retrain=True)
        assert forced.retrained and forced.epochs_run >= 1
        # Post-retrain, served answers match the moved model bit-for-bit.
        records = [e.record for e in binary_workload.validation[:10]]
        thetas = [e.theta for e in binary_workload.validation[:10]]
        served = service.estimate_many("cardnet/hm", records, thetas)
        direct = estimator.estimate_batch(records, np.asarray(thetas))
        assert served == pytest.approx(direct, abs=1e-9)


# --------------------------------------------------------------------------- #
# Feedback-loop telemetry (observations + drift counters)
# --------------------------------------------------------------------------- #
class TestFeedbackTelemetry:
    def test_q_error_convention_matches_metric(self):
        from repro.metrics import mean_q_error
        from repro.serving import q_error

        pairs = [(10.0, 12.0), (3.0, 300.0), (0.0, 0.0), (7.0, 1.0)]
        telemetry_mean = np.mean([q_error(est, act) for est, act in pairs])
        metric_mean = mean_q_error([act for _, act in pairs], [est for est, _ in pairs])
        assert telemetry_mean == pytest.approx(metric_mean)

    def test_record_observation_accumulates(self):
        from repro.serving import ServingTelemetry

        telemetry = ServingTelemetry()
        telemetry.record_observation("e", estimated=10.0, actual=20.0)
        telemetry.record_observation("e", estimated=5.0, actual=5.0)
        stats = telemetry.endpoint("e")
        assert stats.observations == 2
        assert stats.mean_q_error == pytest.approx(1.5)
        assert stats.q_error_max == pytest.approx(2.0)
        assert telemetry.total.observations == 2
        snapshot = stats.snapshot()
        assert snapshot["mean_q_error"] == pytest.approx(1.5)
        assert snapshot["drift_events"] == 0

    def test_record_drift_counts(self):
        from repro.serving import ServingTelemetry

        telemetry = ServingTelemetry()
        telemetry.record_drift("e")
        telemetry.record_drift("e")
        assert telemetry.endpoint("e").drift_events == 2
        assert telemetry.total.drift_events == 2

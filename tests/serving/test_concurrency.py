"""Concurrent-correctness guarantees of the estimation service.

The stress test hammers ONE service from N threads with a mix of every
client-facing operation (``estimate_many`` / ``submit`` / ``flush`` /
``estimate_curve_many``) and then asserts the invariants the runtime layer
promises: no lost or duplicated resolutions, answers identical to a
single-threaded reference, cached curves still frozen, and telemetry counts
that sum exactly to the work submitted.

Also pins the two deferred-path satellites: auto-flush failures are counted
per endpoint instead of vanishing, and ``flush(name=...)`` targets only the
requested endpoint after a partial drain.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

import numpy as np
import pytest

from repro.baselines.db_specialized import HistogramHammingEstimator
from repro.datasets import make_binary_dataset
from repro.serving import EstimationService

THETA_MAX = 12


@pytest.fixture(scope="module")
def stress_dataset():
    return make_binary_dataset(
        num_records=160, dimension=24, num_clusters=4, flip_probability=0.1,
        theta_max=THETA_MAX, seed=5, name="HM-Stress",
    )


def _service(dataset, max_batch_size=16):
    service = EstimationService(max_batch_size=max_batch_size)
    grid = np.arange(THETA_MAX + 1, dtype=np.float64)
    for name, seed in (("a", 0), ("b", 1)):
        # Distinct estimators per endpoint (different group sizes) so a
        # request routed to the wrong endpoint would return a wrong value.
        service.register(
            name,
            HistogramHammingEstimator(dataset.records, group_size=6 + 2 * seed),
            curve_thetas=grid,
            distance_name="hamming",
        )
    return service


class TestStress:
    NUM_THREADS = 8
    ROUNDS = 12
    BATCH = 5

    def test_hammered_service_keeps_every_invariant(self, stress_dataset):
        service = _service(stress_dataset)
        records = stress_dataset.records
        rng = np.random.default_rng(11)
        # Per-thread deterministic workload: (record indices, thetas) rounds.
        workloads = [
            [
                (
                    rng.integers(0, len(records), size=self.BATCH),
                    rng.integers(0, THETA_MAX + 1, size=self.BATCH).astype(float),
                )
                for _ in range(self.ROUNDS)
            ]
            for _ in range(self.NUM_THREADS)
        ]

        # Single-threaded reference answers, from an identical fresh service.
        reference = _service(stress_dataset)
        expected = [
            [
                reference.estimate_many(
                    "a" if (t + r) % 2 == 0 else "b",
                    [records[i] for i in picks],
                    thetas,
                )
                for r, (picks, thetas) in enumerate(rounds)
            ]
            for t, rounds in enumerate(workloads)
        ]

        errors = []
        submitted_handles = []
        handles_lock = threading.Lock()
        barrier = threading.Barrier(self.NUM_THREADS)
        # Exact request accounting per endpoint, to compare with telemetry.
        counts = {"a": 0, "b": 0}
        counts_lock = threading.Lock()

        def hammer(thread_id):
            try:
                barrier.wait()
                local_handles = []
                for round_id, (picks, thetas) in enumerate(workloads[thread_id]):
                    name = "a" if (thread_id + round_id) % 2 == 0 else "b"
                    batch_records = [records[i] for i in picks]
                    answers = service.estimate_many(name, batch_records, thetas)
                    np.testing.assert_array_equal(
                        answers, expected[thread_id][round_id]
                    )
                    with counts_lock:
                        counts[name] += len(batch_records)
                    # Deferred path: one submit per round, occasionally flushed
                    # explicitly (otherwise auto-flush or the final flush).
                    pending = service.submit(
                        name, batch_records[0], float(thetas[0])
                    )
                    local_handles.append(
                        (pending, name, float(expected[thread_id][round_id][0]))
                    )
                    with counts_lock:
                        counts[name] += 1
                    if round_id % 5 == 4:
                        service.flush(name)
                    # Curve path: whole curves for a couple of records.
                    curves = service.estimate_curve_many(name, batch_records[:2])
                    assert curves.shape == (2, THETA_MAX + 1)
                    with counts_lock:
                        counts[name] += 2
                with handles_lock:
                    submitted_handles.extend(local_handles)
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [
            # repro: ignore[RPR001] - stress harness: raw threads hammer the service under test
            threading.Thread(target=hammer, args=(t,), daemon=True)
            for t in range(self.NUM_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors

        service.flush()  # resolve whatever the explicit/auto flushes left
        assert service.pending_count == 0

        # 1. No lost or duplicated resolutions: every handle resolved, with
        #    the value its (record, theta, endpoint) deserves.
        assert len(submitted_handles) == self.NUM_THREADS * self.ROUNDS
        for pending, name, expected_value in submitted_handles:
            assert pending.done and not pending.failed
            assert pending.result() == expected_value

        # 2. Cached curves stay frozen under concurrency.
        assert len(service.cache) > 0
        for curve in service.cache._entries.values():
            assert not curve.flags.writeable

        # 3. Telemetry sums exactly to the submitted work, per endpoint and
        #    in total — no increment was lost to a race.
        for name in ("a", "b"):
            stats = service.telemetry.endpoint(name)
            assert stats.requests == counts[name]
            assert stats.cache_hits + stats.cache_misses == stats.requests
        total = service.telemetry.total
        assert total.requests == counts["a"] + counts["b"]

    def test_concurrent_submitters_coalesce_into_shared_batches(self, stress_dataset):
        """Submissions from many threads merge into max_batch_size batches:
        with 4 threads × 8 submits and batch size 16, auto-flush fires
        exactly twice — across threads, not per thread."""
        service = _service(stress_dataset, max_batch_size=16)
        records = stress_dataset.records
        barrier = threading.Barrier(4)
        handles = []
        lock = threading.Lock()

        def submit_only(thread_id):
            barrier.wait()
            mine = [
                service.submit("a", records[(thread_id * 8 + i) % len(records)], 3.0)
                for i in range(8)
            ]
            with lock:
                handles.extend(mine)

        threads = [
            # repro: ignore[RPR001] - stress harness: raw threads hammer the service under test
            threading.Thread(target=submit_only, args=(t,), daemon=True)
            for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)

        assert service.pending_count == 0  # 32 submits = exactly 2 full batches
        assert all(handle.done for handle in handles)
        stats = service.telemetry.endpoint("a")
        assert stats.requests == 32
        assert stats.batches <= 2  # dedup may shrink the model batches further


class _ExplodingEstimator:
    """Minimal estimator whose micro-batches always fail."""

    monotonic = True

    def estimate_curve_many(
        self, records: Sequence, thetas: Optional[Sequence[float]] = None
    ) -> np.ndarray:
        raise RuntimeError("estimator exploded")

    def curve_thetas(self) -> Optional[np.ndarray]:
        return None


class TestDeferredPathSatellites:
    def test_auto_flush_failures_are_counted_per_endpoint(self, stress_dataset):
        service = _service(stress_dataset, max_batch_size=3)
        service.register(
            "broken",
            _ExplodingEstimator(),
            curve_thetas=np.arange(THETA_MAX + 1, dtype=np.float64),
        )
        handles = [
            service.submit("broken", stress_dataset.records[i], 2.0) for i in range(3)
        ]
        # The third submit filled the batch; its auto-flush failed silently —
        # but observably: the counter moved and every handle carries the error.
        assert service.pending_count == 0
        assert all(handle.failed for handle in handles)
        with pytest.raises(RuntimeError, match="exploded"):
            handles[0].result()
        stats = service.telemetry.endpoint("broken")
        assert stats.auto_flush_failures == 1
        assert service.telemetry.total.auto_flush_failures == 1
        # Healthy endpoints never moved the counter, and it is in snapshots.
        snapshot = service.telemetry.snapshot()
        assert snapshot["broken"]["auto_flush_failures"] == 1
        assert service.telemetry.endpoint("a").auto_flush_failures == 0
        # An explicit flush of a failing endpoint still raises.
        service.submit("broken", stress_dataset.records[0], 2.0)
        with pytest.raises(RuntimeError, match="exploded"):
            service.flush("broken")
        assert service.telemetry.endpoint("broken").auto_flush_failures == 1

    def test_flush_by_name_targets_only_that_endpoint_after_partial_drain(
        self, stress_dataset
    ):
        """Regression for the loop variable that used to shadow ``name``:
        a named flush must never resolve another endpoint's queue."""
        service = _service(stress_dataset)
        records = stress_dataset.records
        on_a = [service.submit("a", records[i], 3.0) for i in range(3)]
        on_b = [service.submit("b", records[i], 3.0) for i in range(3)]

        assert service.flush("a") == 3  # partial drain: only endpoint a
        assert all(handle.done for handle in on_a)
        assert not any(handle.done for handle in on_b)

        # After the partial drain, a named flush still targets only its
        # endpoint — new requests on "a" stay queued while "b" resolves.
        on_a_late = [service.submit("a", records[i + 3], 3.0) for i in range(2)]
        assert service.flush("b") == 3
        assert all(handle.done for handle in on_b)
        assert not any(handle.done for handle in on_a_late)
        assert service.pending_count == 2
        assert service.flush() == 2  # the unnamed flush drains the rest
        assert all(handle.done for handle in on_a_late)

"""Pin the serving behavior for thresholds outside an endpoint's curve grid.

Two contracts coexist, and both are deliberate:

* endpoints on a plain grid (no θ → τ quantization override) *clamp*: the
  default :meth:`CardinalityEstimator.curve_indices` snaps a theta below the
  grid to column 0 and a theta above it to the last column — monotone, never
  an out-of-range read;
* endpoints whose estimator validates thresholds itself (CardNet's feature
  extractor enforces ``[0, theta_max]``) *raise* on out-of-range thetas, on
  the cold path and the fully-cached path alike.

These tests exist so a refactor cannot silently swap one behavior for the
other (the failure mode: an out-of-grid theta quietly serving a wrong column).
"""

import numpy as np
import pytest

from repro.baselines import UniformSamplingEstimator
from repro.serving import EstimationService


@pytest.fixture
def gridded_service(binary_dataset):
    """An endpoint served on an explicit integer grid [0, theta_max]."""
    estimator = UniformSamplingEstimator(binary_dataset.records, "hamming", seed=0)
    service = EstimationService()
    service.register(
        "us/hm",
        estimator,
        curve_thetas=np.arange(int(binary_dataset.theta_max) + 1, dtype=np.float64),
    )
    return service


class TestDefaultGridClamps:
    def test_theta_below_grid_clamps_to_first_column(self, gridded_service, binary_dataset):
        entry = gridded_service.registry.get("us/hm")
        record = binary_dataset.records[0]
        curve = gridded_service.estimate_curve("us/hm", record)
        assert entry.curve_indices([-3.0, -0.25]).tolist() == [0, 0]
        assert gridded_service.estimate("us/hm", record, -3.0) == pytest.approx(curve[0])

    def test_theta_above_grid_clamps_to_last_column(self, gridded_service, binary_dataset):
        entry = gridded_service.registry.get("us/hm")
        record = binary_dataset.records[0]
        curve = gridded_service.estimate_curve("us/hm", record)
        top = len(entry.curve_thetas) - 1
        assert entry.curve_indices(
            [binary_dataset.theta_max + 1.0, binary_dataset.theta_max + 100.0]
        ).tolist() == [top, top]
        assert gridded_service.estimate(
            "us/hm", record, binary_dataset.theta_max + 100.0
        ) == pytest.approx(curve[-1])

    def test_interior_thetas_snap_down(self, gridded_service):
        entry = gridded_service.registry.get("us/hm")
        # Between grid points the monotone snap-down picks the point <= theta.
        assert entry.curve_indices([2.5, 3.0, 3.999]).tolist() == [2, 3, 3]

    def test_clamped_answers_preserve_monotonicity(self, gridded_service, binary_dataset):
        record = binary_dataset.records[7]
        thetas = [-5.0, 0.0, 3.0, binary_dataset.theta_max, binary_dataset.theta_max + 5.0]
        answers = gridded_service.estimate_many("us/hm", [record] * len(thetas), thetas)
        assert np.all(np.diff(answers) >= -1e-9)


class TestValidatingEstimatorRaises:
    def test_theta_above_theta_max_raises(self, trained_cardnet, binary_dataset):
        service = EstimationService()
        service.register("cardnet/hm", trained_cardnet)
        record = binary_dataset.records[0]
        with pytest.raises(ValueError):
            service.estimate("cardnet/hm", record, binary_dataset.theta_max + 50.0)

    def test_theta_below_zero_raises(self, trained_cardnet, binary_dataset):
        service = EstimationService()
        service.register("cardnet/hm", trained_cardnet)
        with pytest.raises(ValueError):
            service.estimate("cardnet/hm", binary_dataset.records[0], -1.0)

    def test_raises_even_when_curve_is_cached(self, trained_cardnet, binary_dataset):
        """The cold path computes curves; the warm path only re-indexes them.
        Out-of-range validation must hold on both."""
        service = EstimationService()
        service.register("cardnet/hm", trained_cardnet)
        record = binary_dataset.records[0]
        service.estimate("cardnet/hm", record, 4.0)  # curve now cached
        assert service.cache.hits + service.cache.misses > 0
        with pytest.raises(ValueError):
            service.estimate("cardnet/hm", record, binary_dataset.theta_max + 50.0)

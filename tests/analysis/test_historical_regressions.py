"""The linter catches the repo's actual past bugs, deliberately reverted.

Every rule claims to encode a contract that was violated at least once; this
file is the receipt.  Each fixture reconstructs the shape of the original
defect as it shipped — if a refactor ever makes a rule blind to its
motivating bug, these fail before the bug does.
"""

import textwrap

from repro.analysis import analyze_source


def codes(source, path):
    active, _ = analyze_source(textwrap.dedent(source), path)
    return [finding.code for finding in active]


def test_pr3_mutable_cached_curve_fires_rpr007():
    # PR 3's poisoned-curve bug, reverted: CurveCache.put stored the caller's
    # array unfrozen, so mutating a served curve corrupted every future hit.
    source = """
        class CurveCache:
            def put(self, estimator_name, record_key, curve):
                key = (estimator_name, record_key)
                if key in self._entries:
                    self._entries.move_to_end(key)
                self._entries[key] = curve
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
                    self.evictions += 1
    """
    assert codes(source, "src/repro/serving/cache.py") == ["RPR007"]


def test_pr5_adhoc_threadpoolexecutor_fires_rpr001():
    # PR 5 removed ShardedSelector's private ThreadPoolExecutor; this is the
    # pre-PR-5 fan-out shape, which bypassed WorkerPool backpressure,
    # pool telemetry, and the snapshot drop/rebuild hooks.
    source = """
        from concurrent.futures import ThreadPoolExecutor

        class ShardedSelector:
            def _fan_out(self, tasks):
                if self._pool is None:
                    self._pool = ThreadPoolExecutor(max_workers=len(self._shards))
                return [self._pool.submit(task) for task in tasks]
    """
    assert codes(source, "src/repro/sharding/selector.py") == ["RPR001"]


def test_pr3_swallowed_validation_error_fires_rpr005():
    # PR 3 found drift detection dead for a release: a swallowed validation
    # problem (min_observations silently clamped) meant drift could never
    # fire.  The silent-handler shape is the linted proxy for that class.
    source = """
        class FeedbackMonitor:
            def record(self, estimated, actual):
                try:
                    self._validate(estimated, actual)
                except ValueError:
                    pass
    """
    assert codes(source, "src/repro/engine/feedback.py") == ["RPR005"]


def test_pr5_pre_threadsafety_service_fires_rpr006():
    # Before PR 5, EstimationService mutated its pending-batch state with no
    # lock anywhere.  The post-PR-5 contract: state guarded once is guarded
    # everywhere — one leftover unlocked write is the regression shape.
    source = """
        import threading

        class EstimationService:
            def __init__(self):
                self._lock = threading.RLock()
                self._pending = {}

            def submit(self, name, record):
                with self._lock:
                    self._pending.setdefault(name, []).append(record)
                    self._pending = dict(self._pending)

            def flush(self, name):
                self._pending[name] = []
    """
    assert codes(source, "src/repro/serving/service.py") == ["RPR006"]

"""Fixture-based good/bad snippets for every RPR rule.

Each rule has at least one firing fixture (the contract violated) and one
passing fixture (the contract honored), presented at the tree location the
rule scopes to — ``path`` drives the ``src/`` strictness and the
``repro/runtime`` exemption exactly as on disk.
"""

import textwrap

from repro.analysis import analyze_source

SRC = "src/repro/example/module.py"


def codes(source, path=SRC):
    active, _ = analyze_source(textwrap.dedent(source), path)
    return [finding.code for finding in active]


# --------------------------------------------------------------------- #
# RPR001 — no ad-hoc threads outside repro/runtime
# --------------------------------------------------------------------- #
class TestAdHocThreads:
    def test_fires_on_threadpoolexecutor(self):
        source = """
            from concurrent.futures import ThreadPoolExecutor

            def fan_out(tasks):
                with ThreadPoolExecutor(max_workers=4) as pool:
                    return list(pool.map(str, tasks))
        """
        assert codes(source) == ["RPR001"]

    def test_fires_on_threading_thread_and_module_alias(self):
        source = """
            import threading
            import multiprocessing

            def spawn():
                threading.Thread(target=print).start()
                multiprocessing.Process(target=print).start()
        """
        assert codes(source) == ["RPR001", "RPR001"]

    def test_passes_inside_runtime(self):
        source = """
            import threading

            def spawn():
                return threading.Thread(target=print, daemon=True)
        """
        assert codes(source, path="src/repro/runtime/pool.py") == []

    def test_suppression_silences_with_reason(self):
        source = """
            import threading

            def stress():
                # repro: ignore[RPR001] - stress harness
                return threading.Thread(target=print)
        """
        assert codes(source) == []


# --------------------------------------------------------------------- #
# RPR002 — snapshot hooks in matched pairs
# --------------------------------------------------------------------- #
class TestSnapshotHookPairs:
    def test_fires_on_restore_without_state(self):
        source = """
            class HalfHooked:
                def __snapshot_restore__(self, state):
                    self.__dict__.update(state)
        """
        assert codes(source) == ["RPR002"]

    def test_fires_on_state_without_restore(self):
        source = """
            class HalfHooked:
                def __snapshot_state__(self):
                    return dict(self.__dict__)
        """
        assert codes(source) == ["RPR002"]

    def test_passes_with_both_or_neither(self):
        source = """
            class FullyHooked:
                def __snapshot_state__(self):
                    return dict(self.__dict__)

                def __snapshot_restore__(self, state):
                    self.__dict__.update(state)

            class Unhooked:
                pass
        """
        assert codes(source) == []


# --------------------------------------------------------------------- #
# RPR003 — picklable submit (library code only)
# --------------------------------------------------------------------- #
class TestPicklableSubmit:
    def test_fires_on_lambda(self):
        source = """
            def fan_out(pool, items):
                return [pool.submit(lambda item=item: item) for item in items]
        """
        assert codes(source) == ["RPR003"]

    def test_fires_on_nested_function_and_partial_lambda(self):
        source = """
            import functools

            def fan_out(pool, item):
                def task():
                    return item
                a = pool.submit(task)
                b = pool.submit(functools.partial(lambda x: x, item))
                return a, b
        """
        assert codes(source) == ["RPR003", "RPR003"]

    def test_passes_on_module_level_callable(self):
        source = """
            def task(item):
                return item

            def fan_out(pool, items):
                return [pool.submit(task, item) for item in items]
        """
        assert codes(source) == []

    def test_tests_pinning_thread_backend_are_exempt(self):
        source = """
            def test_pool(pool):
                assert pool.submit(lambda: 1).result() == 1
        """
        assert codes(source, path="tests/runtime/test_pool.py") == []


# --------------------------------------------------------------------- #
# RPR004 — monotonic clocks for durations
# --------------------------------------------------------------------- #
class TestMonotonicTime:
    def test_fires_on_time_time(self):
        source = """
            import time

            def measure(fn):
                start = time.time()
                fn()
                return time.time() - start
        """
        assert codes(source) == ["RPR004", "RPR004"]

    def test_passes_on_perf_counter_and_monotonic(self):
        source = """
            import time

            def measure(fn):
                start = time.perf_counter()
                fn()
                deadline = time.monotonic() + 5
                return time.perf_counter() - start, deadline
        """
        assert codes(source) == []


# --------------------------------------------------------------------- #
# RPR005 — no silent exception swallowing
# --------------------------------------------------------------------- #
class TestSilentException:
    def test_fires_on_bare_pass(self):
        source = """
            def risky(fn):
                try:
                    fn()
                except Exception:
                    pass
        """
        assert codes(source) == ["RPR005"]

    def test_fires_on_ellipsis_body(self):
        source = """
            def risky(fn):
                try:
                    fn()
                except OSError:
                    ...
        """
        assert codes(source) == ["RPR005"]

    def test_passes_when_counted_or_reraised(self):
        source = """
            def risky(fn, counter):
                try:
                    fn()
                except OSError:
                    counter.inc()
                except Exception:
                    raise
        """
        assert codes(source) == []


# --------------------------------------------------------------------- #
# RPR006 — lock discipline
# --------------------------------------------------------------------- #
class TestLockDiscipline:
    def test_fires_on_unlocked_write_to_guarded_attr(self):
        source = """
            import threading

            class Guarded:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def safe_inc(self):
                    with self._lock:
                        self._count += 1

                def racy_reset(self):
                    self._count = 0
        """
        assert codes(source) == ["RPR006"]

    def test_fires_on_unlocked_subscript_write(self):
        source = """
            import threading

            class Guarded:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def safe_put(self, key, value):
                    with self._lock:
                        self._items[key] = value

                def racy_put(self, key, value):
                    self._items[key] = value
        """
        assert codes(source) == ["RPR006"]

    def test_passes_when_all_writes_locked_or_exempt(self):
        source = """
            import threading

            class Guarded:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0  # construction: not shared yet

                def inc(self):
                    with self._lock:
                        self._count += 1

                def _bump_locked(self):
                    self._count += 1  # caller holds the lock (suffix)

                def __snapshot_state__(self):
                    return dict(self.__dict__)

                def __snapshot_restore__(self, state):
                    self._count = state["count"]  # restore is single-threaded
        """
        assert codes(source) == []

    def test_lockless_class_is_exempt(self):
        source = """
            class Plain:
                def set(self, value):
                    self._value = value
        """
        assert codes(source) == []


# --------------------------------------------------------------------- #
# RPR007 — frozen cache arrays
# --------------------------------------------------------------------- #
class TestFrozenCacheArrays:
    def test_fires_on_unfrozen_store(self):
        source = """
            class CurveCache:
                def put(self, key, curve):
                    self._entries[key] = curve
        """
        assert codes(source) == ["RPR007"]

    def test_passes_when_frozen_first(self):
        source = """
            import numpy as np

            class CurveCache:
                def put(self, key, curve):
                    curve = np.asarray(curve)
                    if curve.base is not None:
                        curve = curve.copy()
                    curve.setflags(write=False)
                    self._entries[key] = curve
        """
        assert codes(source) == []

    def test_non_cache_classes_and_literals_exempt(self):
        source = """
            class Registry:
                def put(self, key, value):
                    self._entries[key] = value

            class StatsCache:
                def put(self, key):
                    self._entries[key] = {"hits": 0}
        """
        assert codes(source) == []


# --------------------------------------------------------------------- #
# RPR008 — seeded RNG only, in src/
# --------------------------------------------------------------------- #
class TestSeededRandom:
    def test_fires_on_global_numpy_rng(self):
        source = """
            import numpy as np

            def jitter(values):
                np.random.shuffle(values)
                return values + np.random.normal(size=len(values))
        """
        assert codes(source) == ["RPR008", "RPR008"]

    def test_fires_on_global_stdlib_rng(self):
        source = """
            import random

            def pick(items):
                return random.choice(items)
        """
        assert codes(source) == ["RPR008"]

    def test_passes_on_seeded_instances(self):
        source = """
            import random
            import numpy as np

            def pick(items, seed):
                rng = np.random.default_rng(seed)
                stdlib_rng = random.Random(seed)
                return rng.choice(items), stdlib_rng.choice(items)
        """
        assert codes(source) == []

    def test_tests_and_benchmarks_are_exempt(self):
        source = """
            import numpy as np

            def test_fuzz():
                np.random.shuffle([1, 2, 3])
        """
        assert codes(source, path="tests/test_fuzz.py") == []


# --------------------------------------------------------------------- #
# RPR009 — metric naming conventions
# --------------------------------------------------------------------- #
class TestMetricNaming:
    def test_fires_on_counter_without_total_suffix(self):
        source = """
            def record(registry):
                registry.counter("repro_requests").inc()
        """
        assert codes(source) == ["RPR009"]

    def test_fires_on_invalid_identifier(self):
        source = """
            def record(registry):
                registry.gauge("queueDepth").set(3)
                registry.histogram("repro-latency").observe(0.1)
        """
        assert codes(source) == ["RPR009", "RPR009"]

    def test_fires_on_direct_construction(self):
        source = """
            from repro.obs.metrics import Counter

            def build():
                return Counter("repro_requests", {})
        """
        assert codes(source) == ["RPR009"]

    def test_passes_on_conventional_names(self):
        source = """
            def record(registry):
                registry.counter("repro_requests_total", {"endpoint": "e"}).inc()
                registry.gauge("repro_pool_queue_depth").set(0)
                registry.histogram("repro_request_latency_seconds").observe(0.1)
        """
        assert codes(source) == []

    def test_ignores_lookalikes_and_dynamic_names(self):
        source = """
            import numpy as np
            from collections import Counter

            def unrelated(values, name, registry):
                counts, edges = np.histogram(values, bins=4)
                tally = Counter(values)
                registry.counter(name).inc()  # dynamic: not checkable
                return counts, edges, tally
        """
        assert codes(source) == []


# --------------------------------------------------------------------- #
# RPR010 — no index rebuilds on the update path
# --------------------------------------------------------------------- #
class TestUpdatePathRebuild:
    def test_fires_on_rebuild_in_an_update_method(self):
        source = """
            class Binding:
                def apply_update(self, records):
                    self.selector = self.selector.rebuild(records)
        """
        assert codes(source) == ["RPR010"]

    def test_fires_on_selector_factory_call(self):
        source = """
            class Shards:
                def apply_routed(self, routing, records):
                    return self.selector_factory(records)
        """
        assert codes(source) == ["RPR010"]

    def test_fires_on_bare_selector_factory_name(self):
        source = """
            def handle_update(selector_factory, records):
                return selector_factory(records)
        """
        assert codes(source) == ["RPR010"]

    def test_compaction_and_rebalance_sites_are_exempt(self):
        source = """
            class Shards:
                def _compact_shard(self, shard_id, records):
                    return self.selector_factory(records)

                def commit_rebalance(self, records):
                    return self.selector.rebuild(records)

                def _rebuild_shard(self, records):
                    return self.selector_factory(records)

                def __init__(self, records):
                    self.shard = self.selector_factory(records)
        """
        assert codes(source) == []

    def test_allowlisted_modules_are_exempt(self):
        source = """
            def refresh(selector, records):
                return selector.rebuild(records)
        """
        assert codes(source, path="src/repro/sharding/rebalance.py") == []
        assert codes(source, path="src/repro/selection/delta.py") == []
        assert codes(source) == ["RPR010"]

    def test_tests_and_benchmarks_are_exempt(self):
        source = """
            def probe(selector, records):
                return selector.rebuild(records)
        """
        assert codes(source, path="tests/test_thing.py") == []
        assert codes(source, path="benchmarks/bench_thing.py") == []

    def test_unrelated_rebuild_names_do_not_fire(self):
        source = """
            def apply_update(selector, records):
                rebuild_in_place(selector, records)
                cache = cached_rebuild(records)
                return cache
        """
        assert codes(source) == []

    def test_suppression_is_honored(self):
        source = """
            class Binding:
                def replace_all(self, records):
                    self.selector = self.selector.rebuild(records)  # repro: ignore[RPR010] - wholesale replacement
        """
        assert codes(source) == []


# --------------------------------------------------------------------- #
# RPR900 — unused suppressions are themselves findings
# --------------------------------------------------------------------- #
class TestSuppressions:
    def test_unused_suppression_fires(self):
        source = """
            def clean():
                return 1  # repro: ignore[RPR004] - nothing here needs it
        """
        assert codes(source) == ["RPR900"]

    def test_standalone_comment_covers_next_code_line(self):
        source = """
            import time

            def measure():
                # repro: ignore[RPR004] - wall-clock timestamp for a label
                return time.time()
        """
        assert codes(source) == []

    def test_suppressed_findings_are_reported_separately(self):
        source = """
            import time

            def measure():
                return time.time()  # repro: ignore[RPR004] - wall-clock label
        """
        active, suppressed = analyze_source(textwrap.dedent(source), SRC)
        assert active == []
        assert [finding.code for finding in suppressed] == ["RPR004"]

    def test_multi_code_suppression_tracks_each_code(self):
        source = """
            import time

            def measure():
                return time.time()  # repro: ignore[RPR004, RPR008] - only 004 fires
        """
        assert codes(source) == ["RPR900"]

"""The repo passes its own contract linter — the CI gate, as a test.

``python -m repro.analysis src benchmarks tests`` exiting 0 is an acceptance
criterion; running the same analysis in-process keeps the gate honest even
where CI is not involved, and pins the suppression accounting (every
``repro: ignore`` in the tree must be load-bearing, or RPR900 fires here).
"""

from pathlib import Path

from repro.analysis import analyze_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_tree_has_zero_unsuppressed_findings():
    report = analyze_paths(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "benchmarks"), str(REPO_ROOT / "tests")]
    )
    rendered = "\n".join(finding.render() for finding in report.findings)
    assert not report.findings, f"contract violations:\n{rendered}"


def test_suppressions_in_tree_are_all_used():
    # analyze_paths already folds unused suppressions in as RPR900; assert
    # the suppressed list is non-empty too — the tree deliberately carries
    # justified suppressions, and losing them all silently would mean the
    # matching logic broke, not that the tree got cleaner.
    report = analyze_paths([str(REPO_ROOT / "src")])
    assert not [f for f in report.findings if f.code == "RPR900"]
    assert report.suppressed, "expected justified suppressions in src/"


def test_src_analysis_covers_the_whole_package():
    report = analyze_paths([str(REPO_ROOT / "src")])
    covered = {Path(path).name for path in report.files}
    # Spot-check the layers the rules were written for.
    for expected in ("pool.py", "service.py", "cache.py", "selector.py", "plane.py"):
        assert expected in covered

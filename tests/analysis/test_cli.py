"""CLI contract: exit codes, human output, JSON report shape, artifacts."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_MODULE = textwrap.dedent(
    """
    import time

    def measure(fn):
        start = time.time()
        fn()
        return time.time() - start
    """
)


def write_tree(tmp_path, source):
    package = tmp_path / "src" / "repro" / "demo"
    package.mkdir(parents=True)
    module = package / "module.py"
    module.write_text(source, encoding="utf-8")
    return module


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_tree(tmp_path, "def ok():\n    return 1\n")
        assert main([str(tmp_path)]) == 0
        assert "OK: 0 findings" in capsys.readouterr().out

    def test_findings_exit_one_with_rendered_locations(self, tmp_path, capsys):
        module = write_tree(tmp_path, BAD_MODULE)
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert f"{module}:" in out
        assert "RPR004" in out
        assert "2 finding(s)" in out

    def test_missing_path_and_syntax_error_exit_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nowhere")]) == 2
        broken = write_tree(tmp_path, "def broken(:\n")
        assert main([str(broken)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_no_paths_exits_two(self, capsys):
        assert main([]) == 2
        assert "no paths" in capsys.readouterr().err


class TestJsonReport:
    def test_json_stdout_shape(self, tmp_path, capsys):
        write_tree(tmp_path, BAD_MODULE)
        assert main([str(tmp_path), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert report["version"] == 1
        assert report["files"] == 1
        assert report["counts_by_code"] == {"RPR004": 2}
        assert {finding["code"] for finding in report["findings"]} == {"RPR004"}

    def test_json_output_artifact_written_even_when_clean(self, tmp_path, capsys):
        write_tree(tmp_path, "def ok():\n    return 1\n")
        artifact = tmp_path / "ANALYSIS_report.json"
        assert main([str(tmp_path), "--json-output", str(artifact)]) == 0
        capsys.readouterr()
        report = json.loads(artifact.read_text(encoding="utf-8"))
        assert report["ok"] is True
        assert report["findings"] == []

    def test_suppressed_findings_are_accounted(self, tmp_path, capsys):
        write_tree(
            tmp_path,
            "import time\n\n"
            "def stamp():\n"
            "    return time.time()  # repro: ignore[RPR004] - wall-clock label\n",
        )
        artifact = tmp_path / "report.json"
        assert main([str(tmp_path), "--json-output", str(artifact)]) == 0
        capsys.readouterr()
        report = json.loads(artifact.read_text(encoding="utf-8"))
        assert report["findings"] == []
        assert [finding["code"] for finding in report["suppressed"]] == ["RPR004"]


class TestModuleEntryPoint:
    def test_list_rules_via_python_dash_m(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0
        for code in [f"RPR00{n}" for n in range(1, 9)] + ["RPR900"]:
            assert code in result.stdout

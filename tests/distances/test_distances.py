"""Unit tests for the distance functions."""

import numpy as np
import pytest

from repro.distances import (
    EditDistance,
    EuclideanDistance,
    HammingDistance,
    JaccardDistance,
    get_distance,
    jaccard_similarity,
    levenshtein,
    levenshtein_within,
    normalize_rows,
    pack_bits,
    packed_hamming_distances,
    unpack_bits,
)


class TestHamming:
    def test_basic(self):
        assert HammingDistance().distance([0, 1, 0], [1, 1, 0]) == 1

    def test_identity(self):
        assert HammingDistance().distance([1, 0, 1], [1, 0, 1]) == 0

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            HammingDistance().distance([0, 1], [0, 1, 1])

    def test_distances_to_matches_loop(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 2, size=(20, 16))
        query = rng.integers(0, 2, size=16)
        distance = HammingDistance()
        batch = distance.distances_to(query, data)
        loop = [distance.distance(query, row) for row in data]
        assert np.allclose(batch, loop)

    def test_count_within(self):
        data = [[0, 0], [0, 1], [1, 1]]
        assert HammingDistance().count_within([0, 0], data, 1) == 2

    def test_pack_unpack_roundtrip(self):
        rng = np.random.default_rng(1)
        vectors = rng.integers(0, 2, size=(5, 13)).astype(np.uint8)
        packed = pack_bits(vectors)
        assert np.array_equal(unpack_bits(packed, 13), vectors)

    def test_packed_distance_matches_plain(self):
        rng = np.random.default_rng(2)
        data = rng.integers(0, 2, size=(30, 24)).astype(np.uint8)
        query = rng.integers(0, 2, size=24).astype(np.uint8)
        packed = pack_bits(data)
        query_packed = pack_bits(query)[0]
        fast = packed_hamming_distances(query_packed, packed)
        slow = np.count_nonzero(data != query[None, :], axis=1)
        assert np.array_equal(fast, slow)


class TestEdit:
    @pytest.mark.parametrize(
        "x,y,expected",
        [
            ("", "", 0),
            ("abc", "abc", 0),
            ("abc", "abd", 1),
            ("abc", "ab", 1),
            ("abc", "xabc", 1),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("", "abc", 3),
        ],
    )
    def test_levenshtein_known_values(self, x, y, expected):
        assert levenshtein(x, y) == expected

    def test_symmetry(self):
        assert levenshtein("abcde", "badec") == levenshtein("badec", "abcde")

    def test_banded_matches_full_within_threshold(self):
        pairs = [("kitten", "sitting"), ("hello", "hallo"), ("same", "same")]
        for x, y in pairs:
            full = levenshtein(x, y)
            assert levenshtein_within(x, y, full) == full

    def test_banded_returns_none_above_threshold(self):
        assert levenshtein_within("kitten", "sitting", 2) is None

    def test_banded_negative_threshold(self):
        assert levenshtein_within("a", "a", -1) is None

    def test_banded_length_filter(self):
        assert levenshtein_within("a", "abcdef", 2) is None

    def test_count_within(self):
        data = ["cat", "car", "dog", "cart"]
        assert EditDistance().count_within("cat", data, 1) == 3


class TestJaccard:
    def test_similarity_identical(self):
        assert jaccard_similarity({1, 2, 3}, {1, 2, 3}) == 1.0

    def test_similarity_disjoint(self):
        assert jaccard_similarity({1, 2}, {3, 4}) == 0.0

    def test_similarity_partial(self):
        assert jaccard_similarity({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)

    def test_empty_sets_convention(self):
        assert jaccard_similarity(set(), set()) == 1.0

    def test_distance_is_one_minus_similarity(self):
        distance = JaccardDistance()
        assert distance.distance({1, 2}, {2, 3}) == pytest.approx(1.0 - 1.0 / 3.0)

    def test_accepts_lists(self):
        assert JaccardDistance().distance([1, 2, 2], [1, 2]) == pytest.approx(0.0)

    def test_count_within(self):
        data = [frozenset({1, 2}), frozenset({1, 2, 3}), frozenset({9})]
        assert JaccardDistance().count_within({1, 2}, data, 0.5) == 2


class TestEuclidean:
    def test_basic(self):
        assert EuclideanDistance().distance([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            EuclideanDistance().distance([0.0], [0.0, 1.0])

    def test_distances_to_matches_loop(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(25, 8))
        query = rng.normal(size=8)
        distance = EuclideanDistance()
        batch = distance.distances_to(query, data)
        loop = [distance.distance(query, row) for row in data]
        assert np.allclose(batch, loop)

    def test_normalize_rows_unit_norm(self):
        rng = np.random.default_rng(4)
        matrix = rng.normal(size=(10, 5))
        norms = np.linalg.norm(normalize_rows(matrix), axis=1)
        assert np.allclose(norms, 1.0)

    def test_normalize_rows_zero_row_safe(self):
        matrix = np.zeros((2, 3))
        assert np.all(np.isfinite(normalize_rows(matrix)))


class TestRegistry:
    @pytest.mark.parametrize("name", ["hamming", "edit", "jaccard", "euclidean"])
    def test_get_distance_known(self, name):
        assert get_distance(name).name == name

    def test_get_distance_unknown(self):
        with pytest.raises(KeyError):
            get_distance("cosine")


class TestBatchLevenshtein:
    """The vectorized multi-string DP behind EditDistance.cross_distances."""

    @pytest.fixture(scope="class")
    def words(self):
        import random

        random.seed(0)
        alphabet = "abcde"
        return [
            "".join(random.choices(alphabet, k=random.randint(0, 12)))
            for _ in range(120)
        ]

    def test_cross_distances_matches_pairwise_loop(self, words):
        from repro.distances import batch_levenshtein  # noqa: F401 (public API)

        distance = EditDistance()
        queries = words[:10]
        matrix = distance.cross_distances(queries, words)
        expected = np.array(
            [[levenshtein(q, w) for w in words] for q in queries], dtype=np.float64
        )
        assert np.array_equal(matrix, expected)

    def test_distances_to_matches_loop(self, words):
        distance = EditDistance()
        batch = distance.distances_to(words[0], words)
        loop = [distance.distance(words[0], w) for w in words]
        assert np.array_equal(batch, loop)

    def test_threshold_mode_exact_below_threshold(self, words):
        from repro.distances import batch_levenshtein

        for query in words[:5]:
            pruned = batch_levenshtein(query, words, threshold=3)
            exact = np.array([levenshtein(query, w) for w in words])
            within = exact <= 3
            assert np.array_equal(pruned[within], exact[within])
            assert (pruned[~within] > 3).all()

    def test_empty_edge_cases(self):
        from repro.distances import batch_levenshtein

        assert batch_levenshtein("", ["", "ab"]).tolist() == [0, 2]
        assert batch_levenshtein("ab", ["", ""]).tolist() == [2, 2]
        assert batch_levenshtein("ab", []).tolist() == []

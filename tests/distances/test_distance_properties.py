"""Property-based tests for distance-function axioms."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances import (
    EuclideanDistance,
    HammingDistance,
    JaccardDistance,
    levenshtein,
)

binary_vectors = st.lists(st.integers(0, 1), min_size=8, max_size=8)
short_strings = st.text(alphabet="abcd", min_size=0, max_size=8)
small_sets = st.frozensets(st.integers(0, 15), max_size=8)
real_vectors = st.lists(
    st.floats(min_value=-2.0, max_value=2.0, allow_nan=False), min_size=4, max_size=4
)


@settings(max_examples=50, deadline=None)
@given(binary_vectors, binary_vectors)
def test_hamming_symmetry_and_identity(x, y):
    distance = HammingDistance()
    assert distance.distance(x, y) == distance.distance(y, x)
    assert distance.distance(x, x) == 0


@settings(max_examples=50, deadline=None)
@given(binary_vectors, binary_vectors, binary_vectors)
def test_hamming_triangle_inequality(x, y, z):
    distance = HammingDistance()
    assert distance.distance(x, z) <= distance.distance(x, y) + distance.distance(y, z)


@settings(max_examples=40, deadline=None)
@given(short_strings, short_strings)
def test_edit_symmetry_and_identity(x, y):
    assert levenshtein(x, y) == levenshtein(y, x)
    assert levenshtein(x, x) == 0


@settings(max_examples=30, deadline=None)
@given(short_strings, short_strings, short_strings)
def test_edit_triangle_inequality(x, y, z):
    assert levenshtein(x, z) <= levenshtein(x, y) + levenshtein(y, z)


@settings(max_examples=40, deadline=None)
@given(short_strings, short_strings)
def test_edit_bounded_by_max_length(x, y):
    assert levenshtein(x, y) <= max(len(x), len(y))


@settings(max_examples=50, deadline=None)
@given(small_sets, small_sets)
def test_jaccard_range_and_symmetry(x, y):
    distance = JaccardDistance()
    value = distance.distance(x, y)
    assert 0.0 <= value <= 1.0
    assert value == distance.distance(y, x)
    assert distance.distance(x, x) == 0.0


@settings(max_examples=40, deadline=None)
@given(real_vectors, real_vectors)
def test_euclidean_symmetry_and_nonnegativity(x, y):
    distance = EuclideanDistance()
    value = distance.distance(x, y)
    assert value >= 0.0
    assert np.isclose(value, distance.distance(y, x))


@settings(max_examples=30, deadline=None)
@given(real_vectors, real_vectors, real_vectors)
def test_euclidean_triangle_inequality(x, y, z):
    distance = EuclideanDistance()
    assert distance.distance(x, z) <= distance.distance(x, y) + distance.distance(y, z) + 1e-9

"""Raw-speed kernel tier: uint64 popcount and blocked cross-distance kernels.

The fast paths must be bit-identical (Hamming) / numerically equivalent
(Euclidean) to the reference implementations they replaced, including at
block boundaries and for widths that do not divide evenly into words.
"""

import numpy as np
import pytest

import repro.distances.hamming as hamming_mod
from repro.distances import (
    EuclideanDistance,
    HammingDistance,
    pack_bits,
    unpack_bits,
)
from repro.distances.hamming import (
    pack_bits_words,
    packed_hamming_cross_distances,
    packed_hamming_distances,
    packed_hamming_distances_table,
    packed_hamming_distances_words,
)


class TestWordKernelVsTable:
    """Satellite: the uint64 kernel against the historical table path."""

    @pytest.mark.parametrize("dimension", [1, 7, 8, 9, 63, 64, 65, 127, 130])
    def test_identical_counts_all_widths(self, dimension):
        rng = np.random.default_rng(dimension)
        query = pack_bits(rng.integers(0, 2, size=(1, dimension)).astype(np.uint8))[0]
        data = pack_bits(rng.integers(0, 2, size=(200, dimension)).astype(np.uint8))
        fast = packed_hamming_distances(query, data)
        table = packed_hamming_distances_table(query, data)
        assert fast.dtype == np.int64
        assert (fast == table).all()

    def test_odd_byte_widths_pad_with_zeros(self):
        # 5 packed bytes per row: not a multiple of 8, forces the padded copy.
        rng = np.random.default_rng(5)
        packed = rng.integers(0, 256, size=(30, 5)).astype(np.uint8)
        words = pack_bits_words(packed)
        assert words.shape == (30, 1)
        assert (
            packed_hamming_distances(packed[0], packed)
            == packed_hamming_distances_table(packed[0], packed)
        ).all()

    def test_word_view_is_zero_copy_when_aligned(self):
        packed = np.zeros((4, 16), dtype=np.uint8)
        words = pack_bits_words(packed)
        assert words.base is packed  # a view, not a padded copy

    def test_blocked_path_matches_unblocked(self, monkeypatch):
        rng = np.random.default_rng(3)
        data = pack_bits(rng.integers(0, 2, size=(500, 96)).astype(np.uint8))
        query = data[7]
        expected = packed_hamming_distances(query, data)
        # Shrink the block bound so the scan needs many blocks (including a
        # ragged final one).
        monkeypatch.setattr(hamming_mod, "KERNEL_BLOCK_BYTES", 64 * 8 * 7)
        blocked = packed_hamming_distances(query, data)
        assert (blocked == expected).all()

    def test_cross_distances_matches_elementwise(self):
        rng = np.random.default_rng(9)
        queries = rng.integers(0, 2, size=(12, 37)).astype(np.uint8)
        data = rng.integers(0, 2, size=(40, 37)).astype(np.uint8)
        fast = packed_hamming_cross_distances(pack_bits(queries), pack_bits(data))
        reference = np.count_nonzero(queries[:, None, :] != data[None, :, :], axis=2)
        assert (fast == reference).all()

    def test_hamming_distance_cross_uses_packed_kernel(self):
        rng = np.random.default_rng(1)
        queries = rng.integers(0, 2, size=(6, 50))
        data = rng.integers(0, 2, size=(25, 50))
        distance = HammingDistance()
        fast = distance.cross_distances(queries, data)
        loop = np.array([[distance.distance(q, x) for x in data] for q in queries])
        assert np.array_equal(fast, loop)


class TestPackBitsEdgeCases:
    """Satellite: pack/unpack edges — ragged dims, empty batches, 1-D rows."""

    @pytest.mark.parametrize("dimension", [1, 3, 8, 9, 15, 16, 17])
    def test_roundtrip_dims_not_divisible_by_8(self, dimension):
        rng = np.random.default_rng(dimension)
        vectors = rng.integers(0, 2, size=(11, dimension)).astype(np.uint8)
        packed = pack_bits(vectors)
        assert packed.shape == (11, -(-dimension // 8))
        assert np.array_equal(unpack_bits(packed, dimension), vectors)

    def test_single_row_1d_input_packs_as_one_row(self):
        vector = np.array([1, 0, 1, 1, 0, 0, 1, 0, 1], dtype=np.uint8)
        packed = pack_bits(vector)
        assert packed.shape == (1, 2)
        assert np.array_equal(unpack_bits(packed, 9)[0], vector)

    def test_empty_query_batch_cross_distances(self):
        data = np.random.default_rng(0).integers(0, 2, size=(10, 16))
        out = HammingDistance().cross_distances([], data)
        assert out.shape == (0, 10)
        out = EuclideanDistance().cross_distances([], np.ones((10, 4)))
        assert out.shape == (0, 10)

    def test_empty_dataset_word_kernel(self):
        query = pack_bits(np.ones((1, 16), dtype=np.uint8))[0]
        empty = np.zeros((0, 2), dtype=np.uint8)
        out = packed_hamming_distances_words(
            pack_bits_words(query)[0], pack_bits_words(empty)
        )
        assert out.shape == (0,)

    def test_single_row_1d_through_distances_to(self):
        rng = np.random.default_rng(4)
        data = rng.integers(0, 2, size=(15, 13))
        query = rng.integers(0, 2, size=13)
        distance = HammingDistance()
        batch = distance.distances_to(query, data)
        assert batch.shape == (15,)
        assert np.allclose(batch, [distance.distance(query, row) for row in data])


class TestBlockedEuclidean:
    def test_matches_pairwise_reference(self):
        rng = np.random.default_rng(2)
        queries = rng.normal(size=(9, 6))
        data = rng.normal(size=(33, 6))
        distance = EuclideanDistance()
        fast = distance.cross_distances(queries, data)
        reference = np.array(
            [[np.linalg.norm(q - x) for x in data] for q in queries]
        )
        assert np.allclose(fast, reference)

    def test_blocked_equals_single_block(self, monkeypatch):
        rng = np.random.default_rng(8)
        queries = rng.normal(size=(50, 10))
        data = rng.normal(size=(70, 10))
        whole = EuclideanDistance().cross_distances(queries, data)
        # Force a tiny per-block panel: many query blocks, ragged last block.
        monkeypatch.setattr(EuclideanDistance, "BLOCK_BYTES", 70 * 8 * 3)
        blocked = EuclideanDistance().cross_distances(queries, data)
        assert np.array_equal(whole, blocked)

    def test_peak_memory_is_bounded_by_block(self, monkeypatch):
        import tracemalloc

        rng = np.random.default_rng(6)
        queries = rng.normal(size=(400, 8))
        data = rng.normal(size=(2000, 8))
        monkeypatch.setattr(EuclideanDistance, "BLOCK_BYTES", 1 << 16)
        distance = EuclideanDistance()
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        out = distance.cross_distances(queries, data)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        output_bytes = out.nbytes
        # Peak transient beyond the output itself stays within a few blocks
        # (data transpose + norms + one panel), far below a (q, n, d) temp.
        assert peak - before < output_bytes + 10 * (1 << 16) + data.nbytes

"""Property-based tests (hypothesis) for the autodiff engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Tensor
from repro.nn.gradcheck import check_gradients

finite_floats = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False, allow_infinity=False)


def small_arrays(shape):
    return arrays(dtype=np.float64, shape=shape, elements=finite_floats)


@settings(max_examples=30, deadline=None)
@given(small_arrays((3,)), small_arrays((3,)))
def test_addition_commutes(a, b):
    left = (Tensor(a) + Tensor(b)).data
    right = (Tensor(b) + Tensor(a)).data
    assert np.allclose(left, right)


@settings(max_examples=30, deadline=None)
@given(small_arrays((2, 3)))
def test_relu_idempotent(a):
    once = Tensor(a).relu().data
    twice = Tensor(a).relu().relu().data
    assert np.allclose(once, twice)


@settings(max_examples=30, deadline=None)
@given(small_arrays((2, 3)))
def test_sum_matches_numpy(a):
    assert np.isclose(Tensor(a).sum().item(), a.sum())


@settings(max_examples=30, deadline=None)
@given(small_arrays((4,)))
def test_sigmoid_bounded(a):
    out = Tensor(a).sigmoid().data
    assert np.all(out > 0.0) and np.all(out < 1.0)


@settings(max_examples=20, deadline=None)
@given(small_arrays((3,)), small_arrays((3,)))
def test_product_rule_gradient(a, b):
    x = Tensor(a, requires_grad=True)
    y = Tensor(b, requires_grad=True)
    (x * y).sum().backward()
    assert np.allclose(x.grad, b)
    assert np.allclose(y.grad, a)


@settings(max_examples=15, deadline=None)
@given(small_arrays((2, 2)))
def test_gradcheck_composite_expression(a):
    x = Tensor(a, requires_grad=True)

    def loss():
        return ((x * x).relu() + x.sigmoid()).sum()

    assert check_gradients(loss, [x], atol=1e-3, rtol=1e-2)


@settings(max_examples=30, deadline=None)
@given(small_arrays((3, 2)))
def test_backward_linear_in_upstream_gradient(a):
    # d(2·f)/dx == 2·df/dx
    x1 = Tensor(a, requires_grad=True)
    (x1.tanh().sum() * 2.0).backward()
    x2 = Tensor(a, requires_grad=True)
    x2.tanh().sum().backward()
    assert np.allclose(x1.grad, 2.0 * x2.grad)

"""Unit tests for layers, Module composition, optimizers, losses, serialization."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn.gradcheck import check_gradients


class TestLinear:
    def test_output_shape(self):
        layer = nn.Linear(4, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias(self):
        layer = nn.Linear(4, 3, bias=False, rng=np.random.default_rng(0))
        assert len(layer.parameters()) == 1

    def test_invalid_init_raises(self):
        with pytest.raises(ValueError):
            nn.Linear(4, 3, weight_init="bogus")

    def test_gradients_flow_to_weights(self):
        layer = nn.Linear(3, 2, rng=np.random.default_rng(1))
        x = np.random.default_rng(2).normal(size=(4, 3))
        assert check_gradients(lambda: (layer(Tensor(x)) ** 2).sum(), layer.parameters())


class TestActivationsAndSequential:
    def test_sequential_applies_in_order(self):
        model = nn.Sequential(nn.Linear(2, 2, rng=np.random.default_rng(0)), nn.ReLU())
        out = model(Tensor(np.array([[1.0, -1.0]])))
        assert np.all(out.data >= 0.0)

    def test_sequential_len_and_iter(self):
        model = nn.Sequential(nn.ReLU(), nn.Tanh(), nn.Sigmoid())
        assert len(model) == 3
        assert len(list(model)) == 3

    def test_identity(self):
        x = Tensor([[1.0, 2.0]])
        assert np.allclose(nn.Identity()(x).data, x.data)

    def test_mlp_structure(self):
        model = nn.mlp([4, 8, 8, 1], rng=np.random.default_rng(0))
        out = model(Tensor(np.ones((2, 4))))
        assert out.shape == (2, 1)

    def test_mlp_output_activation(self):
        model = nn.mlp([2, 4, 1], output_activation=nn.Sigmoid, rng=np.random.default_rng(0))
        out = model(Tensor(np.array([[5.0, -5.0]])))
        assert 0.0 < out.data[0, 0] < 1.0

    def test_mlp_requires_two_sizes(self):
        with pytest.raises(ValueError):
            nn.mlp([4])


class TestEmbedding:
    def test_lookup_shape(self):
        embedding = nn.Embedding(10, 4, rng=np.random.default_rng(0))
        out = embedding(np.array([0, 3, 9]))
        assert out.shape == (3, 4)

    def test_lookup_gradients(self):
        embedding = nn.Embedding(5, 3, rng=np.random.default_rng(0))
        out = embedding(np.array([1, 1, 2]))
        out.sum().backward()
        grad = embedding.weight.grad
        assert np.allclose(grad[1], [2.0, 2.0, 2.0])
        assert np.allclose(grad[2], [1.0, 1.0, 1.0])
        assert np.allclose(grad[0], 0.0)


class TestModule:
    def test_named_parameters_nested(self):
        model = nn.Sequential(nn.Linear(2, 3, rng=np.random.default_rng(0)), nn.Linear(3, 1, rng=np.random.default_rng(0)))
        names = [name for name, _ in model.named_parameters()]
        assert any("layer0" in name for name in names)
        assert any("layer1" in name for name in names)

    def test_num_parameters(self):
        model = nn.Linear(4, 3)
        assert model.num_parameters() == 4 * 3 + 3

    def test_state_dict_roundtrip(self):
        model = nn.mlp([3, 4, 1], rng=np.random.default_rng(0))
        other = nn.mlp([3, 4, 1], rng=np.random.default_rng(99))
        other.load_state_dict(model.state_dict())
        x = np.ones((2, 3))
        assert np.allclose(model(Tensor(x)).data, other(Tensor(x)).data)

    def test_load_state_dict_rejects_missing_keys(self):
        model = nn.Linear(2, 2)
        with pytest.raises(KeyError):
            model.load_state_dict({})

    def test_load_state_dict_rejects_bad_shape(self):
        model = nn.Linear(2, 2)
        state = model.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.ReLU())
        model.eval()
        assert not model.training
        assert all(not module.training for module in model)

    def test_zero_grad(self):
        model = nn.Linear(2, 1, rng=np.random.default_rng(0))
        (model(Tensor(np.ones((1, 2)))) ** 2).sum().backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None


class TestLosses:
    def test_mse_zero_when_equal(self):
        x = Tensor([1.0, 2.0])
        assert nn.mse_loss(x, Tensor([1.0, 2.0])).item() == pytest.approx(0.0)

    def test_msle_scale_insensitivity(self):
        # MSLE depends on the ratio, not the absolute scale: (10 vs 20) and
        # (1000 vs 2000) should give nearly the same loss (log1p ≈ log there).
        small = nn.msle_loss(Tensor([10.0]), Tensor([20.0])).item()
        large = nn.msle_loss(Tensor([1000.0]), Tensor([2000.0])).item()
        assert abs(small - large) < 0.1

    def test_mae_loss(self):
        value = nn.mae_loss(Tensor([1.0, 3.0]), Tensor([2.0, 1.0])).item()
        assert value == pytest.approx(1.5, rel=1e-3)

    def test_bce_with_logits_matches_reference(self):
        logits = np.array([[0.5, -1.0], [2.0, 0.0]])
        targets = np.array([[1.0, 0.0], [0.0, 1.0]])
        expected = np.mean(
            np.maximum(logits, 0.0) - logits * targets + np.log1p(np.exp(-np.abs(logits)))
        )
        value = nn.bce_with_logits_loss(Tensor(logits), Tensor(targets)).item()
        assert value == pytest.approx(expected, rel=1e-6)

    def test_kl_zero_for_standard_normal(self):
        mean = Tensor(np.zeros((2, 3)))
        log_var = Tensor(np.zeros((2, 3)))
        assert nn.gaussian_kl_loss(mean, log_var).item() == pytest.approx(0.0)

    def test_kl_positive_otherwise(self):
        mean = Tensor(np.ones((2, 3)))
        log_var = Tensor(np.zeros((2, 3)))
        assert nn.gaussian_kl_loss(mean, log_var).item() > 0.0

    def test_q_error_loss_zero_when_equal(self):
        x = Tensor([5.0, 7.0])
        assert nn.q_error_loss(x, Tensor([5.0, 7.0])).item() == pytest.approx(0.0)

    def test_losses_gradcheck(self):
        prediction = Tensor(np.array([1.2, 0.4, 3.3]), requires_grad=True)
        target = Tensor(np.array([1.0, 0.5, 2.0]))
        assert check_gradients(lambda: nn.msle_loss(prediction, target), [prediction])


class TestOptimizers:
    def _quadratic_problem(self):
        target = np.array([3.0, -2.0])
        param = Tensor(np.zeros(2), requires_grad=True)

        def loss():
            diff = param - Tensor(target)
            return (diff * diff).sum()

        return param, loss, target

    def test_sgd_converges(self):
        param, loss, target = self._quadratic_problem()
        optimizer = nn.SGD([param], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            loss().backward()
            optimizer.step()
        assert np.allclose(param.data, target, atol=1e-3)

    def test_sgd_momentum_converges(self):
        param, loss, target = self._quadratic_problem()
        optimizer = nn.SGD([param], lr=0.05, momentum=0.9)
        for _ in range(200):
            optimizer.zero_grad()
            loss().backward()
            optimizer.step()
        assert np.allclose(param.data, target, atol=1e-2)

    def test_adam_converges(self):
        param, loss, target = self._quadratic_problem()
        optimizer = nn.Adam([param], lr=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            loss().backward()
            optimizer.step()
        assert np.allclose(param.data, target, atol=1e-2)

    def test_weight_decay_shrinks_parameters(self):
        param = Tensor(np.array([10.0]), requires_grad=True)
        optimizer = nn.SGD([param], lr=0.1, weight_decay=0.5)
        for _ in range(50):
            optimizer.zero_grad()
            (param * 0.0).sum().backward()  # no data gradient, only decay
            optimizer.step()
        assert abs(param.data[0]) < 10.0

    def test_clip_grad_norm(self):
        param = Tensor(np.array([1.0]), requires_grad=True)
        optimizer = nn.SGD([param], lr=0.1)
        optimizer.zero_grad()
        (param * 100.0).sum().backward()
        norm = optimizer.clip_grad_norm(1.0)
        assert norm == pytest.approx(100.0)
        assert np.linalg.norm(param.grad) <= 1.0 + 1e-9

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    def test_step_lr_schedule(self):
        param = Tensor(np.array([1.0]), requires_grad=True)
        optimizer = nn.Adam([param], lr=1.0)
        scheduler = nn.StepLR(optimizer, step_size=2, gamma=0.5)
        scheduler.step()
        assert optimizer.lr == pytest.approx(1.0)
        scheduler.step()
        assert optimizer.lr == pytest.approx(0.5)


class TestSerialization:
    def test_save_and_load_roundtrip(self, tmp_path):
        model = nn.mlp([3, 5, 1], rng=np.random.default_rng(0))
        path = tmp_path / "model.npz"
        size = nn.save_module(model, path)
        assert size > 0
        clone = nn.mlp([3, 5, 1], rng=np.random.default_rng(42))
        nn.load_module(clone, path)
        x = np.ones((2, 3))
        assert np.allclose(model(Tensor(x)).data, clone(Tensor(x)).data)

    def test_serialized_size_positive_and_grows(self):
        small = nn.mlp([3, 4, 1], rng=np.random.default_rng(0))
        big = nn.mlp([3, 64, 64, 1], rng=np.random.default_rng(0))
        assert 0 < nn.serialized_size(small) < nn.serialized_size(big)

    def test_save_without_npz_suffix_reports_true_archive_size(self, tmp_path):
        # Regression: np.savez appends ".npz" to suffix-less paths, so the
        # old implementation statted a non-existent file and raised.
        model = nn.mlp([3, 5, 1], rng=np.random.default_rng(0))
        path = tmp_path / "weights"  # no suffix
        size = nn.save_module(model, path)
        archive = tmp_path / "weights.npz"
        assert archive.is_file()
        assert size == archive.stat().st_size
        assert not path.exists()

    def test_load_accepts_the_path_given_to_save(self, tmp_path):
        model = nn.mlp([3, 5, 1], rng=np.random.default_rng(0))
        path = tmp_path / "weights"  # no suffix, numpy writes weights.npz
        nn.save_module(model, path)
        clone = nn.mlp([3, 5, 1], rng=np.random.default_rng(42))
        nn.load_module(clone, path)  # same suffix-less path round-trips
        x = np.ones((2, 3))
        assert np.allclose(model(Tensor(x)).data, clone(Tensor(x)).data)

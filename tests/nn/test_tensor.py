"""Unit tests for the autodiff Tensor: forward values and gradients."""

import numpy as np
import pytest

from repro.nn import Tensor, concatenate, stack, where
from repro.nn.gradcheck import check_gradients
from repro.nn.tensor import _unbroadcast


class TestForward:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        assert np.allclose(out.data, [4.0, 6.0])

    def test_add_scalar_broadcast(self):
        out = Tensor([[1.0, 2.0], [3.0, 4.0]]) + 1.0
        assert np.allclose(out.data, [[2.0, 3.0], [4.0, 5.0]])

    def test_sub(self):
        out = Tensor([5.0]) - Tensor([2.0])
        assert np.allclose(out.data, [3.0])

    def test_rsub(self):
        out = 10.0 - Tensor([4.0])
        assert np.allclose(out.data, [6.0])

    def test_mul(self):
        out = Tensor([2.0, 3.0]) * Tensor([4.0, 5.0])
        assert np.allclose(out.data, [8.0, 15.0])

    def test_div(self):
        out = Tensor([6.0]) / Tensor([3.0])
        assert np.allclose(out.data, [2.0])

    def test_rdiv(self):
        out = 12.0 / Tensor([4.0])
        assert np.allclose(out.data, [3.0])

    def test_pow(self):
        out = Tensor([2.0, 3.0]) ** 2
        assert np.allclose(out.data, [4.0, 9.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[1.0], [1.0]])
        assert np.allclose((a @ b).data, [[3.0], [7.0]])

    def test_neg(self):
        assert np.allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_exp_log_roundtrip(self):
        x = Tensor([0.5, 1.5])
        assert np.allclose(x.exp().log().data, x.data)

    def test_log1p(self):
        assert np.allclose(Tensor([0.0, 1.0]).log1p().data, [0.0, np.log(2.0)])

    def test_relu(self):
        assert np.allclose(Tensor([-1.0, 0.0, 2.0]).relu().data, [0.0, 0.0, 2.0])

    def test_elu_positive_passthrough(self):
        assert np.allclose(Tensor([1.0, 2.0]).elu().data, [1.0, 2.0])

    def test_elu_negative(self):
        out = Tensor([-1.0]).elu(alpha=1.0)
        assert np.allclose(out.data, np.exp(-1.0) - 1.0)

    def test_sigmoid_range(self):
        out = Tensor([-10.0, 0.0, 10.0]).sigmoid()
        assert np.all(out.data > 0.0) and np.all(out.data < 1.0)
        assert np.isclose(out.data[1], 0.5)

    def test_tanh(self):
        assert np.allclose(Tensor([0.0]).tanh().data, [0.0])

    def test_softplus_matches_numpy(self):
        x = np.array([-3.0, 0.0, 3.0])
        assert np.allclose(Tensor(x).softplus().data, np.logaddexp(0.0, x))

    def test_clip(self):
        out = Tensor([-1.0, 0.5, 2.0]).clip(0.0, 1.0)
        assert np.allclose(out.data, [0.0, 0.5, 1.0])

    def test_sum_axis(self):
        out = Tensor([[1.0, 2.0], [3.0, 4.0]]).sum(axis=0)
        assert np.allclose(out.data, [4.0, 6.0])

    def test_sum_keepdims(self):
        out = Tensor([[1.0, 2.0], [3.0, 4.0]]).sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)

    def test_mean(self):
        assert np.isclose(Tensor([[1.0, 3.0]]).mean().item(), 2.0)

    def test_max_axis(self):
        out = Tensor([[1.0, 5.0], [7.0, 2.0]]).max(axis=1)
        assert np.allclose(out.data, [5.0, 7.0])

    def test_reshape(self):
        out = Tensor(np.arange(6.0)).reshape(2, 3)
        assert out.shape == (2, 3)

    def test_transpose(self):
        out = Tensor([[1.0, 2.0], [3.0, 4.0]]).T
        assert np.allclose(out.data, [[1.0, 3.0], [2.0, 4.0]])

    def test_getitem(self):
        out = Tensor([[1.0, 2.0], [3.0, 4.0]])[1]
        assert np.allclose(out.data, [3.0, 4.0])

    def test_item_scalar(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)

    def test_concatenate(self):
        out = concatenate([Tensor([[1.0]]), Tensor([[2.0]])], axis=1)
        assert np.allclose(out.data, [[1.0, 2.0]])

    def test_stack(self):
        out = stack([Tensor([1.0, 2.0]), Tensor([3.0, 4.0])], axis=0)
        assert out.shape == (2, 2)

    def test_where(self):
        out = where(np.array([True, False]), Tensor([1.0, 1.0]), Tensor([2.0, 2.0]))
        assert np.allclose(out.data, [1.0, 2.0])

    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = x.detach()
        assert not y.requires_grad

    def test_len_and_size(self):
        x = Tensor(np.zeros((3, 2)))
        assert len(x) == 3
        assert x.size == 6


class TestBackward:
    def test_backward_requires_scalar(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2.0).backward()

    def test_add_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x + 3.0).sum().backward()
        assert np.allclose(x.grad, [1.0, 1.0])

    def test_mul_grad(self):
        x = Tensor([2.0], requires_grad=True)
        y = Tensor([5.0], requires_grad=True)
        (x * y).sum().backward()
        assert np.allclose(x.grad, [5.0])
        assert np.allclose(y.grad, [2.0])

    def test_broadcast_grad_shape(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        bias = Tensor(np.ones(2), requires_grad=True)
        (x + bias).sum().backward()
        assert bias.grad.shape == (2,)
        assert np.allclose(bias.grad, [3.0, 3.0])

    def test_matmul_grad(self):
        a = Tensor(np.array([[1.0, 2.0]]), requires_grad=True)
        b = Tensor(np.array([[3.0], [4.0]]), requires_grad=True)
        (a @ b).sum().backward()
        assert np.allclose(a.grad, [[3.0, 4.0]])
        assert np.allclose(b.grad, [[1.0], [2.0]])

    def test_grad_accumulates_over_reuse(self):
        x = Tensor([1.0], requires_grad=True)
        y = x * 2.0 + x * 3.0
        y.sum().backward()
        assert np.allclose(x.grad, [5.0])

    def test_relu_grad_zero_below(self):
        x = Tensor([-1.0, 2.0], requires_grad=True)
        x.relu().sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0])

    def test_getitem_grad_routes_to_slice(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        x[1:3].sum().backward()
        assert np.allclose(x.grad, [0.0, 1.0, 1.0, 0.0])

    def test_concatenate_grad_splits(self):
        a = Tensor([[1.0, 2.0]], requires_grad=True)
        b = Tensor([[3.0]], requires_grad=True)
        concatenate([a, b], axis=1).sum().backward()
        assert np.allclose(a.grad, [[1.0, 1.0]])
        assert np.allclose(b.grad, [[1.0]])

    @pytest.mark.parametrize(
        "function",
        [
            lambda x: (x * x).sum(),
            lambda x: (x.exp()).sum(),
            lambda x: (x.sigmoid()).sum(),
            lambda x: (x.tanh()).sum(),
            lambda x: (x.softplus()).sum(),
            lambda x: (x ** 3).mean(),
            lambda x: ((x + 2.0).log()).sum(),
            lambda x: (x.elu()).sum(),
        ],
    )
    def test_gradcheck_elementwise(self, function):
        x = Tensor(np.array([0.3, -0.4, 1.2]), requires_grad=True)
        assert check_gradients(lambda: function(x), [x])

    def test_gradcheck_matmul_chain(self):
        rng = np.random.default_rng(0)
        w1 = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        w2 = Tensor(rng.normal(size=(4, 1)), requires_grad=True)
        x = np.array([[0.5, -0.2, 0.3]])

        def loss():
            return ((Tensor(x) @ w1).relu() @ w2).sum()

        assert check_gradients(loss, [w1, w2])

    def test_gradcheck_max(self):
        x = Tensor(np.array([[0.3, 0.9, -0.2]]), requires_grad=True)
        assert check_gradients(lambda: x.max(axis=1).sum(), [x])


class TestUnbroadcast:
    def test_identity_when_shapes_match(self):
        grad = np.ones((2, 3))
        assert _unbroadcast(grad, (2, 3)).shape == (2, 3)

    def test_leading_dim_summed(self):
        grad = np.ones((4, 3))
        assert np.allclose(_unbroadcast(grad, (3,)), [4.0, 4.0, 4.0])

    def test_keepdim_axis_summed(self):
        grad = np.ones((2, 3))
        assert _unbroadcast(grad, (2, 1)).shape == (2, 1)

"""Pipelined ``execute_many`` equivalence: pooled execution changes the
wall-clock, never the answers.

The engine's parallel path must be bit-identical to sequential execution on
all four distances — results, plans, feedback windows, and drift telemetry —
including when the driving attribute fans out across shards on the same
runtime's pools.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.sampling import UniformSamplingEstimator
from repro.engine import ConjunctiveQuery, SimilarityPredicate, SimilarityQueryEngine
from repro.runtime import Runtime

DISTANCES = ["hamming", "edit", "jaccard", "euclidean"]
THETAS = {"hamming": 5.0, "edit": 3.0, "jaccard": 0.4, "euclidean": 1.5}


@pytest.fixture(scope="module")
def datasets():
    from repro.datasets import (
        make_binary_dataset,
        make_set_dataset,
        make_string_dataset,
        make_vector_dataset,
    )

    n = 180
    return {
        "hamming": make_binary_dataset(
            num_records=n, dimension=32, num_clusters=4, flip_probability=0.1,
            theta_max=12, seed=13, name="HM-Par",
        ),
        "edit": make_string_dataset(
            num_records=n, num_clusters=4, base_length=10, max_mutations=5,
            theta_max=6, seed=13, name="ED-Par",
        ),
        "jaccard": make_set_dataset(
            num_records=n, universe_size=60, num_clusters=4, base_set_size=12,
            theta_max=0.8, seed=13, name="JC-Par",
        ),
        "euclidean": make_vector_dataset(
            num_records=n, dimension=8, num_clusters=4, theta_max=4.0,
            seed=13, name="EU-Par",
        ),
    }


def _build_engine(datasets, execute_workers=4):
    engine = SimilarityQueryEngine(execute_workers=execute_workers)
    for name in DISTANCES:
        dataset = datasets[name]
        engine.register_attribute(
            name,
            dataset.records,
            name,
            UniformSamplingEstimator(dataset.records, name, sample_ratio=0.4, seed=3),
            theta_max=dataset.theta_max,
        )
    return engine


def _queries(datasets):
    queries = [
        SimilarityPredicate(name, datasets[name].records[index], THETAS[name])
        for index in (1, 7, 23, 40)
        for name in DISTANCES
    ]
    queries.append(
        ConjunctiveQuery(
            [
                SimilarityPredicate("hamming", datasets["hamming"].records[3], 6.0),
                SimilarityPredicate("jaccard", datasets["jaccard"].records[3], 0.5),
            ]
        )
    )
    return queries


def assert_result_lists_equal(results_a, results_b):
    assert len(results_a) == len(results_b)
    for a, b in zip(results_a, results_b):
        assert a.record_ids == b.record_ids
        assert a.driver_actual == b.driver_actual
        assert a.driver_candidates == b.driver_candidates
        assert a.verification_examined == b.verification_examined
        assert a.shard_counts == b.shard_counts
        assert a.plan.driver.attribute == b.plan.driver.attribute
        assert (
            a.plan.driver.estimated_cardinality == b.plan.driver.estimated_cardinality
        )
        assert [p.attribute for p in a.plan.residuals] == [
            p.attribute for p in b.plan.residuals
        ]


class TestBitIdenticalToSequential:
    def test_four_distance_workload(self, datasets):
        sequential_engine = _build_engine(datasets)
        parallel_engine = _build_engine(datasets)
        queries = _queries(datasets)

        sequential = sequential_engine.execute_many(queries, parallel=False)
        parallel = parallel_engine.execute_many(queries)
        assert_result_lists_equal(sequential, parallel)

        # The parallel engine actually used its pool.
        pool_stats = parallel_engine.runtime.stats()["engine-execute"]
        assert pool_stats["completed"] == len(queries)
        assert "engine-execute" not in sequential_engine.runtime.pool_names()

        # Feedback state is identical too: same windows, same observations.
        for name in DISTANCES:
            assert list(sequential_engine.feedback._windows.get(name, [])) == list(
                parallel_engine.feedback._windows.get(name, [])
            )
            assert (
                sequential_engine.service.telemetry.endpoint(name).observations
                == parallel_engine.service.telemetry.endpoint(name).observations
            )
        assert len(sequential_engine.feedback.events) == len(
            parallel_engine.feedback.events
        )

    def test_repeated_workload_hits_the_warm_cache_identically(self, datasets):
        engine = _build_engine(datasets)
        queries = _queries(datasets)
        first = engine.execute_many(queries)
        hits_before = engine.service.telemetry.endpoint("hamming").cache_hits
        second = engine.execute_many(queries)
        assert_result_lists_equal(first, second)
        assert engine.service.telemetry.endpoint("hamming").cache_hits > hits_before

    def test_single_query_and_empty_workload_stay_sequential(self, datasets):
        engine = _build_engine(datasets)
        assert engine.execute_many([]) == []
        query = SimilarityPredicate("hamming", datasets["hamming"].records[2], 5.0)
        result = engine.execute(query)
        assert result.record_ids  # the record itself at least
        assert "engine-execute" not in engine.runtime.pool_names()

    def test_workers_equal_one_disables_the_pool(self, datasets):
        engine = _build_engine(datasets, execute_workers=1)
        engine.execute_many(_queries(datasets))
        assert engine.runtime.pool_names() == []


class TestShardedDriverOnSharedRuntime:
    def test_sharded_fanout_and_pipelined_execution_share_one_runtime(self, datasets):
        dataset = datasets["hamming"]

        def build(execute_workers):
            engine = SimilarityQueryEngine(execute_workers=execute_workers)
            engine.register_sharded_attribute(
                "vec",
                dataset.records,
                "hamming",
                lambda records, shard: UniformSamplingEstimator(
                    records, "hamming", sample_ratio=0.5, seed=shard
                ),
                num_shards=3,
                theta_max=dataset.theta_max,
            )
            return engine

        queries = [
            SimilarityPredicate("vec", dataset.records[i], 6.0) for i in (2, 9, 31, 44)
        ]
        sequential = build(4).execute_many(queries, parallel=False)
        parallel_engine = build(4)
        parallel = parallel_engine.execute_many(queries)
        assert_result_lists_equal(sequential, parallel)
        for result in parallel:
            assert result.shard_counts is not None
            assert sum(result.shard_counts) == result.driver_actual

        # Both concurrency sites live on the engine's ONE runtime, and the
        # pools report through the service's telemetry.
        assert set(parallel_engine.runtime.pool_names()) == {
            "engine-execute",
            "shards",
        }
        snapshot = parallel_engine.service.telemetry.snapshot()
        assert snapshot["pool:engine-execute"]["requests"] == len(queries)
        assert snapshot["pool:shards"]["requests"] >= 3 * len(queries)

    def test_injected_runtime_is_shared_not_owned(self, datasets):
        runtime = Runtime()
        engine = _build_engine(datasets)
        other = SimilarityQueryEngine(runtime=runtime)
        assert other.runtime is runtime
        assert engine.runtime is not runtime

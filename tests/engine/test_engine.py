"""Tests for the end-to-end query engine: spec, planning, execution, feedback.

Load-bearing invariants:

* engine results are bit-identical to :class:`LinearScanSelector` ground truth
  for every distance type, whatever the estimator quality or plan shape;
* planning is batched (one service call per endpoint per workload);
* the feedback monitor's online q-error equals the offline metric on the same
  workload, and drift past the threshold flushes caches and revalidates.
"""

import numpy as np
import pytest

from repro.baselines import UniformSamplingEstimator
from repro.core.interface import CardinalityEstimator
from repro.distances import get_distance
from repro.engine import (
    ConjunctiveQuery,
    FeedbackMonitor,
    SimilarityPredicate,
    SimilarityQueryEngine,
    as_query,
)
from repro.metrics import mean_q_error
from repro.selection import LinearScanSelector
from repro.serving import EstimationService


class ConstantEstimator(CardinalityEstimator):
    """Deliberately wrong estimator (for drift tests)."""

    name = "Constant"
    monotonic = True

    def __init__(self, value: float = 1.0) -> None:
        self.value = float(value)

    def estimate_batch(self, records, thetas):
        return np.full(len(records), self.value)


class CountingEstimator(CardinalityEstimator):
    """Wrapper counting curve-batch calls reaching the model."""

    name = "Counting"
    monotonic = True

    def __init__(self, inner: CardinalityEstimator) -> None:
        self.inner = inner
        self.curve_calls = 0

    def estimate_batch(self, records, thetas):
        return self.inner.estimate_batch(records, thetas)

    def estimate_curve_many(self, records, thetas=None):
        self.curve_calls += 1
        return self.inner.estimate_curve_many(records, thetas)


class RecordingManager:
    """Stub with the revalidate() contract the feedback monitor drives."""

    def __init__(self) -> None:
        self.calls = 0

    def revalidate(self):
        self.calls += 1
        return None


def sampling_engine(dataset, **engine_kwargs) -> SimilarityQueryEngine:
    engine = SimilarityQueryEngine(**engine_kwargs)
    estimator = UniformSamplingEstimator(
        dataset.records, dataset.distance_name, sample_ratio=0.2, seed=0
    )
    engine.register_attribute(
        dataset.name,
        dataset.records,
        dataset.distance_name,
        estimator,
        theta_max=dataset.theta_max,
    )
    return engine


def query_thetas(dataset):
    if get_distance(dataset.distance_name).integer_valued:
        top = int(dataset.theta_max)
        return [1.0, float(max(1, top // 2)), float(top)]
    return [dataset.theta_max * 0.25, dataset.theta_max * 0.6, dataset.theta_max]


# --------------------------------------------------------------------------- #
# Query spec
# --------------------------------------------------------------------------- #
class TestSpec:
    def test_negative_theta_rejected(self):
        with pytest.raises(ValueError):
            SimilarityPredicate("a", "abc", -1.0)

    def test_empty_conjunction_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery([])

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery(
                [SimilarityPredicate("a", "x", 1.0), SimilarityPredicate("a", "y", 2.0)]
            )

    def test_as_query_wraps_predicates(self):
        predicate = SimilarityPredicate("a", "x", 1.0)
        query = as_query(predicate)
        assert query.predicates == [predicate]
        assert as_query(query) is query
        with pytest.raises(TypeError):
            as_query("not a query")


# --------------------------------------------------------------------------- #
# The engine invariant: exact results for every distance type
# --------------------------------------------------------------------------- #
class TestMatchesLinearScan:
    @pytest.fixture(
        params=["binary_dataset", "string_dataset", "set_dataset", "vector_dataset"]
    )
    def dataset(self, request):
        return request.getfixturevalue(request.param)

    def test_single_predicate_matches_ground_truth(self, dataset):
        engine = sampling_engine(dataset)
        ground_truth = LinearScanSelector(
            dataset.records, get_distance(dataset.distance_name)
        )
        rng = np.random.default_rng(11)
        for record_id in rng.choice(len(dataset.records), size=8, replace=False):
            record = dataset.records[int(record_id)]
            for theta in query_thetas(dataset):
                result = engine.execute(SimilarityPredicate(dataset.name, record, theta))
                assert result.record_ids == ground_truth.query(record, theta)

    def test_execute_many_matches_one_by_one(self, dataset):
        engine = sampling_engine(dataset)
        rng = np.random.default_rng(13)
        queries = [
            SimilarityPredicate(
                dataset.name,
                dataset.records[int(record_id)],
                query_thetas(dataset)[1],
            )
            for record_id in rng.choice(len(dataset.records), size=6, replace=False)
        ]
        bulk = engine.execute_many(queries)
        singles = [sampling_engine(dataset).execute(query) for query in queries]
        assert [r.record_ids for r in bulk] == [r.record_ids for r in singles]


class TestGPHHammingDriver:
    def test_gph_planned_results_are_exact(self, binary_dataset):
        engine = SimilarityQueryEngine()
        estimator = UniformSamplingEstimator(
            binary_dataset.records, "hamming", sample_ratio=0.2, seed=0
        )
        engine.register_attribute(
            "hm",
            binary_dataset.records,
            "hamming",
            estimator,
            theta_max=binary_dataset.theta_max,
            gph_part_size=8,
        )
        ground_truth = LinearScanSelector(binary_dataset.records, get_distance("hamming"))
        rng = np.random.default_rng(5)
        for record_id in rng.choice(len(binary_dataset.records), size=6, replace=False):
            record = binary_dataset.records[int(record_id)]
            threshold = float(rng.integers(2, int(binary_dataset.theta_max)))
            plan = engine.explain(SimilarityPredicate("hm", record, threshold))
            assert plan.allocation is not None
            assert sum(plan.allocation) >= max(0, int(threshold) - len(plan.allocation) + 1)
            result = engine.execute(SimilarityPredicate("hm", record, threshold))
            assert result.record_ids == ground_truth.query(record, threshold)
            assert result.driver_candidates >= result.driver_actual

    def test_part_endpoints_registered(self, binary_dataset):
        engine = SimilarityQueryEngine()
        estimator = UniformSamplingEstimator(
            binary_dataset.records, "hamming", sample_ratio=0.2, seed=0
        )
        binding = engine.register_attribute(
            "hm", binary_dataset.records, "hamming", estimator,
            theta_max=binary_dataset.theta_max, gph_part_size=8,
        )
        assert binding.uses_gph
        assert len(binding.part_endpoints) == len(binding.selector.parts)
        for endpoint in binding.part_endpoints:
            assert endpoint in engine.service.registry


# --------------------------------------------------------------------------- #
# Conjunctive execution
# --------------------------------------------------------------------------- #
class TestConjunctive:
    @pytest.fixture()
    def engine(self, relation):
        engine = SimilarityQueryEngine()
        for attribute, matrix in relation.attributes.items():
            engine.register_attribute(
                attribute,
                matrix,
                "euclidean",
                UniformSamplingEstimator(matrix, "euclidean", sample_ratio=0.3, seed=0),
                theta_max=1.0,
            )
        return engine

    @pytest.fixture()
    def queries(self, relation):
        rng = np.random.default_rng(3)
        queries = []
        for _ in range(6):
            record_id = int(rng.integers(0, len(relation)))
            predicates = [
                SimilarityPredicate(
                    attribute,
                    relation.attributes[attribute][record_id]
                    + rng.normal(0.0, 0.05, relation.attributes[attribute].shape[1]),
                    float(rng.uniform(0.3, 0.6)),
                )
                for attribute in relation.attribute_names
            ]
            queries.append(ConjunctiveQuery(predicates))
        return queries

    def test_results_equal_predicate_intersection(self, relation, engine, queries):
        scans = {
            attribute: LinearScanSelector(matrix, get_distance("euclidean"))
            for attribute, matrix in relation.attributes.items()
        }
        for query in queries:
            truth = None
            for predicate in query.predicates:
                matches = set(scans[predicate.attribute].query(predicate.record, predicate.theta))
                truth = matches if truth is None else truth & matches
            assert engine.execute(query).record_ids == sorted(truth)

    def test_plan_orders_by_estimate(self, engine, queries):
        for query in queries:
            plan = engine.explain(query)
            estimates = [plan.driver.estimated_cardinality] + [
                planned.estimated_cardinality for planned in plan.residuals
            ]
            assert plan.driver.estimated_cardinality == min(estimates)
            residual_estimates = estimates[1:]
            assert residual_estimates == sorted(residual_estimates)
            assert "drive" in plan.describe()

    def test_bulk_planning_one_batch_per_endpoint(self, relation, queries):
        engine = SimilarityQueryEngine()
        counters = {}
        for attribute, matrix in relation.attributes.items():
            counters[attribute] = CountingEstimator(
                UniformSamplingEstimator(matrix, "euclidean", sample_ratio=0.3, seed=0)
            )
            engine.register_attribute(
                attribute, matrix, "euclidean", counters[attribute], theta_max=1.0
            )
        engine.execute_many(queries)
        for counter in counters.values():
            # Distinct records across the workload reach the model as ONE
            # curve micro-batch through the serving layer.
            assert counter.curve_calls == 1

    def test_unknown_attribute_fails_fast(self, engine):
        with pytest.raises(KeyError):
            engine.execute(SimilarityPredicate("nope", np.zeros(12), 0.3))


# --------------------------------------------------------------------------- #
# Feedback loop
# --------------------------------------------------------------------------- #
class TestFeedback:
    def test_online_q_error_matches_offline_metric(self, vector_dataset):
        engine = sampling_engine(vector_dataset)
        rng = np.random.default_rng(7)
        queries = [
            SimilarityPredicate(
                vector_dataset.name,
                vector_dataset.records[int(record_id)],
                float(rng.uniform(0.2, vector_dataset.theta_max)),
            )
            for record_id in rng.choice(len(vector_dataset.records), size=12, replace=False)
        ]
        results = engine.execute_many(queries)
        estimates = [result.plan.driver.estimated_cardinality for result in results]
        actuals = [result.driver_actual for result in results]
        assert engine.feedback.online_q_error(vector_dataset.name) == pytest.approx(
            mean_q_error(actuals, estimates)
        )
        stats = engine.stats()["service"]["endpoints"][vector_dataset.name]
        assert stats["observations"] == len(queries)
        assert stats["mean_q_error"] == pytest.approx(mean_q_error(actuals, estimates))

    def test_drift_triggers_invalidation_and_revalidation(self, vector_dataset):
        engine = sampling_engine(
            vector_dataset, drift_threshold=1.5, min_feedback_observations=4
        )
        name = vector_dataset.name
        # Replace the endpoint's estimator with a wildly wrong one: cached
        # curves exist from registration time onward and estimates drift.
        engine.service.unregister(name)
        engine.service.register(
            name, ConstantEstimator(10_000.0), theta_max=vector_dataset.theta_max
        )
        manager = RecordingManager()
        engine.feedback.attach_manager(name, manager)
        rng = np.random.default_rng(9)
        queries = [
            SimilarityPredicate(
                name,
                vector_dataset.records[int(record_id)],
                vector_dataset.theta_max * 0.5,
            )
            for record_id in rng.choice(len(vector_dataset.records), size=8, replace=False)
        ]
        engine.execute_many(queries)
        assert engine.feedback.events, "drift should have fired"
        event = engine.feedback.events[0]
        assert event.endpoint == name
        assert event.window_q_error > 1.5
        assert event.curves_invalidated > 0
        assert manager.calls == len(engine.feedback.events)
        assert engine.service.telemetry.endpoint(name).drift_events == len(
            engine.feedback.events
        )
        # The window resets after a repair, so one burst fires one event
        # per min_observations more, not one per query.
        assert len(engine.feedback.events) <= len(queries) // 4

    def test_monitor_validates_configuration(self):
        service = EstimationService()
        with pytest.raises(ValueError):
            FeedbackMonitor(service, drift_threshold=0.5)
        monitor = FeedbackMonitor(service)
        with pytest.raises(TypeError):
            monitor.attach_manager("x", object())

    def test_monitor_rejects_unreachable_min_observations(self):
        """min_observations > window_size can never be met (the deque caps at
        window_size), so drift would silently never fire — reject loudly
        instead of clamping (regression)."""
        service = EstimationService()
        with pytest.raises(ValueError):
            FeedbackMonitor(service, window_size=8, min_observations=9)
        # The boundary configuration is legal and fires.
        service.register("e", ConstantEstimator(1.0), theta_max=4.0)
        monitor = FeedbackMonitor(
            service, drift_threshold=2.0, window_size=4, min_observations=4
        )
        event = None
        for _ in range(4):
            event = monitor.observe("e", estimated=1.0, actual=1000.0)
        assert event is not None


# --------------------------------------------------------------------------- #
# Updates through the engine
# --------------------------------------------------------------------------- #
class TestUpdates:
    def test_update_without_manager_keeps_results_exact(self, vector_dataset):
        from repro.datasets.updates import UpdateOperation

        engine = sampling_engine(vector_dataset)
        name = vector_dataset.name
        rng = np.random.default_rng(4)
        new_records = [
            vector_dataset.records[int(i)] * 0.9
            for i in rng.integers(0, len(vector_dataset.records), size=5)
        ]
        engine.apply_update(name, UpdateOperation("insert", new_records))
        updated = engine.catalog.get(name).records
        assert len(updated) == len(vector_dataset.records) + 5
        ground_truth = LinearScanSelector(updated, get_distance("euclidean"))
        record = updated[0]
        result = engine.execute(SimilarityPredicate(name, record, 0.4))
        assert result.record_ids == ground_truth.query(record, 0.4)

    def test_update_rebuilds_gph_part_endpoints(self, binary_dataset):
        from repro.datasets.updates import UpdateOperation

        engine = SimilarityQueryEngine()
        estimator = UniformSamplingEstimator(
            binary_dataset.records, "hamming", sample_ratio=0.2, seed=0
        )
        binding = engine.register_attribute(
            "hm", binary_dataset.records, "hamming", estimator,
            theta_max=binary_dataset.theta_max, gph_part_size=8,
        )
        before = list(binding.part_endpoints)
        engine.apply_update("hm", UpdateOperation("delete", [0, 1, 2]))
        assert len(binding.records) == len(binary_dataset.records) - 3
        assert binding.part_endpoints == before  # same names, fresh histograms
        ground_truth = LinearScanSelector(binding.records, get_distance("hamming"))
        record = binding.records[0]
        result = engine.execute(SimilarityPredicate("hm", record, 5.0))
        assert result.record_ids == ground_truth.query(record, 5.0)

    def test_selector_and_gph_part_size_are_exclusive(self, binary_dataset):
        from repro.selection import PackedHammingSelector

        engine = SimilarityQueryEngine()
        estimator = UniformSamplingEstimator(
            binary_dataset.records, "hamming", sample_ratio=0.2, seed=0
        )
        with pytest.raises(ValueError):
            engine.register_attribute(
                "hm", binary_dataset.records, "hamming", estimator,
                selector=PackedHammingSelector(binary_dataset.records),
                theta_max=binary_dataset.theta_max, gph_part_size=8,
            )

    def test_engine_query_rejected_by_optimizer_processor(self, relation):
        """The two ConjunctiveQuery classes must not silently cross layers."""
        from repro.optimizer import ConjunctiveQueryProcessor

        processor = ConjunctiveQueryProcessor(relation, num_pivots=8, seed=0)
        attribute = relation.attribute_names[0]
        engine_query = ConjunctiveQuery(
            [SimilarityPredicate(attribute, relation.attributes[attribute][0], 0.3)]
        )
        with pytest.raises(TypeError):
            processor.plan_estimates([engine_query], {})

"""ReplicaSet process mode + mmap'd replica restores.

Process-mode replica sets must answer identically to thread-mode ones (every
worker's engine is a restore of the same snapshot), keep the routing/telemetry
accounting intact with replica ids as pure labels, and refuse construction
without a snapshot path to load workers from.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.sampling import UniformSamplingEstimator
from repro.engine import SimilarityPredicate, SimilarityQueryEngine
from repro.runtime import fork_available
from repro.store import ReplicaSet, load_engine, save_engine
from repro.store.replicas import REPLICA_PROCESS_POOL


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    from repro.datasets import make_binary_dataset

    dataset = make_binary_dataset(
        num_records=200, dimension=32, num_clusters=4, flip_probability=0.1,
        theta_max=12, seed=9, name="HM-ProcReplica",
    )
    engine = SimilarityQueryEngine()
    engine.register_attribute(
        "vec",
        dataset.records,
        "hamming",
        UniformSamplingEstimator(dataset.records, "hamming", sample_ratio=0.4, seed=2),
        theta_max=dataset.theta_max,
    )
    path = tmp_path_factory.mktemp("proc-replicas") / "snap"
    save_engine(engine, path)
    return path, dataset


def _queries(dataset, count=12):
    return [
        SimilarityPredicate("vec", dataset.records[i % len(dataset.records)], 5.0)
        for i in range(count)
    ]


class TestMmapReplicas:
    def test_mmap_replicas_answer_identically(self, snapshot):
        path, dataset = snapshot
        copied = ReplicaSet.from_snapshot(path, 2)
        mapped = ReplicaSet.from_snapshot(path, 2, mmap=True)
        queries = _queries(dataset, 6)
        for a, b in zip(copied.execute_many(queries), mapped.execute_many(queries)):
            assert a.record_ids == b.record_ids
        copied.runtime.shutdown()
        mapped.runtime.shutdown()

    def test_mmap_engine_arrays_are_views(self, snapshot):
        path, _ = snapshot
        engine = load_engine(path, mmap=True)
        selector = engine.catalog.get("vec").selector
        packed = np.asarray(selector._packed)
        assert not packed.flags.writeable  # read-only view, not a copy


@pytest.mark.skipif(not fork_available(), reason="process backend needs fork")
class TestProcessReplicas:
    def test_answers_match_thread_mode(self, snapshot):
        path, dataset = snapshot
        threads = ReplicaSet.from_snapshot(path, 3)
        processes = ReplicaSet.from_snapshot(path, 3, backend="process")
        queries = _queries(dataset, 12)
        expected = threads.execute_many(queries)
        actual = processes.execute_many(queries)
        for a, b in zip(expected, actual):
            assert a.record_ids == b.record_ids
            assert a.plan.driver.estimated_cardinality == b.plan.driver.estimated_cardinality
        # Routing labels + counts behave exactly like thread mode.
        assert len(processes) == 3
        assert processes.query_counts() == threads.query_counts()
        assert processes.stats()["backend"] == "process"
        assert processes.runtime.stats()[REPLICA_PROCESS_POOL]["backend"] == "process"
        threads.runtime.shutdown()
        processes.runtime.shutdown()

    def test_second_batch_reuses_warm_workers(self, snapshot):
        path, dataset = snapshot
        replicas = ReplicaSet.from_snapshot(path, 2, backend="process")
        queries = _queries(dataset, 8)
        first = replicas.execute_many(queries)
        second = replicas.execute_many(queries)
        for a, b in zip(first, second):
            assert a.record_ids == b.record_ids
        assert sum(replicas.query_counts()) == 16
        replicas.runtime.shutdown()

    def test_explain_plans_on_parent_copy(self, snapshot):
        path, dataset = snapshot
        replicas = ReplicaSet.from_snapshot(path, 2, backend="process")
        plan = replicas.explain(_queries(dataset, 1)[0])
        assert plan.driver.estimated_cardinality >= 0
        assert replicas.query_counts() == [0, 0]  # explain is not load
        replicas.runtime.shutdown()

    def test_process_mode_requires_snapshot_path(self, snapshot):
        path, _ = snapshot
        engine = load_engine(path)
        with pytest.raises(ValueError, match="snapshot path"):
            ReplicaSet([engine], backend="process")

    def test_writes_still_refused(self, snapshot):
        path, _ = snapshot
        replicas = ReplicaSet.from_snapshot(path, 2, backend="process")
        with pytest.raises(RuntimeError, match="read-only"):
            replicas.apply_update()
        replicas.runtime.shutdown()

"""The pinned on-disk format: explicit dtype/byte order, loud failures."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.store import FORMAT_VERSION, SnapshotFormatError
from repro.store.format import (
    MANIFEST_FILENAME,
    ArrayReader,
    ArrayWriter,
    SnapshotManifest,
    read_manifest,
    read_snapshot,
    write_snapshot,
)


def _payload_file(directory):
    """The committed payload (content-named): resolve it via the manifest."""
    return directory / read_manifest(directory).payload_file


def roundtrip(arrays):
    writer = ArrayWriter()
    indices = [writer.add(array) for array in arrays]
    reader = ArrayReader(writer.payload(), writer.entries)
    return [reader.get(index) for index in indices]


class TestArrayRoundTrip:
    @pytest.mark.parametrize(
        "array",
        [
            np.arange(12, dtype=np.float64).reshape(3, 4),
            np.arange(7, dtype=np.int64),
            np.array([1, 0, 1], dtype=np.uint8),
            np.array([True, False, True]),
            np.linspace(0, 1, 9, dtype=np.float32).reshape(3, 3),
            np.array([], dtype=np.float64),
            np.array(3.5),  # 0-d
            np.array(["ab", "cde", ""], dtype="<U3"),
            np.array([b"xy", b"z"], dtype="|S2"),
            np.array([np.nan, np.inf, -np.inf, -0.0]),
        ],
        ids=["f8-2d", "i8", "u1", "bool", "f4-2d", "empty", "scalar", "U", "S", "nonfinite"],
    )
    def test_bit_identical_values(self, array):
        (restored,) = roundtrip([array])
        assert restored.shape == array.shape
        assert restored.dtype.kind == array.dtype.kind
        assert restored.dtype.itemsize == array.dtype.itemsize
        np.testing.assert_array_equal(restored, array)
        if array.dtype.kind in "iuf":
            # Bit-identical, not merely value-equal (NaN payloads and -0.0
            # included): compare the raw little-endian bytes.
            little = array.dtype.newbyteorder("<")
            assert (
                np.ascontiguousarray(restored).astype(little).tobytes()
                == np.ascontiguousarray(array).astype(little).tobytes()
            )

    def test_big_endian_input_restores_native_with_identical_values(self):
        array = np.arange(6, dtype=">f8").reshape(2, 3)
        (restored,) = roundtrip([array])
        assert restored.dtype.byteorder in ("=", "<", "|")
        np.testing.assert_array_equal(restored, array)

    def test_restored_arrays_are_writeable_owned_copies(self):
        (restored,) = roundtrip([np.arange(4.0)])
        assert restored.flags.writeable
        restored[0] = 99.0  # must not raise

    def test_entries_pin_explicit_little_endian_dtype(self):
        writer = ArrayWriter()
        writer.add(np.arange(3, dtype=np.float64))
        writer.add(np.array([1], dtype=np.uint8))
        dtypes = [entry.dtype for entry in writer.entries]
        assert dtypes == ["<f8", "|u1"]

    def test_same_index_returns_same_object(self):
        writer = ArrayWriter()
        index = writer.add(np.arange(5.0))
        reader = ArrayReader(writer.payload(), writer.entries)
        assert reader.get(index) is reader.get(index)

    def test_object_dtype_is_rejected_loudly(self):
        from repro.store import SnapshotError

        writer = ArrayWriter()
        with pytest.raises(SnapshotError, match="object-dtype"):
            writer.add(np.array([object()], dtype=object))

    def test_checksum_mismatch_raises(self):
        writer = ArrayWriter()
        index = writer.add(np.arange(8, dtype=np.int64))
        payload = bytearray(writer.payload())
        payload[3] ^= 0xFF
        reader = ArrayReader(bytes(payload), writer.entries)
        with pytest.raises(SnapshotFormatError, match="SHA-256"):
            reader.get(index)

    def test_truncated_payload_raises(self):
        writer = ArrayWriter()
        index = writer.add(np.arange(8, dtype=np.int64))
        reader = ArrayReader(writer.payload()[:-4], writer.entries)
        with pytest.raises(SnapshotFormatError, match="truncated"):
            reader.get(index)


def _write_minimal_snapshot(path, values=None):
    writer = ArrayWriter()
    index = writer.add(
        np.arange(10, dtype=np.float64) if values is None else np.asarray(values)
    )
    manifest = SnapshotManifest(
        version=FORMAT_VERSION,
        kind="component",
        root={"t": "array", "id": index},
        objects=[],
        arrays=writer.entries,
        payload_sha256="",
        payload_bytes=0,
    )
    return write_snapshot(path, manifest, writer.payload())


class TestSnapshotFiles:
    def test_write_read_verifies(self, tmp_path):
        directory = _write_minimal_snapshot(tmp_path / "snap")
        manifest, payload = read_snapshot(directory)
        assert manifest.version == FORMAT_VERSION
        restored = ArrayReader(payload, manifest.arrays).get(0)
        np.testing.assert_array_equal(restored, np.arange(10, dtype=np.float64))

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(SnapshotFormatError, match="no snapshot"):
            read_snapshot(tmp_path / "nowhere")

    def test_corrupt_payload_raises(self, tmp_path):
        directory = _write_minimal_snapshot(tmp_path / "snap")
        payload_file = _payload_file(directory)
        data = bytearray(payload_file.read_bytes())
        data[0] ^= 0xFF
        payload_file.write_bytes(bytes(data))
        with pytest.raises(SnapshotFormatError, match="checksum"):
            read_snapshot(directory)

    def test_truncated_payload_raises(self, tmp_path):
        directory = _write_minimal_snapshot(tmp_path / "snap")
        payload_file = _payload_file(directory)
        payload_file.write_bytes(payload_file.read_bytes()[:-1])
        with pytest.raises(SnapshotFormatError, match="partial restore"):
            read_snapshot(directory)

    def test_resave_over_existing_directory_is_crash_safe(self, tmp_path):
        directory = _write_minimal_snapshot(tmp_path / "snap")
        old_payload = _payload_file(directory)
        # A crash AFTER a new payload lands but BEFORE the manifest commit
        # must leave the old snapshot fully readable (content-named payloads
        # never overwrite the committed one).
        (directory / "arrays-0123456789ab.bin").write_bytes(b"half-written new payload")
        manifest, payload = read_snapshot(directory)
        np.testing.assert_array_equal(
            ArrayReader(payload, manifest.arrays).get(0), np.arange(10, dtype=np.float64)
        )
        # A completed re-save commits the new content and cleans up stale
        # payloads, including the fake crash leftover.
        _write_minimal_snapshot(directory, values=np.ones(3))
        new_payload = _payload_file(directory)
        assert new_payload != old_payload
        leftovers = sorted(p.name for p in directory.glob("arrays*"))
        assert leftovers == [new_payload.name]
        manifest, payload = read_snapshot(directory)
        np.testing.assert_array_equal(
            ArrayReader(payload, manifest.arrays).get(0), np.ones(3)
        )

    def test_manifest_with_unsafe_payload_name_raises(self, tmp_path):
        directory = _write_minimal_snapshot(tmp_path / "snap")
        manifest_file = directory / MANIFEST_FILENAME
        data = json.loads(manifest_file.read_text())
        data["payload"] = "../outside.bin"
        manifest_file.write_text(json.dumps(data))
        with pytest.raises(SnapshotFormatError, match="unsafe payload"):
            read_snapshot(directory)

    def test_version_mismatch_raises(self, tmp_path):
        directory = _write_minimal_snapshot(tmp_path / "snap")
        manifest_file = directory / MANIFEST_FILENAME
        data = json.loads(manifest_file.read_text())
        data["version"] = FORMAT_VERSION + 1
        manifest_file.write_text(json.dumps(data))
        with pytest.raises(SnapshotFormatError, match="version"):
            read_snapshot(directory)

    def test_foreign_format_name_raises(self, tmp_path):
        directory = _write_minimal_snapshot(tmp_path / "snap")
        manifest_file = directory / MANIFEST_FILENAME
        data = json.loads(manifest_file.read_text())
        data["format"] = "something-else"
        manifest_file.write_text(json.dumps(data))
        with pytest.raises(SnapshotFormatError, match="manifest"):
            read_snapshot(directory)

    def test_garbage_manifest_raises(self, tmp_path):
        directory = _write_minimal_snapshot(tmp_path / "snap")
        (directory / MANIFEST_FILENAME).write_text("{not json")
        with pytest.raises(SnapshotFormatError, match="unreadable"):
            read_snapshot(directory)

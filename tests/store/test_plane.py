"""SharedDataPlane + mmap'd snapshot loads: the zero-copy data path.

Covers the plane publish/attach lifecycle (content naming, memoized
attachment, corruption refusal, read-only views), the mmap and lazy array
readers behind ``load_arrays``/``load_component``, and the O(metadata)
allocation guarantee of ``load_engine(mmap=True)``.
"""

import tracemalloc

import numpy as np
import pytest

from repro.store import (
    SharedDataPlane,
    SnapshotFormatError,
    attach_plane,
    cached_rebuild,
    load_arrays,
    load_component,
    save_component,
)
from repro.store.plane import _ATTACHED, _REBUILT, _clear_attachments


@pytest.fixture(autouse=True)
def clean_plane_caches():
    _clear_attachments()
    yield
    _clear_attachments()


def _arrays(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "matrix": rng.normal(size=(50, 8)),
        "ids": np.arange(50, dtype=np.int64),
    }


class TestSharedDataPlane:
    def test_publish_attach_roundtrip(self, tmp_path):
        plane = SharedDataPlane(tmp_path)
        arrays = _arrays()
        handle = plane.publish(arrays, meta={"kind": "test", "count": 50})
        attached = handle.attach()
        for name, original in arrays.items():
            assert np.array_equal(attached[name], original)
        assert handle.metadata == {"kind": "test", "count": 50}

    def test_handle_is_picklable_and_small(self, tmp_path):
        import pickle

        plane = SharedDataPlane(tmp_path)
        handle = plane.publish(_arrays())
        wire = pickle.dumps(handle)
        assert len(wire) < 4096  # path + offsets + sha, never the arrays
        attached = pickle.loads(wire).attach()
        assert np.array_equal(attached["ids"], np.arange(50))

    def test_republish_identical_content_reuses_file(self, tmp_path):
        plane = SharedDataPlane(tmp_path)
        first = plane.publish(_arrays())
        second = plane.publish(_arrays())
        assert first.path == second.path
        assert first.fingerprint == second.fingerprint
        assert len(list(tmp_path.glob("plane-*.bin"))) == 1

    def test_attached_views_are_read_only(self, tmp_path):
        plane = SharedDataPlane(tmp_path)
        handle = plane.publish(_arrays())
        attached = attach_plane(handle)
        with pytest.raises((ValueError, RuntimeError)):
            attached["matrix"][0, 0] = 1.0

    def test_attach_plane_memoizes_per_process(self, tmp_path):
        plane = SharedDataPlane(tmp_path)
        handle = plane.publish(_arrays())
        first = attach_plane(handle)
        second = attach_plane(handle)
        assert first is second
        assert handle.fingerprint in _ATTACHED

    def test_cached_rebuild_builds_once(self, tmp_path):
        plane = SharedDataPlane(tmp_path)
        handle = plane.publish(_arrays(), meta={"tag": 1})
        calls = []

        def builder(arrays, meta):
            calls.append(meta)
            return arrays["ids"].sum()

        assert cached_rebuild(handle, "sum", builder) == 50 * 49 // 2
        assert cached_rebuild(handle, "sum", builder) == 50 * 49 // 2
        assert len(calls) == 1
        assert ("sum" in key[1] for key in _REBUILT)

    def test_corrupted_payload_refuses_loudly(self, tmp_path):
        plane = SharedDataPlane(tmp_path)
        handle = plane.publish(_arrays())
        payload = bytearray((tmp_path / handle.path.split("/")[-1]).read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        (tmp_path / handle.path.split("/")[-1]).write_bytes(bytes(payload))
        with pytest.raises(SnapshotFormatError):
            handle.attach()

    def test_truncated_payload_refuses_loudly(self, tmp_path):
        plane = SharedDataPlane(tmp_path)
        handle = plane.publish(_arrays())
        target = tmp_path / handle.path.split("/")[-1]
        target.write_bytes(target.read_bytes()[:-10])
        with pytest.raises(SnapshotFormatError):
            handle.attach()

    def test_missing_payload_refuses_loudly(self, tmp_path):
        plane = SharedDataPlane(tmp_path)
        handle = plane.publish(_arrays())
        plane.cleanup()
        with pytest.raises(SnapshotFormatError):
            handle.attach()

    def test_cleanup_removes_owned_tempdir(self):
        plane = SharedDataPlane()
        directory = plane.directory
        plane.publish(_arrays())
        plane.cleanup()
        assert not directory.exists()


class TestMmapSnapshotLoads:
    def test_load_arrays_mmap_and_lazy_agree(self, tmp_path):
        payload = {"a": np.arange(12.0).reshape(3, 4), "b": np.arange(5)}
        save_component(payload, tmp_path / "snap")
        mapped = load_arrays(tmp_path / "snap", mmap=True)
        copied = load_arrays(tmp_path / "snap", mmap=False)
        assert len(mapped) == len(copied)
        for view, copy in zip(mapped, copied):
            assert np.array_equal(np.asarray(view), copy)

    def test_mmap_views_read_only_lazy_copies_writeable(self, tmp_path):
        save_component({"a": np.arange(6.0)}, tmp_path / "snap")
        (view,) = [a for a in load_arrays(tmp_path / "snap", mmap=True) if a.size == 6]
        with pytest.raises((ValueError, RuntimeError)):
            view[0] = 9.0
        (copy,) = [a for a in load_arrays(tmp_path / "snap", mmap=False) if a.size == 6]
        copy[0] = 9.0  # independent native copy: mutation is fine

    def test_load_arrays_indices_subset(self, tmp_path):
        save_component({"a": np.arange(4), "b": np.ones(3)}, tmp_path / "snap")
        subset = load_arrays(tmp_path / "snap", indices=[0], mmap=False)
        assert len(subset) == 1

    def test_corrupted_payload_refused_on_mmap_open(self, tmp_path):
        save_component({"a": np.arange(64.0)}, tmp_path / "snap")
        payload_file = next((tmp_path / "snap").glob("arrays-*.bin"))
        corrupted = bytearray(payload_file.read_bytes())
        corrupted[10] ^= 0x01
        payload_file.write_bytes(bytes(corrupted))
        with pytest.raises(SnapshotFormatError):
            load_arrays(tmp_path / "snap", mmap=True)
        with pytest.raises(SnapshotFormatError):
            load_arrays(tmp_path / "snap", mmap=False)

    def test_component_roundtrip_mmap(self, tmp_path):
        payload = {"weights": np.linspace(0, 1, 32), "grid": np.arange(7)}
        save_component(payload, tmp_path / "snap")
        restored = load_component(tmp_path / "snap", mmap=True)
        assert np.array_equal(restored["weights"], payload["weights"])
        assert np.array_equal(restored["grid"], payload["grid"])


class TestMmapEngineIsOMetadata:
    def test_mmap_load_allocates_far_less_than_payload(self, tmp_path):
        # A component dominated by one big array: the mmap'd load must NOT
        # materialize it.
        big = np.random.default_rng(0).normal(size=(2000, 2000))  # 32 MB
        info = save_component({"big": big, "small": np.arange(4)}, tmp_path / "snap")
        assert info.payload_bytes > 30_000_000
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        restored = load_component(tmp_path / "snap", mmap=True)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # O(metadata) + the fixed 1 MB streaming-checksum chunks — never the
        # 32 MB array itself.
        assert peak - before < 4_000_000
        assert peak - before < info.payload_bytes // 8
        assert restored["big"].shape == (2000, 2000)
        assert float(restored["big"][7, 13]) == float(big[7, 13])

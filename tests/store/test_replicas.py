"""ReplicaSet: snapshot-spawned read replicas with deterministic routing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.sampling import UniformSamplingEstimator
from repro.engine import SimilarityPredicate, SimilarityQueryEngine
from repro.store import ReplicaSet, save_engine


@pytest.fixture(scope="module")
def snapshot_path(tmp_path_factory):
    from repro.datasets import make_binary_dataset

    dataset = make_binary_dataset(
        num_records=200, dimension=32, num_clusters=4, flip_probability=0.1,
        theta_max=12, seed=9, name="HM-Replica",
    )
    engine = SimilarityQueryEngine()
    engine.register_attribute(
        "vec",
        dataset.records,
        "hamming",
        UniformSamplingEstimator(dataset.records, "hamming", sample_ratio=0.4, seed=2),
        theta_max=dataset.theta_max,
    )
    path = tmp_path_factory.mktemp("replicas") / "snap"
    save_engine(engine, path)
    return path, dataset, engine


def _queries(dataset, count=12):
    return [
        SimilarityPredicate("vec", dataset.records[i % len(dataset.records)], 5.0)
        for i in range(count)
    ]


class TestSpawning:
    def test_replicas_are_independent_engines(self, snapshot_path):
        path, dataset, _ = snapshot_path
        replicas = ReplicaSet.from_snapshot(path, 3)
        assert len(replicas) == 3
        services = {id(replica.service) for replica in replicas.replicas}
        assert len(services) == 3  # no shared serving state between replicas
        # Warming one replica's cache leaves the others cold.
        replicas.replicas[0].service.estimate_curve("vec", dataset.records[0])
        assert len(replicas.replicas[0].service.cache) == 1
        assert len(replicas.replicas[1].service.cache) == 0

    def test_replica_answers_match_primary(self, snapshot_path):
        path, dataset, primary = snapshot_path
        replicas = ReplicaSet.from_snapshot(path, 2)
        for query in _queries(dataset, 4):
            expected = primary.explain(query)
            for replica in replicas.replicas:
                result = replica.execute(query)
                assert result.plan.driver.estimated_cardinality == expected.driver.estimated_cardinality
        answered = replicas.execute_many(_queries(dataset, 6))
        assert [len(result) for result in answered] == [
            len(primary.execute(query)) for query in _queries(dataset, 6)
        ]

    def test_bad_arguments(self, snapshot_path):
        path, _, _ = snapshot_path
        with pytest.raises(ValueError, match="num_replicas"):
            ReplicaSet.from_snapshot(path, 0)
        with pytest.raises(ValueError, match="routing"):
            ReplicaSet.from_snapshot(path, 1, routing="chaotic")


class TestRouting:
    def test_round_robin_is_balanced_and_deterministic(self, snapshot_path):
        path, dataset, _ = snapshot_path
        replicas = ReplicaSet.from_snapshot(path, 3, routing="round_robin")
        replicas.execute_many(_queries(dataset, 12))
        assert replicas.query_counts() == [4, 4, 4]

    def test_least_loaded_balances(self, snapshot_path):
        path, dataset, _ = snapshot_path
        replicas = ReplicaSet.from_snapshot(path, 3, routing="least_loaded")
        replicas.execute_many(_queries(dataset, 10))
        counts = replicas.query_counts()
        assert sum(counts) == 10 and max(counts) - min(counts) <= 1

    def test_random_routing_is_deterministic_under_seed(self, snapshot_path):
        path, _, _ = snapshot_path
        first = ReplicaSet.from_snapshot(path, 4, routing="random", seed=77)
        second = ReplicaSet.from_snapshot(path, 4, routing="random", seed=77)
        other = ReplicaSet.from_snapshot(path, 4, routing="random", seed=78)
        picks_a = [first._pick() for _ in range(32)]
        picks_b = [second._pick() for _ in range(32)]
        picks_c = [other._pick() for _ in range(32)]
        assert picks_a == picks_b
        assert picks_a != picks_c  # different seed, different stream

    def test_explain_does_not_skew_load(self, snapshot_path):
        path, dataset, _ = snapshot_path
        replicas = ReplicaSet.from_snapshot(path, 2)
        replicas.explain(_queries(dataset, 1)[0])
        assert replicas.query_counts() == [0, 0]


class TestTelemetryAndWrites:
    def test_per_replica_counts_flow_through_serving_telemetry(self, snapshot_path):
        path, dataset, _ = snapshot_path
        replicas = ReplicaSet.from_snapshot(path, 3, routing="round_robin")
        replicas.execute_many(_queries(dataset, 9))
        snapshot = replicas.telemetry.snapshot()
        for index in range(3):
            name = ReplicaSet.replica_name(index)
            assert snapshot[name]["requests"] == 3
            assert snapshot[name]["latency_seconds"] > 0.0
        assert snapshot["total"]["requests"] == 9
        stats = replicas.stats()
        assert stats["query_counts"] == [3, 3, 3]
        assert stats["routing"] == "round_robin"

    def test_replica_set_is_read_only(self, snapshot_path):
        path, _, _ = snapshot_path
        replicas = ReplicaSet.from_snapshot(path, 1)
        with pytest.raises(RuntimeError, match="read-only"):
            replicas.apply_update("vec", None)

    def test_failed_share_rolls_back_counts_and_keeps_other_telemetry(self, snapshot_path):
        path, dataset, _ = snapshot_path
        replicas = ReplicaSet.from_snapshot(path, 2, routing="round_robin")
        good = _queries(dataset, 3)
        bad = SimilarityPredicate("no_such_attribute", dataset.records[0], 1.0)
        # round_robin: queries 0/2 → replica 0 (good), queries 1/3 → replica 1
        # (one good, one bad) — replica 1's whole share fails.
        with pytest.raises(KeyError, match="no_such_attribute"):
            replicas.execute_many([good[0], good[1], good[2], bad])
        # The failed share's 2 queries are rolled out of the load counts, so
        # counts and telemetry agree: only replica 0's work happened.
        assert replicas.query_counts() == [2, 0]
        snapshot = replicas.telemetry.snapshot()
        assert snapshot["replica0"]["requests"] == 2
        assert "replica1" not in snapshot


class TestShardReplicaComposition:
    def test_shard_times_replica_topology(self, tmp_path):
        from repro.datasets import make_binary_dataset

        dataset = make_binary_dataset(
            num_records=240, dimension=32, num_clusters=4, flip_probability=0.1,
            theta_max=12, seed=11, name="HM-ShardReplica",
        )
        engine = SimilarityQueryEngine()
        engine.register_sharded_attribute(
            "vec",
            dataset.records,
            "hamming",
            lambda records, shard: UniformSamplingEstimator(
                records, "hamming", sample_ratio=0.5, seed=shard
            ),
            num_shards=4,
            theta_max=dataset.theta_max,
        )
        query = SimilarityPredicate("vec", dataset.records[7], 6.0)
        expected = engine.execute(query)
        save_engine(engine, tmp_path / "snap")

        replicas = ReplicaSet.from_snapshot(tmp_path / "snap", 2)
        for replica in replicas.replicas:
            result = replica.execute(query)
            assert result.record_ids == expected.record_ids
            assert result.shard_counts == expected.shard_counts  # full fan-out
        routed = replicas.execute_many([query] * 4)
        assert all(r.record_ids == expected.record_ids for r in routed)
        assert replicas.query_counts() == [2, 2]

"""Restore equivalence: a loaded engine behaves bit-identically to the saved one.

Covers every acceptance property of the snapshot subsystem: identical
``estimate_batch``/curve answers, identical :class:`QueryPlan`s and
:class:`QueryResult`s on all four distances (cold and warm cache alike),
GPH per-part allocations, sharded deployments (including post-restore
updates), manager identity re-wiring, and the drift/retrain loop resuming
exactly where the original left off.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.sampling import UniformSamplingEstimator
from repro.core import CardNetEstimator
from repro.core.incremental import IncrementalUpdateManager
from repro.datasets.updates import UpdateOperation
from repro.engine import ConjunctiveQuery, SimilarityPredicate, SimilarityQueryEngine
from repro.selection import PackedHammingSelector
from repro.store import ReplicaSet, inspect_snapshot, load_engine, save_engine


DISTANCES = ["hamming", "edit", "jaccard", "euclidean"]


def _sampling(records, distance_name):
    return UniformSamplingEstimator(records, distance_name, sample_ratio=0.4, seed=3)


@pytest.fixture(scope="module")
def datasets():
    from repro.datasets import (
        make_binary_dataset,
        make_set_dataset,
        make_string_dataset,
        make_vector_dataset,
    )

    n = 220
    return {
        "hamming": make_binary_dataset(
            num_records=n, dimension=32, num_clusters=4, flip_probability=0.1,
            theta_max=12, seed=7, name="HM-Store",
        ),
        "edit": make_string_dataset(
            num_records=n, num_clusters=4, base_length=10, max_mutations=5,
            theta_max=6, seed=7, name="ED-Store",
        ),
        "jaccard": make_set_dataset(
            num_records=n, universe_size=60, num_clusters=4, base_set_size=12,
            theta_max=0.8, seed=7, name="JC-Store",
        ),
        "euclidean": make_vector_dataset(
            num_records=n, dimension=8, num_clusters=4, theta_max=4.0,
            seed=7, name="EU-Store",
        ),
    }


def _build_engine(datasets):
    engine = SimilarityQueryEngine()
    for distance_name in DISTANCES:
        dataset = datasets[distance_name]
        engine.register_attribute(
            distance_name,
            dataset.records,
            distance_name,
            _sampling(dataset.records, distance_name),
            theta_max=dataset.theta_max,
        )
    return engine


def _queries(datasets):
    thetas = {"hamming": 5.0, "edit": 3.0, "jaccard": 0.4, "euclidean": 1.5}
    queries = [
        SimilarityPredicate(name, datasets[name].records[index], thetas[name])
        for name in DISTANCES
        for index in (2, 9, 31)
    ]
    queries.append(
        ConjunctiveQuery(
            [
                SimilarityPredicate("hamming", datasets["hamming"].records[5], 6.0),
                SimilarityPredicate("edit", datasets["edit"].records[5], 4.0),
            ]
        )
    )
    return queries


def assert_plans_equal(plan_a, plan_b):
    assert plan_a.driver.attribute == plan_b.driver.attribute
    assert plan_a.driver.theta == plan_b.driver.theta
    assert plan_a.driver.estimated_cardinality == plan_b.driver.estimated_cardinality
    assert plan_a.allocation == plan_b.allocation
    assert plan_a.driver_shards == plan_b.driver_shards
    assert [p.attribute for p in plan_a.residuals] == [p.attribute for p in plan_b.residuals]
    assert [p.estimated_cardinality for p in plan_a.residuals] == [
        p.estimated_cardinality for p in plan_b.residuals
    ]


def assert_results_equal(result_a, result_b):
    assert result_a.record_ids == result_b.record_ids
    assert result_a.driver_actual == result_b.driver_actual
    assert result_a.driver_candidates == result_b.driver_candidates
    assert result_a.verification_examined == result_b.verification_examined
    assert result_a.shard_counts == result_b.shard_counts
    assert_plans_equal(result_a.plan, result_b.plan)


class TestFourDistanceEquivalence:
    @pytest.mark.parametrize("warm", [False, True], ids=["cold-cache", "warm-cache"])
    def test_estimates_plans_results_bit_identical(self, datasets, tmp_path, warm):
        engine = _build_engine(datasets)
        queries = _queries(datasets)
        if warm:
            engine.execute_many(queries)  # populate curves, windows, telemetry
            assert len(engine.service.cache) > 0
        save_engine(engine, tmp_path / "snap")
        restored = load_engine(tmp_path / "snap")

        assert len(restored.service.cache) == len(engine.service.cache)

        for name in DISTANCES:
            records = [datasets[name].records[i] for i in range(0, 40, 3)]
            grid = restored.service.registry.get(name).curve_thetas
            thetas = np.linspace(float(grid[0]), float(grid[-1]), len(records))
            np.testing.assert_array_equal(
                engine.service.estimate_many(name, records, thetas),
                restored.service.estimate_many(name, records, thetas),
            )
            np.testing.assert_array_equal(
                engine.service.estimate_curve_many(name, records),
                restored.service.estimate_curve_many(name, records),
            )

        for query in _queries(datasets):
            assert_plans_equal(engine.explain(query), restored.explain(query))
        for original, loaded in zip(
            engine.execute_many(queries), restored.execute_many(queries)
        ):
            assert_results_equal(original, loaded)

    def test_warm_restore_serves_from_cache(self, datasets, tmp_path):
        engine = _build_engine(datasets)
        records = [datasets["hamming"].records[i] for i in range(16)]
        engine.service.estimate_curve_many("hamming", records)
        save_engine(engine, tmp_path / "snap")
        restored = load_engine(tmp_path / "snap")

        before = restored.service.telemetry.endpoint("hamming").cache_hits
        restored.service.estimate_curve_many("hamming", records)
        stats = restored.service.telemetry.endpoint("hamming")
        # Every request hit the restored warm cache — no model call happened.
        assert stats.cache_hits == before + len(records)
        assert stats.batches == engine.service.telemetry.endpoint("hamming").batches

    def test_restored_cached_curves_stay_frozen(self, datasets, tmp_path):
        engine = _build_engine(datasets)
        engine.service.estimate_curve("hamming", datasets["hamming"].records[0])
        save_engine(engine, tmp_path / "snap")
        restored = load_engine(tmp_path / "snap")
        (curve,) = list(restored.service.cache._entries.values())
        with pytest.raises(ValueError):
            curve[0] = 1e9


class TestGPHAndSharded:
    def test_gph_attribute_round_trips(self, datasets, tmp_path):
        dataset = datasets["hamming"]
        engine = SimilarityQueryEngine()
        engine.register_attribute(
            "hm",
            dataset.records,
            "hamming",
            _sampling(dataset.records, "hamming"),
            theta_max=dataset.theta_max,
            gph_part_size=8,
        )
        query = SimilarityPredicate("hm", dataset.records[4], 6.0)
        original = engine.execute(query)
        assert original.plan.allocation is not None
        save_engine(engine, tmp_path / "snap")
        restored = load_engine(tmp_path / "snap")
        binding = restored.catalog.get("hm")
        assert binding.part_endpoints  # per-part endpoints restored
        assert_results_equal(original, restored.execute(query))

    def test_sharded_attribute_round_trips_and_updates(self, datasets, tmp_path):
        dataset = datasets["hamming"]
        engine = SimilarityQueryEngine()
        engine.register_sharded_attribute(
            "vec",
            dataset.records,
            "hamming",
            lambda records, shard: UniformSamplingEstimator(
                records, "hamming", sample_ratio=0.5, seed=shard
            ),
            num_shards=3,
            theta_max=dataset.theta_max,
        )
        query = SimilarityPredicate("vec", dataset.records[11], 6.0)
        original = engine.execute(query)
        save_engine(engine, tmp_path / "snap")
        restored = load_engine(tmp_path / "snap")

        loaded = restored.execute(query)
        assert_results_equal(original, loaded)
        assert loaded.shard_counts is not None and sum(loaded.shard_counts) == loaded.driver_actual

        # The restored group's merged endpoint still sums per-shard curves.
        group = restored.shard_group("vec")
        assert group.service is restored.service
        assert group.shard_endpoints == engine.shard_group("vec").shard_endpoints

        # Post-restore updates work: the restored selector factory clones the
        # CURRENT shard 0's configuration (bound to the sharded selector, not
        # to a shard instance, so replaced shards are never pinned alive).
        sharded = restored.catalog.get("vec").selector
        assert sharded.selector_factory.__self__ is sharded
        report = restored.apply_update("vec", UpdateOperation("insert", [dataset.records[0]]))
        assert len(report.touched_shards) == 1
        both = engine.apply_update("vec", UpdateOperation("insert", [dataset.records[0]]))
        assert report.touched_shards == both.touched_shards
        assert_results_equal(engine.execute(query), restored.execute(query))


class TestRuntimeBackedTopology:
    """An engine whose concurrency runs on the shared runtime (pipelined
    executor + sharded fan-out) must snapshot WITHOUT serializing pools and
    restore to a fully working parallel topology — including replicas."""

    def _sharded_runtime_engine(self, dataset):
        engine = SimilarityQueryEngine(execute_workers=4)
        engine.register_sharded_attribute(
            "vec",
            dataset.records,
            "hamming",
            lambda records, shard: UniformSamplingEstimator(
                records, "hamming", sample_ratio=0.5, seed=shard
            ),
            num_shards=3,
            theta_max=dataset.theta_max,
        )
        return engine

    def test_runtime_pools_never_serialize_and_rebuild_after_restore(
        self, datasets, tmp_path
    ):
        dataset = datasets["hamming"]
        engine = self._sharded_runtime_engine(dataset)
        queries = [
            SimilarityPredicate("vec", dataset.records[i], 6.0) for i in (2, 9, 31, 44)
        ]
        engine.execute_many(queries)  # spin up both pools before saving
        assert set(engine.runtime.pool_names()) == {"engine-execute", "shards"}

        save_engine(engine, tmp_path / "snap")
        manifest_text = (tmp_path / "snap" / "manifest.json").read_text()
        assert "WorkerPool" not in manifest_text  # pools are dropped, not saved
        assert "_thread" not in manifest_text

        restored = load_engine(tmp_path / "snap")
        # The restored runtime starts empty; identity survives — the restored
        # sharded selector fans out on the restored ENGINE's runtime.
        assert restored.runtime.pool_names() == []
        assert restored.catalog.get("vec").selector.runtime is restored.runtime

        # Parallel execution works again (pools rebuilt lazily) and matches
        # the original engine query for query, shard counts included.
        for original, loaded in zip(
            engine.execute_many(queries), restored.execute_many(queries)
        ):
            assert_results_equal(original, loaded)
        assert set(restored.runtime.pool_names()) == {"engine-execute", "shards"}
        pool_report = restored.service.telemetry.snapshot()["pool:engine-execute"]
        assert pool_report["requests"] >= len(queries)

    def test_replicas_of_a_runtime_backed_engine_route_on_their_own_pools(
        self, datasets, tmp_path
    ):
        dataset = datasets["hamming"]
        engine = self._sharded_runtime_engine(dataset)
        queries = [
            SimilarityPredicate("vec", dataset.records[i], 6.0) for i in (2, 9, 31, 44)
        ]
        expected = engine.execute_many(queries)
        save_engine(engine, tmp_path / "snap")

        replicas = ReplicaSet.from_snapshot(tmp_path / "snap", 2)
        answered = replicas.execute_many(queries)
        for original, routed in zip(expected, answered):
            assert_results_equal(original, routed)
        assert sum(replicas.query_counts()) == len(queries)
        # The batched fan-out ran on the replica set's runtime pool, and the
        # pool reported into the same telemetry as the routing counters.
        assert replicas.runtime.pool_names() == ["replicas"]
        assert replicas.telemetry.snapshot()["pool:replicas"]["requests"] >= 2

    def test_in_flight_runtime_work_blocks_save(self, datasets, tmp_path):
        import threading

        engine = _build_engine(datasets)
        gate = threading.Event()
        handle = engine.runtime.pool("side-work", num_workers=1).submit(gate.wait, 10)
        try:
            with pytest.raises(RuntimeError, match="tasks in flight"):
                save_engine(engine, tmp_path / "snap")
        finally:
            gate.set()
            handle.result(timeout=5)
        engine.runtime.drain(timeout=5)
        save_engine(engine, tmp_path / "snap")  # idle runtime saves cleanly


class TestManagerAndFeedbackResume:
    def _engine_with_manager(self, dataset, workload, estimator):
        engine = SimilarityQueryEngine(
            drift_threshold=1.5, feedback_window=8, min_feedback_observations=4
        )
        engine.register_attribute(
            "vec", dataset.records, "hamming", estimator, theta_max=dataset.theta_max
        )
        manager = IncrementalUpdateManager(
            estimator,
            PackedHammingSelector(dataset.records),
            workload.train,
            workload.validation,
            max_epochs_per_update=1,
        )
        engine.attach_manager("vec", manager)
        return engine

    def test_manager_identity_and_drift_resume(
        self, binary_dataset, binary_workload, tmp_path
    ):
        estimator = CardNetEstimator.for_dataset(
            binary_dataset, accelerated=True, epochs=2, vae_pretrain_epochs=1, seed=0
        )
        estimator.fit(binary_workload.train, binary_workload.validation)
        engine = self._engine_with_manager(binary_dataset, binary_workload, estimator)
        queries = [
            SimilarityPredicate("vec", binary_dataset.records[i], 5.0) for i in range(6)
        ]
        engine.execute_many(queries)
        save_engine(engine, tmp_path / "snap")
        restored = load_engine(tmp_path / "snap")

        # The restored manager serves the SAME estimator object the endpoint
        # serves, on the engine's own service — a retrain reaches serving.
        link = restored._links["vec"]
        assert link.manager.estimator is restored.service.registry.get("vec").estimator
        assert link.manager.service is restored.service
        assert restored.feedback._managers["vec"] is link
        assert (
            link.manager._baseline_validation_error
            == engine._links["vec"].manager._baseline_validation_error
        )

        # Optimizer moments survive, so incremental retraining resumes from
        # exactly the saved trajectory.
        original_opt = estimator.trainer._optimizer
        restored_opt = link.manager.estimator.trainer._optimizer
        assert restored_opt._step_count == original_opt._step_count
        for m_a, m_b in zip(original_opt._m, restored_opt._m):
            np.testing.assert_array_equal(m_a, m_b)

        # Same post-restore observations → drift fires identically on both
        # (the sliding windows were restored mid-flight).
        for engine_side in (engine, restored):
            event = None
            while event is None:
                event = engine_side.feedback.observe("vec", 1.0, 1000.0)
        original_event = engine.feedback.events[-1]
        restored_event = restored.feedback.events[-1]
        assert original_event.window_q_error == restored_event.window_q_error
        assert original_event.observations == restored_event.observations
        assert (original_event.revalidation is None) == (restored_event.revalidation is None)

    def test_pending_deferred_requests_block_save(self, datasets, tmp_path):
        engine = _build_engine(datasets)
        engine.service.submit("hamming", datasets["hamming"].records[0], 3.0)
        with pytest.raises(RuntimeError, match="pending deferred"):
            save_engine(engine, tmp_path / "snap")
        engine.service.flush()
        save_engine(engine, tmp_path / "snap")  # flushes cleanly now


class TestInventory:
    def test_manifest_meta_inventories_the_engine(self, datasets, tmp_path):
        engine = _build_engine(datasets)
        engine.execute_many(_queries(datasets))
        info = save_engine(engine, tmp_path / "snap")
        assert info.kind == "engine"
        assert info.meta["attributes"] == DISTANCES_SORTED
        assert set(info.meta["endpoints"]) == set(DISTANCES)
        assert info.meta["cached_curves"] == len(engine.service.cache)
        probe = inspect_snapshot(tmp_path / "snap")
        assert probe.kind == "engine"
        assert probe.num_arrays == info.num_arrays
        assert probe.meta == info.meta


DISTANCES_SORTED = sorted(DISTANCES)

"""Object-graph codecs: containers, shared refs, cycles, and the whitelist."""

from __future__ import annotations

from collections import Counter, OrderedDict, defaultdict, deque

import numpy as np
import pytest

from repro.serving.registry import default_record_key
from repro.store import SnapshotError, SnapshotFormatError
from repro.store.codecs import GraphDecoder, GraphEncoder
from repro.store.format import ArrayReader


def roundtrip(value):
    encoder = GraphEncoder()
    encoded = encoder.encode(value)
    reader = ArrayReader(encoder.writer.payload(), encoder.writer.entries)
    return GraphDecoder(encoder.objects, reader).decode(encoded)


class TestScalarsAndContainers:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -17,
            2**80,  # beyond float53 JSON precision
            3.5,
            float("inf"),
            -0.0,
            "héllo",
            b"\x00\xffbytes",
            (1, "two", 3.0),
            [1, [2, [3]]],
            {"a": 1, "b": [2]},
            {1: "int-key", (2, 3): "tuple-key", b"k": "bytes-key"},
            {4, 5, 6},
            frozenset({7, 8}),
        ],
        ids=str,
    )
    def test_value_round_trip(self, value):
        restored = roundtrip(value)
        assert restored == value
        assert type(restored) is type(value)

    def test_nan_round_trips(self):
        restored = roundtrip(float("nan"))
        assert isinstance(restored, float) and np.isnan(restored)

    def test_float_bits_survive(self):
        import struct

        for value in (0.1, 1e-308, 1.7976931348623157e308, -2.5e-10):
            assert struct.pack("<d", roundtrip(value)) == struct.pack("<d", value)

    def test_ordered_dict_preserves_order(self):
        value = OrderedDict([("z", 1), ("a", 2), ("m", 3)])
        restored = roundtrip(value)
        assert isinstance(restored, OrderedDict)
        assert list(restored.items()) == list(value.items())

    def test_defaultdict_keeps_factory(self):
        value = defaultdict(list, {"x": [1]})
        restored = roundtrip(value)
        assert isinstance(restored, defaultdict)
        assert restored.default_factory is list
        assert restored["x"] == [1]
        restored["new"].append(2)  # the factory still works
        assert restored["new"] == [2]

    def test_counter_round_trips(self):
        value = Counter({"ab": 2, "cd": 1})
        restored = roundtrip(value)
        assert isinstance(restored, Counter) and restored == value

    def test_deque_keeps_maxlen(self):
        value = deque([1.0, 2.0, 3.0], maxlen=5)
        restored = roundtrip(value)
        assert isinstance(restored, deque)
        assert restored.maxlen == 5 and list(restored) == [1.0, 2.0, 3.0]

    def test_numpy_scalars(self):
        for value in (np.float64(2.5), np.int64(-3), np.uint8(7), np.bool_(True)):
            restored = roundtrip(value)
            assert restored == value and restored.dtype == value.dtype

    def test_numpy_scalar_subclasses_of_builtins_keep_their_type(self):
        # Regression: np.float64 is a float subclass (np.str_ a str subclass);
        # a naive isinstance order would silently decode them as builtins and
        # strip the numpy scalar API from the restored object.
        restored = roundtrip(np.float64(1.5))
        assert type(restored) is np.float64
        assert restored.dtype == np.float64  # the numpy API survives
        restored_str = roundtrip(np.str_("ab"))
        assert isinstance(restored_str, np.str_)

    def test_dtype_round_trips(self):
        assert roundtrip(np.dtype("<f4")) == np.dtype("<f4")

    def test_rng_resumes_identically(self):
        rng = np.random.default_rng(123)
        rng.integers(0, 100, size=7)  # advance the state
        restored = roundtrip(rng)
        np.testing.assert_array_equal(
            rng.integers(0, 1000, size=16), restored.integers(0, 1000, size=16)
        )

    @pytest.mark.parametrize(
        "bit_generator", ["PCG64", "MT19937", "Philox", "SFC64"]
    )
    def test_every_whitelisted_bit_generator_round_trips(self, bit_generator):
        # Regression: MT19937/Philox/SFC64 states hold ndarrays — they must
        # flow through the codec, not be embedded raw into the JSON manifest.
        rng = np.random.Generator(getattr(np.random, bit_generator)(42))
        rng.integers(0, 100, size=5)
        restored = roundtrip(rng)
        assert type(restored.bit_generator).__name__ == bit_generator
        np.testing.assert_array_equal(
            rng.integers(0, 1000, size=16), restored.integers(0, 1000, size=16)
        )


class TestSharingAndCycles:
    def test_shared_array_identity_survives(self):
        shared = np.arange(6.0)
        restored = roundtrip({"a": shared, "b": shared})
        assert restored["a"] is restored["b"]
        np.testing.assert_array_equal(restored["a"], shared)

    def test_shared_object_identity_survives(self):
        from repro.workloads.examples import QueryExample

        example = QueryExample(record="abc", theta=1.0, cardinality=3)
        restored = roundtrip([example, example, QueryExample("d", 2.0, 4)])
        assert restored[0] is restored[1]
        assert restored[0] is not restored[2]
        assert restored[0].record == "abc" and restored[0].cardinality == 3

    def test_reference_cycle_closes(self):
        from repro.engine.catalog import AttributeCatalog

        catalog = AttributeCatalog()
        # Manufacture a cycle through plain attributes.
        catalog.loop = {"self": catalog}
        try:
            restored = roundtrip(catalog)
        finally:
            del catalog.loop
        assert restored.loop["self"] is restored

    def test_long_homogeneous_array_list_is_stacked(self):
        rows = [np.full(4, i, dtype=np.uint8) for i in range(32)]
        encoder = GraphEncoder()
        encoded = encoder.encode(rows)
        assert encoded["t"] == "astack"
        assert len(encoder.writer.entries) == 1  # ONE entry, not 32
        reader = ArrayReader(encoder.writer.payload(), encoder.writer.entries)
        restored = GraphDecoder(encoder.objects, reader).decode(encoded)
        assert len(restored) == 32
        for i, row in enumerate(restored):
            np.testing.assert_array_equal(row, rows[i])

    def test_heterogeneous_list_is_not_stacked(self):
        rows = [np.zeros(3), np.zeros(4)] * 20
        encoder = GraphEncoder()
        assert encoder.encode(rows)["t"] == "list"


class TestCallableReferences:
    def test_module_function_round_trips_to_same_object(self):
        assert roundtrip(default_record_key) is default_record_key

    def test_bound_method_rebinds_to_restored_owner(self):
        from repro.featurization.hamming import HammingFeatureExtractor

        extractor = HammingFeatureExtractor(dimension=8, theta_max=4.0)
        restored = roundtrip({"fn": extractor.transform_record, "owner": extractor})
        assert restored["fn"].__self__ is restored["owner"]
        record = np.ones(8, dtype=np.uint8)
        np.testing.assert_array_equal(
            restored["fn"](record), extractor.transform_record(record)
        )

    def test_closure_fails_loudly_at_save_time(self):
        def local_function():  # pragma: no cover - never called
            return 1

        with pytest.raises(SnapshotError, match="stable import path"):
            roundtrip(local_function)

    def test_lambda_fails_loudly_at_save_time(self):
        with pytest.raises(SnapshotError):
            roundtrip(lambda x: x)


class TestWhitelist:
    def test_non_repro_object_is_rejected_at_save(self):
        import json

        with pytest.raises(SnapshotError, match="only objects from"):
            roundtrip(json.JSONDecoder())

    def test_decoder_refuses_imports_outside_repro(self):
        reader = ArrayReader(b"", [])
        decoder = GraphDecoder([{"class": "os:system", "state": []}], reader)
        with pytest.raises(SnapshotFormatError, match="refusing"):
            decoder.decode({"t": "obj", "id": 0})

    def test_decoder_refuses_unlisted_builtins(self):
        reader = ArrayReader(b"", [])
        decoder = GraphDecoder([], reader)
        with pytest.raises(SnapshotFormatError, match="whitelist"):
            decoder.decode({"t": "fn", "ref": "builtins:eval"})

    def test_decoder_refuses_attribute_traversal_out_of_repro(self):
        # Regression: "repro.store.format:os.system" passes the module-prefix
        # check but resolves INTO the imported os module — the round-trip
        # identity check must reject the alias (a tampered manifest could
        # otherwise execute it, e.g. as a defaultdict factory).
        reader = ArrayReader(b"", [])
        decoder = GraphDecoder([], reader)
        for node in (
            {"t": "fn", "ref": "repro.store.format:os.system"},
            {"t": "cls", "ref": "repro.store.format:Path"},
            {"t": "ddict", "factory": "repro.store.format:os.getcwd", "items": []},
        ):
            with pytest.raises(SnapshotFormatError):
                decoder.decode(node)

    def test_unknown_tag_raises(self):
        reader = ArrayReader(b"", [])
        with pytest.raises(SnapshotFormatError, match="unknown node tag"):
            GraphDecoder([], reader).decode({"t": "mystery"})

"""Integration tests: full pipelines across modules (dataset → workload → models → metrics)."""

import numpy as np
import pytest

from repro.baselines import build_estimators
from repro.core import CardNetEstimator
from repro.datasets import load_dataset
from repro.metrics import AccuracyReport, mean_q_error, monotonicity_violation_rate
from repro.workloads import build_workload, generate_out_of_dataset_queries, label_queries
from repro.selection import default_selector


@pytest.fixture(scope="module")
def pipeline():
    """A small but fully realistic pipeline on the registered Hamming dataset."""
    dataset = load_dataset("HM-SynthImageNet", seed=0)
    workload = build_workload(dataset, query_fraction=0.03, num_thresholds=6, seed=1)
    cardnet = CardNetEstimator.for_dataset(dataset, epochs=12, vae_pretrain_epochs=3, seed=0)
    cardnet.fit(workload.train, workload.validation)
    return dataset, workload, cardnet


class TestEndToEndCardNet:
    def test_workload_has_all_splits(self, pipeline):
        _, workload, _ = pipeline
        summary = workload.summary()
        assert all(summary[key] > 0 for key in ("train", "validation", "test"))

    def test_cardnet_beats_naive_mean_estimator(self, pipeline):
        dataset, workload, cardnet = pipeline
        from repro.baselines import MeanEstimator

        mean = MeanEstimator(theta_max=dataset.theta_max).fit(workload.train)
        actual = [e.cardinality for e in workload.test]
        cardnet_q = mean_q_error(actual, cardnet.estimate_many(workload.test))
        mean_q = mean_q_error(actual, mean.estimate_many(workload.test))
        assert cardnet_q < mean_q

    def test_cardnet_monotone_on_test_queries(self, pipeline):
        dataset, workload, cardnet = pipeline
        thresholds = np.arange(0, int(dataset.theta_max) + 1, dtype=float)
        for example in workload.test[:5]:
            estimates = [[cardnet.estimate(example.record, t)] for t in thresholds]
            assert monotonicity_violation_rate(estimates) == 0.0

    def test_out_of_dataset_queries_get_finite_estimates(self, pipeline):
        dataset, _, cardnet = pipeline
        queries = generate_out_of_dataset_queries(dataset, num_queries=5, num_candidates=40, seed=3)
        for query in queries:
            estimate = cardnet.estimate(query, dataset.theta_max / 2)
            assert np.isfinite(estimate) and estimate >= 0.0

    def test_report_generation(self, pipeline):
        _, workload, cardnet = pipeline
        actual = [e.cardinality for e in workload.test]
        report = AccuracyReport.from_predictions(actual, cardnet.estimate_many(workload.test))
        assert report.mse >= 0.0 and report.mean_q_error >= 1.0


class TestEndToEndComparison:
    def test_estimator_suite_runs_on_set_data(self, set_dataset, set_workload):
        """A compressed version of the paper's Table 3 loop on one dataset."""
        names = ["DB-US", "TL-XGB", "TL-KDE", "DL-DNN"]
        estimators = build_estimators(names, set_dataset, seed=0, epochs=3)
        actual = [e.cardinality for e in set_workload.test]
        results = {}
        for name, estimator in estimators.items():
            estimator.fit(set_workload.train, set_workload.validation)
            results[name] = mean_q_error(actual, estimator.estimate_many(set_workload.test))
        assert all(np.isfinite(value) and value >= 1.0 for value in results.values())

    def test_labels_consistent_across_selectors(self, vector_dataset):
        """Label generation must be identical whichever exact algorithm produced it."""
        from repro.selection import LinearScanSelector
        from repro.distances import EuclideanDistance

        fast = default_selector("euclidean", vector_dataset.records)
        slow = LinearScanSelector(vector_dataset.records, EuclideanDistance())
        queries = [vector_dataset.records[i] for i in (0, 7, 21)]
        fast_labels = label_queries(queries, [0.2, 0.5, 0.8], fast)
        slow_labels = label_queries(queries, [0.2, 0.5, 0.8], slow)
        assert [e.cardinality for e in fast_labels] == [e.cardinality for e in slow_labels]

"""The benchmark trajectory gate: fresh BENCH_*.json vs committed baselines.

Loads :mod:`benchmarks.compare_trajectory` by path (the benchmarks directory
is not a package on the test path) and exercises the comparison math, the
directory walk, and the CLI exit codes against tmp-dir fixtures.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]

spec = importlib.util.spec_from_file_location(
    "compare_trajectory", REPO_ROOT / "benchmarks" / "compare_trajectory.py"
)
ct = importlib.util.module_from_spec(spec)
spec.loader.exec_module(ct)


class TestThroughputKeySelection:
    def test_markers(self):
        for key in ("qps", "warm_qps", "queries_per_second", "speedup",
                    "throughput", "ops_per_sec"):
            assert ct.is_throughput_key(key), key
        for key in ("latency_p99", "overhead_fraction", "num_records"):
            assert not ct.is_throughput_key(key), key

    def test_leaves_recurse_dicts_and_lists(self):
        payload = {
            "modes": {"cold": {"qps": 10.0}, "warm": {"qps": 40.0}},
            "runs": [{"throughput": 5}, {"throughput": 7}],
            "qps_enabled": True,  # bool is not a measurement
            "note_qps": "fast",  # nor is a string
        }
        leaves = dict(ct.iter_throughput_leaves(payload))
        assert leaves == {
            "modes.cold.qps": 10.0,
            "modes.warm.qps": 40.0,
            "runs[0].throughput": 5.0,
            "runs[1].throughput": 7.0,
        }


class TestComparePayloads:
    def test_regression_beyond_threshold(self):
        result = ct.compare_payloads({"qps": 100.0}, {"qps": 60.0}, threshold=0.3)
        assert len(result["regressions"]) == 1
        regression = result["regressions"][0]
        assert regression["key"] == "qps"
        assert regression["ratio"] == pytest.approx(0.6)
        assert regression["change"] == pytest.approx(-0.4)

    def test_within_threshold_is_not_a_regression(self):
        result = ct.compare_payloads({"qps": 100.0}, {"qps": 75.0}, threshold=0.3)
        assert result["regressions"] == []
        assert result["compared"] == 1

    def test_improvements_are_reported_not_gated(self):
        result = ct.compare_payloads({"qps": 100.0}, {"qps": 150.0}, threshold=0.3)
        assert result["regressions"] == []
        assert len(result["improvements"]) == 1

    def test_missing_and_new_keys_are_tolerated(self):
        result = ct.compare_payloads(
            {"qps": 100.0, "old_qps": 5.0}, {"qps": 100.0, "new_qps": 9.0}, 0.3
        )
        assert result["regressions"] == []
        assert result["missing_keys"] == ["old_qps"]
        assert result["new_keys"] == ["new_qps"]

    def test_zero_baseline_is_skipped(self):
        result = ct.compare_payloads({"qps": 0.0}, {"qps": 0.0}, threshold=0.3)
        assert result["compared"] == 0
        assert result["regressions"] == []


class TestDirectoryComparison:
    def write(self, directory, name, payload):
        directory.mkdir(parents=True, exist_ok=True)
        (directory / name).write_text(json.dumps(payload))

    def test_healthy_run_passes(self, tmp_path):
        fresh, base = tmp_path / "fresh", tmp_path / "base"
        self.write(fresh, "BENCH_a.json", {"qps": 98.0})
        self.write(base, "BENCH_a.json", {"qps": 100.0})
        report = ct.compare_directories(fresh, baseline_dir=base, threshold=0.3)
        assert not report["regressed"]
        assert report["benchmarks"]["BENCH_a.json"]["regressions"] == []

    def test_regression_flags_the_report(self, tmp_path):
        fresh, base = tmp_path / "fresh", tmp_path / "base"
        self.write(fresh, "BENCH_a.json", {"qps": 50.0})
        self.write(base, "BENCH_a.json", {"qps": 100.0})
        report = ct.compare_directories(fresh, baseline_dir=base, threshold=0.3)
        assert report["regressed"]

    def test_new_benchmark_without_baseline_is_not_gated(self, tmp_path):
        fresh = tmp_path / "fresh"
        base = tmp_path / "base"
        base.mkdir()
        self.write(fresh, "BENCH_new.json", {"qps": 10.0})
        report = ct.compare_directories(fresh, baseline_dir=base, threshold=0.3)
        assert not report["regressed"]
        assert report["no_baseline"] == ["BENCH_new.json"]

    def test_report_file_itself_is_excluded(self, tmp_path):
        fresh, base = tmp_path / "fresh", tmp_path / "base"
        self.write(fresh, ct.REPORT_NAME, {"qps": 1.0})
        self.write(fresh, "BENCH_a.json", {"qps": 100.0})
        self.write(base, "BENCH_a.json", {"qps": 100.0})
        report = ct.compare_directories(fresh, baseline_dir=base, threshold=0.3)
        assert list(report["benchmarks"]) == ["BENCH_a.json"]


class TestMain:
    def test_exit_codes_and_report_file(self, tmp_path, capsys):
        fresh, base = tmp_path / "fresh", tmp_path / "base"
        fresh.mkdir(), base.mkdir()
        (fresh / "BENCH_a.json").write_text(json.dumps({"qps": 100.0}))
        (base / "BENCH_a.json").write_text(json.dumps({"qps": 100.0}))
        output = tmp_path / "report.json"
        argv = [
            "--fresh-dir", str(fresh), "--baseline-dir", str(base),
            "--output", str(output),
        ]
        assert ct.main(argv) == 0
        report = json.loads(output.read_text())
        assert not report["regressed"]

        (fresh / "BENCH_a.json").write_text(json.dumps({"qps": 10.0}))
        assert ct.main(argv) == 1
        assert json.loads(output.read_text())["regressed"]
        assert "regress" in capsys.readouterr().out.lower()

    def test_threshold_flag_widens_the_gate(self, tmp_path):
        fresh, base = tmp_path / "fresh", tmp_path / "base"
        fresh.mkdir(), base.mkdir()
        (fresh / "BENCH_a.json").write_text(json.dumps({"qps": 55.0}))
        (base / "BENCH_a.json").write_text(json.dumps({"qps": 100.0}))
        argv = ["--fresh-dir", str(fresh), "--baseline-dir", str(base)]
        assert ct.main(argv + ["--threshold", "0.5", "--output",
                               str(tmp_path / "r1.json")]) == 0
        assert ct.main(argv + ["--threshold", "0.3", "--output",
                               str(tmp_path / "r2.json")]) == 1

"""Property-based tests for feature extraction invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances import HammingDistance, levenshtein
from repro.featurization import (
    EditFeatureExtractor,
    HammingFeatureExtractor,
    MinHashJaccardFeatureExtractor,
    PStableEuclideanFeatureExtractor,
)


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=0.0, max_value=10.0), st.floats(min_value=0.0, max_value=10.0))
def test_hamming_threshold_map_monotone(theta_a, theta_b):
    extractor = HammingFeatureExtractor(dimension=16, theta_max=10, tau_max=6)
    low, high = sorted([theta_a, theta_b])
    assert extractor.transform_threshold(low) <= extractor.transform_threshold(high)


@settings(max_examples=25, deadline=None)
@given(st.text(alphabet="abc", min_size=1, max_size=8), st.text(alphabet="abc", min_size=1, max_size=8))
def test_edit_bounding_property(x, y):
    extractor = EditFeatureExtractor(alphabet="abc", max_length=10, theta_max=5, window=2)
    hamming = HammingDistance()
    bits_x = extractor.transform_record(x)
    bits_y = extractor.transform_record(y)
    assert hamming.distance(bits_x, bits_y) <= levenshtein(x, y) * (4 * extractor.window + 2)


@settings(max_examples=25, deadline=None)
@given(st.frozensets(st.integers(0, 49), min_size=1, max_size=10))
def test_minhash_vector_is_valid_one_hot(record):
    extractor = MinHashJaccardFeatureExtractor(
        universe_size=50, theta_max=0.4, num_permutations=16, bits_per_hash=2, seed=0
    )
    vector = extractor.transform_record(record)
    blocks = vector.reshape(extractor.num_permutations, extractor.block_size)
    assert np.all(blocks.sum(axis=1) == 1.0)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.floats(min_value=-1.0, max_value=1.0, allow_nan=False), min_size=6, max_size=6),
    st.floats(min_value=0.0, max_value=0.8),
    st.floats(min_value=0.0, max_value=0.8),
)
def test_pstable_threshold_monotone(vector, theta_a, theta_b):
    extractor = PStableEuclideanFeatureExtractor(input_dimension=6, theta_max=0.8, tau_max=12, seed=0)
    low, high = sorted([theta_a, theta_b])
    assert extractor.transform_threshold(low) <= extractor.transform_threshold(high)
    bits = extractor.transform_record(vector)
    assert bits.sum() == extractor.num_hashes  # one-hot per hash function

"""Unit tests for feature extraction (paper §4 case studies)."""

import numpy as np
import pytest

from repro.distances import HammingDistance, levenshtein
from repro.featurization import (
    EditFeatureExtractor,
    HammingFeatureExtractor,
    MinHashJaccardFeatureExtractor,
    PStableEuclideanFeatureExtractor,
    build_feature_extractor,
    collision_probability,
    proportional_threshold_map,
)


class TestThresholdMap:
    def test_zero_maps_to_zero(self):
        assert proportional_threshold_map(0.0, 1.0, 16) == 0

    def test_max_maps_to_tau_max(self):
        assert proportional_threshold_map(1.0, 1.0, 16) == 16

    def test_monotone(self):
        values = [proportional_threshold_map(theta, 1.0, 16) for theta in np.linspace(0, 1, 50)]
        assert values == sorted(values)

    def test_zero_theta_max(self):
        assert proportional_threshold_map(0.5, 0.0, 16) == 0


class TestHammingFeature:
    def test_identity_on_binary(self):
        extractor = HammingFeatureExtractor(dimension=8, theta_max=4)
        record = np.array([1, 0, 1, 1, 0, 0, 1, 0])
        assert np.array_equal(extractor.transform_record(record), record.astype(float))

    def test_threshold_identity_when_small(self):
        extractor = HammingFeatureExtractor(dimension=8, theta_max=4, tau_max=8)
        assert extractor.transform_threshold(3) == 3

    def test_threshold_proportional_when_large(self):
        extractor = HammingFeatureExtractor(dimension=64, theta_max=32, tau_max=16)
        assert extractor.transform_threshold(32) == 16
        assert extractor.transform_threshold(16) == 8

    def test_rejects_wrong_dimension(self):
        extractor = HammingFeatureExtractor(dimension=8, theta_max=4)
        with pytest.raises(ValueError):
            extractor.transform_record(np.zeros(9))

    def test_rejects_out_of_range_threshold(self):
        extractor = HammingFeatureExtractor(dimension=8, theta_max=4)
        with pytest.raises(ValueError):
            extractor.transform_threshold(5.0)

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            HammingFeatureExtractor(dimension=0, theta_max=4)


class TestEditFeature:
    def test_dimension_formula(self):
        extractor = EditFeatureExtractor(alphabet="abc", max_length=5, theta_max=2, window=1)
        assert extractor.dimension == (5 + 2 * 1) * 3

    def test_paper_example(self):
        # Paper §4.2: x = "abc", Σ = {a,b,c,d}, l_max = 4, τ_max(window) = 1
        extractor = EditFeatureExtractor(alphabet="abcd", max_length=4, theta_max=1, window=1)
        vector = extractor.transform_record("abc")
        groups = vector.reshape(4, -1)
        assert np.array_equal(groups[0], [1, 1, 1, 0, 0, 0])  # 'a' at position 0
        assert np.array_equal(groups[1], [0, 1, 1, 1, 0, 0])  # 'b' at position 1
        assert np.array_equal(groups[2], [0, 0, 1, 1, 1, 0])  # 'c' at position 2
        assert np.array_equal(groups[3], [0, 0, 0, 0, 0, 0])  # 'd' absent

    def test_bounding_property(self):
        """ed(x, y) <= θ implies Hamming(h(x), h(y)) <= θ · (4·window + 2)."""
        extractor = EditFeatureExtractor(alphabet="abcd", max_length=12, theta_max=4, window=2)
        hamming = HammingDistance()
        pairs = [("abca", "abcab"), ("aabb", "abab"), ("dcba", "dcba"), ("abcd", "badc")]
        for x, y in pairs:
            edit = levenshtein(x, y)
            hd = hamming.distance(extractor.transform_record(x), extractor.transform_record(y))
            assert hd <= edit * (4 * extractor.window + 2)

    def test_unknown_characters_ignored(self):
        extractor = EditFeatureExtractor(alphabet="ab", max_length=4, theta_max=2, window=1)
        vector = extractor.transform_record("azb")
        assert vector.sum() > 0  # 'a' and 'b' still encoded

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ValueError):
            EditFeatureExtractor(alphabet="", max_length=4, theta_max=2)


class TestMinHashFeature:
    def test_one_hot_structure(self):
        extractor = MinHashJaccardFeatureExtractor(
            universe_size=50, theta_max=0.4, num_permutations=8, bits_per_hash=2, seed=0
        )
        vector = extractor.transform_record({1, 5, 9})
        blocks = vector.reshape(8, 4)
        assert np.all(blocks.sum(axis=1) == 1.0)

    def test_identical_sets_identical_vectors(self):
        extractor = MinHashJaccardFeatureExtractor(universe_size=50, theta_max=0.4, seed=0)
        a = extractor.transform_record({1, 2, 3})
        b = extractor.transform_record({3, 2, 1})
        assert np.array_equal(a, b)

    def test_expected_hamming_tracks_jaccard_distance(self):
        """Similar sets should land closer in Hamming space than dissimilar ones."""
        extractor = MinHashJaccardFeatureExtractor(
            universe_size=100, theta_max=0.4, num_permutations=64, seed=0
        )
        hamming = HammingDistance()
        base = frozenset(range(20))
        similar = frozenset(list(range(18)) + [50, 51])      # J-dist ~ 0.18
        dissimilar = frozenset(range(60, 80))                  # J-dist = 1.0
        near = hamming.distance(extractor.transform_record(base), extractor.transform_record(similar))
        far = hamming.distance(extractor.transform_record(base), extractor.transform_record(dissimilar))
        assert near < far

    def test_threshold_monotone(self):
        extractor = MinHashJaccardFeatureExtractor(universe_size=50, theta_max=0.4, tau_max=16)
        taus = [extractor.transform_threshold(t) for t in np.linspace(0, 0.4, 20)]
        assert taus == sorted(taus)
        assert taus[0] == 0 and taus[-1] == 16

    def test_empty_set_is_handled(self):
        extractor = MinHashJaccardFeatureExtractor(universe_size=50, theta_max=0.4, seed=0)
        vector = extractor.transform_record(frozenset())
        assert vector.shape == (extractor.dimension,)


class TestPStableFeature:
    def test_collision_probability_decreasing(self):
        values = [collision_probability(theta, 0.5) for theta in np.linspace(0.01, 2.0, 30)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_collision_probability_at_zero(self):
        assert collision_probability(0.0, 0.5) == 1.0

    def test_one_hot_structure(self):
        extractor = PStableEuclideanFeatureExtractor(
            input_dimension=8, theta_max=0.8, num_hashes=16, seed=0
        )
        vector = extractor.transform_record(np.random.default_rng(0).normal(size=8))
        blocks = vector.reshape(16, extractor.block_size)
        assert np.all(blocks.sum(axis=1) == 1.0)

    def test_nearby_vectors_closer_in_hamming(self):
        rng = np.random.default_rng(1)
        extractor = PStableEuclideanFeatureExtractor(
            input_dimension=8, theta_max=2.0, num_hashes=64, bucket_width=1.0, seed=0
        )
        hamming = HammingDistance()
        base = rng.normal(size=8)
        near = base + rng.normal(scale=0.05, size=8)
        far = base + rng.normal(scale=2.0, size=8)
        near_hd = hamming.distance(extractor.transform_record(base), extractor.transform_record(near))
        far_hd = hamming.distance(extractor.transform_record(base), extractor.transform_record(far))
        assert near_hd <= far_hd

    def test_threshold_monotone_and_bounded(self):
        extractor = PStableEuclideanFeatureExtractor(input_dimension=8, theta_max=0.8, tau_max=16)
        taus = [extractor.transform_threshold(t) for t in np.linspace(0, 0.8, 30)]
        assert taus == sorted(taus)
        assert 0 <= min(taus) and max(taus) <= 16

    def test_rejects_wrong_dimension(self):
        extractor = PStableEuclideanFeatureExtractor(input_dimension=8, theta_max=0.8)
        with pytest.raises(ValueError):
            extractor.transform_record(np.zeros(9))


class TestFactory:
    @pytest.mark.parametrize(
        "fixture_name,expected_type",
        [
            ("binary_dataset", HammingFeatureExtractor),
            ("string_dataset", EditFeatureExtractor),
            ("set_dataset", MinHashJaccardFeatureExtractor),
            ("vector_dataset", PStableEuclideanFeatureExtractor),
        ],
    )
    def test_builds_matching_extractor(self, request, fixture_name, expected_type):
        dataset = request.getfixturevalue(fixture_name)
        extractor = build_feature_extractor(dataset)
        assert isinstance(extractor, expected_type)
        # The extractor must accept the dataset's own records and thresholds.
        vector = extractor.transform_record(dataset.records[0])
        assert vector.shape == (extractor.dimension,)
        assert 0 <= extractor.transform_threshold(dataset.theta_max) <= extractor.tau_max

    def test_transform_records_batch(self, binary_dataset):
        extractor = build_feature_extractor(binary_dataset)
        matrix = extractor.transform_records(list(binary_dataset.records[:5]))
        assert matrix.shape == (5, extractor.dimension)

    def test_available_taus_sorted(self, set_dataset):
        extractor = build_feature_extractor(set_dataset)
        taus = extractor.available_taus()
        assert taus == sorted(taus)

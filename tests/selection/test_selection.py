"""Unit tests for the exact similarity-selection algorithms.

The central invariant: every index-based selector returns exactly the same
result set as the brute-force linear scan, for every query and threshold.
"""

import numpy as np
import pytest

from repro.distances import (
    EditDistance,
    EuclideanDistance,
    HammingDistance,
    JaccardDistance,
)
from repro.selection import (
    BallIndexEuclideanSelector,
    LinearScanSelector,
    PackedHammingSelector,
    PigeonholeHammingSelector,
    PrefixFilterJaccardSelector,
    QGramEditSelector,
    default_selector,
    enumerate_within_radius,
    qgrams,
    split_dimensions,
)


class TestLinearScan:
    def test_hamming(self, binary_dataset):
        selector = LinearScanSelector(binary_dataset.records, HammingDistance())
        query = binary_dataset.records[0]
        assert 0 in selector.query(query, 0)

    def test_cardinality_equals_query_length(self, vector_dataset):
        selector = LinearScanSelector(vector_dataset.records, EuclideanDistance())
        query = vector_dataset.records[3]
        assert selector.cardinality(query, 0.5) == len(selector.query(query, 0.5))

    def test_rebuild(self, binary_dataset):
        selector = LinearScanSelector(binary_dataset.records, HammingDistance())
        rebuilt = selector.rebuild(list(binary_dataset.records[:10]))
        assert len(rebuilt) == 10


class TestPackedHamming:
    def test_matches_linear_scan(self, binary_dataset):
        reference = LinearScanSelector(binary_dataset.records, HammingDistance())
        fast = PackedHammingSelector(binary_dataset.records)
        rng = np.random.default_rng(0)
        for _ in range(10):
            query = binary_dataset.records[rng.integers(0, len(binary_dataset))]
            threshold = int(rng.integers(0, 13))
            assert fast.query(query, threshold) == reference.query(query, threshold)

    def test_empty_dataset(self):
        selector = PackedHammingSelector([])
        assert selector.query(np.zeros(8, dtype=np.uint8), 3) == []

    def test_distances_helper(self, binary_dataset):
        selector = PackedHammingSelector(binary_dataset.records)
        distances = selector.distances(binary_dataset.records[0])
        assert distances[0] == 0
        assert len(distances) == len(binary_dataset)


class TestPigeonholeHamming:
    def test_split_dimensions(self):
        assert split_dimensions(32, 16) == [(0, 16), (16, 32)]
        assert split_dimensions(20, 16) == [(0, 16), (16, 20)]

    def test_split_dimensions_invalid(self):
        with pytest.raises(ValueError):
            split_dimensions(10, 0)

    def test_enumerate_within_radius_counts(self):
        bits = np.zeros(4, dtype=np.uint8)
        assert len(enumerate_within_radius(bits, 0)) == 1
        assert len(enumerate_within_radius(bits, 1)) == 5
        assert len(enumerate_within_radius(bits, 2)) == 11

    def test_uniform_allocation_sums_to_threshold(self, binary_dataset):
        selector = PigeonholeHammingSelector(binary_dataset.records, part_size=8)
        allocation = selector.uniform_allocation(10)
        assert sum(allocation) == 10

    def test_matches_linear_scan(self, binary_dataset):
        reference = LinearScanSelector(binary_dataset.records, HammingDistance())
        pigeonhole = PigeonholeHammingSelector(binary_dataset.records, part_size=8)
        rng = np.random.default_rng(1)
        for _ in range(6):
            query = binary_dataset.records[rng.integers(0, len(binary_dataset))]
            threshold = int(rng.integers(0, 9))
            assert pigeonhole.query(query, threshold) == sorted(reference.query(query, threshold))

    def test_candidate_count_at_least_results(self, binary_dataset):
        pigeonhole = PigeonholeHammingSelector(binary_dataset.records, part_size=8)
        query = binary_dataset.records[5]
        allocation = pigeonhole.uniform_allocation(6)
        candidates = pigeonhole.candidate_count(query, allocation)
        results = len(pigeonhole.query(query, 6, allocation=allocation))
        assert candidates >= results


class TestQGramEdit:
    def test_qgrams(self):
        grams = qgrams("abab", 2)
        assert grams["ab"] == 2
        assert grams["ba"] == 1

    def test_qgrams_short_string(self):
        assert qgrams("a", 2) == {"a": 1}

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            QGramEditSelector(["abc"], q=0)

    def test_matches_linear_scan(self, string_dataset):
        reference = LinearScanSelector(string_dataset.records, EditDistance())
        indexed = QGramEditSelector(string_dataset.records, q=2)
        rng = np.random.default_rng(2)
        for _ in range(8):
            query = string_dataset.records[rng.integers(0, len(string_dataset))]
            threshold = int(rng.integers(0, 5))
            assert sorted(indexed.query(query, threshold)) == sorted(
                reference.query(query, threshold)
            )


class TestPrefixFilterJaccard:
    def test_matches_linear_scan(self, set_dataset):
        reference = LinearScanSelector(set_dataset.records, JaccardDistance())
        indexed = PrefixFilterJaccardSelector(set_dataset.records)
        rng = np.random.default_rng(3)
        for _ in range(8):
            query = set_dataset.records[rng.integers(0, len(set_dataset))]
            threshold = float(rng.uniform(0.0, 0.5))
            assert sorted(indexed.query(query, threshold)) == sorted(
                reference.query(query, threshold)
            )

    def test_threshold_one_returns_everything(self, set_dataset):
        indexed = PrefixFilterJaccardSelector(set_dataset.records)
        assert len(indexed.query(set_dataset.records[0], 1.0)) == len(set_dataset)

    def test_empty_query_matches_empty_sets_only(self):
        selector = PrefixFilterJaccardSelector([frozenset(), frozenset({1, 2})])
        assert selector.query(frozenset(), 0.2) == [0]


class TestBallIndexEuclidean:
    def test_matches_linear_scan(self, vector_dataset):
        reference = LinearScanSelector(vector_dataset.records, EuclideanDistance())
        indexed = BallIndexEuclideanSelector(vector_dataset.records, num_pivots=8, seed=0)
        rng = np.random.default_rng(4)
        for _ in range(8):
            query = vector_dataset.records[rng.integers(0, len(vector_dataset))]
            threshold = float(rng.uniform(0.1, 0.9))
            assert sorted(indexed.query(query, threshold)) == sorted(
                reference.query(query, threshold)
            )

    def test_empty_dataset(self):
        selector = BallIndexEuclideanSelector(np.zeros((0, 4)))
        assert selector.query(np.zeros(4), 1.0) == []


class TestDefaultSelector:
    @pytest.mark.parametrize(
        "fixture_name,distance_name",
        [
            ("binary_dataset", "hamming"),
            ("string_dataset", "edit"),
            ("set_dataset", "jaccard"),
            ("vector_dataset", "euclidean"),
        ],
    )
    def test_builds_for_every_distance(self, request, fixture_name, distance_name):
        dataset = request.getfixturevalue(fixture_name)
        selector = default_selector(distance_name, dataset.records)
        query = dataset.records[0]
        assert selector.cardinality(query, dataset.theta_max) >= 1

    def test_unknown_distance(self):
        with pytest.raises(KeyError):
            default_selector("cosine", [])


class TestCardinalityCurve:
    """cardinality_curve must equal the per-threshold scalar loop exactly."""

    @pytest.mark.parametrize(
        "fixture_name,distance_name",
        [
            ("binary_dataset", "hamming"),
            ("string_dataset", "edit"),
            ("set_dataset", "jaccard"),
            ("vector_dataset", "euclidean"),
        ],
    )
    def test_curve_matches_scalar_loop(self, request, fixture_name, distance_name):
        dataset = request.getfixturevalue(fixture_name)
        from repro.distances import get_distance

        distance = get_distance(distance_name)
        selectors = [
            default_selector(distance_name, dataset.records),
            LinearScanSelector(dataset.records, distance),
        ]
        if distance_name == "hamming":
            selectors.append(PigeonholeHammingSelector(dataset.records, part_size=8))
        if distance.integer_valued:
            thresholds = [0.0, 1.0, 3.0, float(int(dataset.theta_max))]
        else:
            thresholds = [0.0, dataset.theta_max * 0.4, dataset.theta_max]
        rng = np.random.default_rng(2)
        for record_id in rng.choice(len(dataset.records), size=6, replace=False):
            record = dataset.records[int(record_id)]
            for selector in selectors:
                curve = selector.cardinality_curve(record, thresholds)
                scalar = [selector.cardinality(record, theta) for theta in thresholds]
                assert curve.tolist() == scalar, type(selector).__name__

    def test_unsorted_thresholds_supported(self, binary_dataset):
        selector = default_selector("hamming", binary_dataset.records)
        record = binary_dataset.records[0]
        curve = selector.cardinality_curve(record, [5.0, 1.0, 3.0])
        assert curve.tolist() == [
            selector.cardinality(record, t) for t in (5.0, 1.0, 3.0)
        ]

    def test_empty_thresholds(self, binary_dataset):
        selector = default_selector("hamming", binary_dataset.records)
        assert selector.cardinality_curve(binary_dataset.records[0], []).size == 0


class TestVerifiedCandidates:
    def test_matches_query_and_reports_cost(self, binary_dataset):
        selector = PigeonholeHammingSelector(binary_dataset.records, part_size=8)
        rng = np.random.default_rng(6)
        for _ in range(5):
            record = binary_dataset.records[rng.integers(0, len(binary_dataset.records))]
            threshold = int(rng.integers(2, 10))
            matches, candidates = selector.verified_candidates(record, threshold)
            assert matches == selector.query(record, threshold)
            assert candidates >= len(matches)

"""Property-based tests: index selectors always agree with the linear scan."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances import EditDistance, HammingDistance, JaccardDistance
from repro.selection import (
    LinearScanSelector,
    PackedHammingSelector,
    PrefixFilterJaccardSelector,
    QGramEditSelector,
)

binary_rows = st.lists(
    st.lists(st.integers(0, 1), min_size=10, max_size=10), min_size=3, max_size=20
)
string_rows = st.lists(st.text(alphabet="abc", min_size=1, max_size=8), min_size=3, max_size=15)
set_rows = st.lists(st.frozensets(st.integers(0, 12), min_size=1, max_size=6), min_size=3, max_size=15)


@settings(max_examples=25, deadline=None)
@given(binary_rows, st.integers(0, 10))
def test_packed_hamming_equals_linear_scan(rows, threshold):
    data = np.asarray(rows, dtype=np.uint8)
    reference = LinearScanSelector(data, HammingDistance())
    fast = PackedHammingSelector(data)
    query = data[0]
    assert fast.query(query, threshold) == reference.query(query, threshold)


@settings(max_examples=20, deadline=None)
@given(string_rows, st.integers(0, 4))
def test_qgram_edit_equals_linear_scan(rows, threshold):
    reference = LinearScanSelector(rows, EditDistance())
    indexed = QGramEditSelector(rows, q=2)
    query = rows[0]
    assert sorted(indexed.query(query, threshold)) == sorted(reference.query(query, threshold))


@settings(max_examples=20, deadline=None)
@given(set_rows, st.floats(min_value=0.0, max_value=0.9))
def test_prefix_filter_equals_linear_scan(rows, threshold):
    reference = LinearScanSelector(rows, JaccardDistance())
    indexed = PrefixFilterJaccardSelector(rows)
    query = rows[0]
    assert sorted(indexed.query(query, threshold)) == sorted(reference.query(query, threshold))


@settings(max_examples=20, deadline=None)
@given(binary_rows, st.integers(0, 9))
def test_cardinality_monotone_in_threshold(rows, threshold):
    data = np.asarray(rows, dtype=np.uint8)
    selector = PackedHammingSelector(data)
    query = data[0]
    assert selector.cardinality(query, threshold) <= selector.cardinality(query, threshold + 1)

"""O(Δ) delta maintenance: bit-identity with from-scratch rebuilds.

The pinned contract (ISSUE 10): after any stream of ``insert_many`` /
``delete_many`` calls a delta-maintained selector answers every query exactly
like a selector rebuilt from scratch over the same live records — cold (with
tombstones outstanding), after compaction, and across a snapshot round trip.
"""

import numpy as np
import pytest

from repro.distances import (
    EditDistance,
    EuclideanDistance,
    HammingDistance,
    JaccardDistance,
)
from repro.selection import (
    BallIndexEuclideanSelector,
    CompactionPolicy,
    GrowableArray,
    LinearScanSelector,
    PackedHammingSelector,
    PigeonholeHammingSelector,
    PrefixFilterJaccardSelector,
    QGramEditSelector,
)
from repro.store import load_component, save_component


def _cases(binary_dataset, string_dataset, set_dataset, vector_dataset):
    return [
        (
            "hamming",
            binary_dataset.records,
            lambda records: PackedHammingSelector(records),
            HammingDistance(),
            [2, 6, 12],
        ),
        (
            "hamming-gph",
            binary_dataset.records,
            lambda records: PigeonholeHammingSelector(records, part_size=8),
            HammingDistance(),
            [2, 6, 12],
        ),
        (
            "edit",
            string_dataset.records,
            lambda records: QGramEditSelector(records),
            EditDistance(),
            [1, 3, 6],
        ),
        (
            "jaccard",
            set_dataset.records,
            lambda records: PrefixFilterJaccardSelector(records),
            JaccardDistance(),
            [0.1, 0.3, 0.4],
        ),
        (
            "euclidean",
            vector_dataset.records,
            lambda records: BallIndexEuclideanSelector(records, num_pivots=8),
            EuclideanDistance(),
            [0.2, 0.5, 0.8],
        ),
    ]


def _mutate(selector, records, rng, rounds=4):
    """A deterministic mixed insert/delete stream; returns the live reference list."""
    live = list(records[:150])
    extra = list(records[150:])
    for _ in range(rounds):
        take = int(rng.integers(5, 20))
        batch, extra = extra[:take], extra[take:]
        selector.insert_many(batch)
        live.extend(batch)
        drop = sorted(
            int(i) for i in rng.choice(len(live), size=int(rng.integers(3, 12)), replace=False)
        )
        selector.delete_many(drop)
        for position in reversed(drop):
            del live[position]
    return live


def _assert_identical(selector, rebuilt, queries, thresholds):
    for query in queries:
        for theta in thresholds:
            assert selector.query(query, theta) == rebuilt.query(query, theta)
            assert selector.cardinality(query, theta) == rebuilt.cardinality(query, theta)
        curve = selector.cardinality_curve(query, thresholds)
        expected = rebuilt.cardinality_curve(query, thresholds)
        assert np.array_equal(curve, expected)


class TestDeltaBitIdentity:
    @pytest.fixture()
    def cases(self, binary_dataset, string_dataset, set_dataset, vector_dataset):
        return _cases(binary_dataset, string_dataset, set_dataset, vector_dataset)

    def test_matches_rebuild_cold_and_after_compaction(self, cases):
        for name, records, factory, _distance, thresholds in cases:
            rng = np.random.default_rng(11)
            selector = factory(records[:150])
            live = _mutate(selector, records, rng)
            assert len(selector.dataset) == len(live)
            assert all(
                np.array_equal(a, b) for a, b in zip(selector.dataset, live)
            )
            rebuilt = factory(live)
            queries = [live[int(i)] for i in rng.integers(0, len(live), size=6)]
            # Cold: tombstones outstanding.
            assert selector.delta_stats()["tombstones"] > 0, name
            _assert_identical(selector, rebuilt, queries, thresholds)
            # After compaction: physical layout collapses to the live rows.
            selector.compact()
            assert selector.delta_stats()["tombstones"] == 0, name
            _assert_identical(selector, rebuilt, queries, thresholds)

    def test_matches_linear_scan_after_mutations(self, cases):
        for name, records, factory, distance, thresholds in cases:
            rng = np.random.default_rng(23)
            selector = factory(records[:150])
            live = _mutate(selector, records, rng)
            reference = LinearScanSelector(live, distance)
            # Sorted comparison: QGramEditSelector returns matches in
            # survivor (length-bucket) order, linear scan in id order.
            for i in rng.integers(0, len(live), size=5):
                for theta in thresholds:
                    assert sorted(selector.query(live[int(i)], theta)) == reference.query(
                        live[int(i)], theta
                    ), name

    def test_snapshot_roundtrip_with_tombstones(self, cases, tmp_path):
        for name, records, factory, _distance, thresholds in cases:
            rng = np.random.default_rng(5)
            selector = factory(records[:150])
            live = _mutate(selector, records, rng)
            save_component(selector, tmp_path / f"snap-{name}")
            restored = load_component(tmp_path / f"snap-{name}")
            queries = [live[int(i)] for i in rng.integers(0, len(live), size=4)]
            _assert_identical(restored, factory(live), queries, thresholds)
            # Restored selectors keep accepting deltas.
            restored.insert_many(live[:3])
            assert len(restored) == len(live) + 3


class TestUpdateSemantics:
    def test_insert_bootstrap_from_empty(self, binary_dataset):
        selector = PackedHammingSelector([])
        selector.insert_many(binary_dataset.records[:10])
        assert len(selector) == 10
        assert selector.query(binary_dataset.records[0], 0) == [0]

    def test_delete_to_empty_then_reinsert(self, binary_dataset):
        selector = PackedHammingSelector(binary_dataset.records[:5])
        selector.delete_many(range(5))
        assert len(selector) == 0
        assert selector.query(binary_dataset.records[0], 32) == []
        selector.insert_many(binary_dataset.records[5:8])
        assert len(selector) == 3

    def test_delete_out_of_range_raises(self, binary_dataset):
        selector = PackedHammingSelector(binary_dataset.records[:5])
        with pytest.raises(IndexError):
            selector.delete_many([5])
        with pytest.raises(IndexError):
            selector.delete_many([-1])

    def test_delete_duplicate_positions_raise(self, binary_dataset):
        selector = PackedHammingSelector(binary_dataset.records[:5])
        with pytest.raises(ValueError):
            selector.delete_many([2, 2])

    def test_empty_operations_are_noops(self, binary_dataset):
        selector = PackedHammingSelector(binary_dataset.records[:5])
        before = selector.mutation_count
        assert selector.insert_many([]) == 0
        assert selector.delete_many([]) == 0
        assert selector.mutation_count == before

    def test_mutation_count_tracks_logical_changes_only(self, binary_dataset):
        selector = PackedHammingSelector(binary_dataset.records[:20])
        assert selector.mutation_count == 0
        selector.insert_many(binary_dataset.records[20:25])
        selector.delete_many([0, 3])
        assert selector.mutation_count == 2
        selector.compact()
        assert selector.mutation_count == 2

    def test_forced_compaction_bounds_tombstone_debt(self, binary_dataset):
        selector = PackedHammingSelector(binary_dataset.records[:40])
        selector.compaction_policy = CompactionPolicy(
            tombstone_ratio=0.1, force_ratio=0.3, min_tombstones=4
        )
        for _ in range(6):
            selector.delete_many([0, 1, 2])
        stats = selector.delta_stats()
        assert stats["tombstones"] < 0.5 * max(1, stats["physical"])
        assert selector.compaction_policy.force_ratio == 0.3  # survives compaction

    def test_needs_compaction_is_advisory(self, binary_dataset):
        selector = PackedHammingSelector(binary_dataset.records[:40])
        selector.compaction_policy = CompactionPolicy(
            tombstone_ratio=0.05, force_ratio=0.9, min_tombstones=1
        )
        selector.delete_many([0, 1, 2, 3])
        assert selector.needs_compaction()
        reclaimed = selector.compact()
        assert reclaimed == 4
        assert not selector.needs_compaction()

    def test_generic_fallback_rebuilds_in_place(self, binary_dataset):
        selector = LinearScanSelector(list(binary_dataset.records[:10]), HammingDistance())
        alias = selector
        selector.insert_many(binary_dataset.records[10:12])
        selector.delete_many([0])
        assert len(alias) == 11
        assert alias.mutation_count == 2


class TestGrowableArray:
    def test_amortized_append_and_view(self):
        store = GrowableArray(np.zeros((2, 3), dtype=np.int64))
        for i in range(10):
            store.append(np.full((1, 3), i, dtype=np.int64))
        assert store.count == 12
        assert np.array_equal(store.view()[-1], [9, 9, 9])
        assert len(np.asarray(store)) == 12

    def test_width_mismatch_raises(self):
        store = GrowableArray(np.zeros((2, 3), dtype=np.int64))
        with pytest.raises(ValueError):
            store.append(np.zeros((1, 4), dtype=np.int64))

    def test_snapshot_trims_capacity_slack(self, tmp_path):
        store = GrowableArray(np.arange(4, dtype=np.int64))
        store.append(np.arange(5, dtype=np.int64))
        save_component(store, tmp_path / "store")
        restored = load_component(tmp_path / "store")
        assert np.array_equal(np.asarray(restored), np.asarray(store))
        restored.append(np.arange(2, dtype=np.int64))
        assert restored.count == 11

"""Selector plane export/rebuild + the q-gram signature pre-filter.

``export_arrays``/``from_arrays`` is the contract the process backend rides
on: a rebuilt selector must answer every query exactly like the original.
The edit-distance signature filter must be a pure pruning step — never
dropping a true match — and stable across processes (no hash randomization).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.selection.base import SimilaritySelector
from repro.selection.edit_index import QGramEditSelector, qgram_signature
from repro.selection.euclidean_index import BallIndexEuclideanSelector
from repro.selection.hamming_index import PackedHammingSelector, PigeonholeHammingSelector
from repro.selection.jaccard_index import PrefixFilterJaccardSelector
from repro.distances import levenshtein

RNG = np.random.default_rng(23)


def _roundtrip(selector):
    exported = selector.export_arrays()
    assert exported is not None
    arrays, meta = exported
    for array in arrays.values():
        assert isinstance(array, np.ndarray)
        assert array.dtype != object
    return type(selector).from_arrays(arrays, meta)


class TestExportRoundtrips:
    def test_packed_hamming(self):
        records = [row for row in RNG.integers(0, 2, size=(80, 33)).astype(np.uint8)]
        original = PackedHammingSelector(records)
        rebuilt = _roundtrip(original)
        for threshold in (4.0, 9.0):
            for query in records[:5]:
                assert original.query(query, threshold) == rebuilt.query(query, threshold)

    def test_pigeonhole_hamming(self):
        records = [row for row in RNG.integers(0, 2, size=(80, 32)).astype(np.uint8)]
        original = PigeonholeHammingSelector(records)
        rebuilt = _roundtrip(original)
        for query in records[:5]:
            assert original.query(query, 6.0) == rebuilt.query(query, 6.0)
            assert np.array_equal(
                original.cardinality_curve(query, np.arange(0.0, 10.0)),
                rebuilt.cardinality_curve(query, np.arange(0.0, 10.0)),
            )

    def test_euclidean_exact_despite_different_pivots(self):
        records = [row for row in RNG.normal(size=(70, 6))]
        original = BallIndexEuclideanSelector(records)
        rebuilt = _roundtrip(original)
        for query in records[:5]:
            # Pivot choice may differ worker-side; answers must not.
            assert original.query(query, 2.0) == rebuilt.query(query, 2.0)

    def test_jaccard_integer_tokens(self):
        records = [
            set(map(int, RNG.choice(40, size=int(RNG.integers(2, 9)), replace=False)))
            for _ in range(60)
        ]
        original = PrefixFilterJaccardSelector(records)
        rebuilt = _roundtrip(original)
        for query in records[:5]:
            assert original.query(query, 0.5) == rebuilt.query(query, 0.5)

    def test_jaccard_string_tokens_refuse_export(self):
        records = [{"alpha", "beta"}, {"beta", "gamma"}]
        assert PrefixFilterJaccardSelector(records).export_arrays() is None

    def test_edit_distance_strings(self):
        words = ["kitten", "sitting", "mitten", "sittings", "bitten", "fitting"] * 5
        original = QGramEditSelector(words)
        rebuilt = _roundtrip(original)
        for query in ("kitten", "fitting", "smitten"):
            assert original.query(query, 2.0) == rebuilt.query(query, 2.0)

    def test_base_selector_defaults(self):
        class Plain(SimilaritySelector):
            def query(self, record, threshold):
                return []

        plain = Plain([1, 2, 3])
        assert plain.export_arrays() is None
        with pytest.raises(NotImplementedError):
            Plain.from_arrays({}, {})


class TestQGramSignatureFilter:
    def test_never_prunes_a_true_match(self):
        # Exhaustive check against brute-force edit distance: the signature
        # filter plus counting must return exactly the brute-force answers.
        rng = np.random.default_rng(5)
        alphabet = list("abcde")
        words = [
            "".join(rng.choice(alphabet, size=int(rng.integers(3, 10))))
            for _ in range(120)
        ]
        selector = QGramEditSelector(words)
        for query in words[:15]:
            for threshold in (1.0, 2.0, 3.0):
                expected = {
                    i for i, word in enumerate(words)
                    if levenshtein(query, word) <= threshold
                }
                # Id order follows the length-filter walk; membership is the
                # exactness contract.
                assert set(selector.query(query, threshold)) == expected

    def test_signature_is_deterministic_crc_not_hash(self):
        # Stable across processes: derived from crc32, never from hash().
        grams = ["ab", "bc", "cd"]
        signature = qgram_signature(grams)
        assert isinstance(signature, int)
        assert signature == qgram_signature(list(grams))
        import zlib

        expected = 0
        for gram in grams:
            expected |= 1 << (zlib.crc32(gram.encode("utf-8")) & 63)
        assert signature == expected

    def test_filter_actually_prunes(self):
        # Sanity that the filter is not a no-op: a gram-rich query certifies
        # many absent grams against unrelated strings (>` q·θ`) and prunes
        # them before any gram counting.
        words = ["abcdefgh", "zyxwvuts", "mnopqrst", "abcdefgx"]
        selector = QGramEditSelector(words)
        survivors = selector._signature_survivors(
            int(selector._signatures[0]),
            list(range(len(words))),
            threshold=1,
        )
        assert 0 in survivors and 3 in survivors
        assert 1 not in survivors and 2 not in survivors

    def test_snapshot_restore_recomputes_signatures(self, tmp_path):
        from repro.store import load_component, save_component

        words = ["gram", "grams", "grampa", "signature", "signatures"]
        selector = QGramEditSelector(words)
        save_component(selector, tmp_path / "snap")
        restored = load_component(tmp_path / "snap")
        assert np.array_equal(restored._signatures, selector._signatures)
        assert restored.query("grams", 1.0) == selector.query("grams", 1.0)

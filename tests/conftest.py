"""Shared fixtures: small datasets, workloads, and trained models.

Expensive fixtures (trained CardNet models) are session-scoped so the whole
suite trains each model exactly once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import QueryFeaturizer
from repro.core import CardNetEstimator
from repro.datasets import (
    make_binary_dataset,
    make_multi_attribute_relation,
    make_set_dataset,
    make_string_dataset,
    make_vector_dataset,
)
from repro.workloads import build_workload


# --------------------------------------------------------------------------- #
# Tiny datasets (fast enough for unit tests)
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def binary_dataset():
    return make_binary_dataset(
        num_records=300, dimension=32, num_clusters=4, flip_probability=0.1,
        theta_max=12, seed=7, name="HM-Tiny",
    )


@pytest.fixture(scope="session")
def string_dataset():
    return make_string_dataset(
        num_records=200, num_clusters=4, base_length=10, max_mutations=5,
        theta_max=6, seed=7, name="ED-Tiny",
    )


@pytest.fixture(scope="session")
def set_dataset():
    return make_set_dataset(
        num_records=250, num_clusters=4, universe_size=80, base_set_size=10,
        theta_max=0.4, seed=7, name="JC-Tiny",
    )


@pytest.fixture(scope="session")
def vector_dataset():
    return make_vector_dataset(
        num_records=300, dimension=16, num_clusters=4, cluster_std=0.2,
        theta_max=0.8, seed=7, name="EU-Tiny",
    )


@pytest.fixture(scope="session")
def all_datasets(binary_dataset, string_dataset, set_dataset, vector_dataset):
    return [binary_dataset, string_dataset, set_dataset, vector_dataset]


@pytest.fixture(scope="session")
def relation():
    return make_multi_attribute_relation(
        num_records=200, attribute_dims=(12, 12, 8), seed=3, name="Rel-Tiny"
    )


# --------------------------------------------------------------------------- #
# Workloads
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def binary_workload(binary_dataset):
    return build_workload(binary_dataset, query_fraction=0.1, num_thresholds=5, seed=11)


@pytest.fixture(scope="session")
def set_workload(set_dataset):
    return build_workload(set_dataset, query_fraction=0.1, num_thresholds=5, seed=11)


@pytest.fixture(scope="session")
def vector_workload(vector_dataset):
    return build_workload(vector_dataset, query_fraction=0.1, num_thresholds=5, seed=11)


@pytest.fixture(scope="session")
def string_workload(string_dataset):
    return build_workload(string_dataset, query_fraction=0.1, num_thresholds=4, seed=11)


# --------------------------------------------------------------------------- #
# Featurizers and trained models
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def binary_featurizer(binary_dataset):
    return QueryFeaturizer.for_dataset(binary_dataset)


@pytest.fixture(scope="session")
def trained_cardnet(binary_dataset, binary_workload):
    estimator = CardNetEstimator.for_dataset(
        binary_dataset, epochs=8, vae_pretrain_epochs=3, seed=5
    )
    estimator.fit(binary_workload.train, binary_workload.validation)
    return estimator


@pytest.fixture(scope="session")
def trained_cardnet_accelerated(binary_dataset, binary_workload):
    estimator = CardNetEstimator.for_dataset(
        binary_dataset, accelerated=True, epochs=8, vae_pretrain_epochs=3, seed=5
    )
    estimator.fit(binary_workload.train, binary_workload.validation)
    return estimator


@pytest.fixture
def rng():
    return np.random.default_rng(1234)

"""BatchCoalescer: atomic batch pop-off, drains, and cross-thread merging."""

from __future__ import annotations

import threading

import pytest

from repro.runtime import BatchCoalescer


class TestBatchSemantics:
    def test_add_returns_the_batch_exactly_at_size(self):
        coalescer = BatchCoalescer(max_batch_size=3)
        assert coalescer.add("a", 1) is None
        assert coalescer.add("a", 2) is None
        assert coalescer.add("b", 10) is None  # other endpoint: separate queue
        batch = coalescer.add("a", 3)
        assert batch == [1, 2, 3]
        assert coalescer.pending_for("a") == 0  # popped atomically
        assert coalescer.pending_for("b") == 1

    def test_drain_one_endpoint_leaves_the_others(self):
        coalescer = BatchCoalescer(max_batch_size=10)
        coalescer.add("a", 1)
        coalescer.add("b", 2)
        assert coalescer.drain("a") == {"a": [1]}
        assert coalescer.pending_count == 1
        assert coalescer.drain("a") == {"a": []}  # empty, not an error

    def test_drain_all(self):
        coalescer = BatchCoalescer(max_batch_size=10)
        coalescer.add("a", 1)
        coalescer.add("b", 2)
        coalescer.add("b", 3)
        assert coalescer.drain() == {"a": [1], "b": [2, 3]}
        assert coalescer.pending_count == 0

    def test_rejects_nonpositive_batch_size(self):
        with pytest.raises(ValueError):
            BatchCoalescer(max_batch_size=0)


class TestCrossThreadMerging:
    def test_every_request_lands_in_exactly_one_batch(self):
        """N threads × M adds: the popped batches plus the final drain must
        partition the requests — nothing lost, nothing duplicated."""
        coalescer = BatchCoalescer(max_batch_size=7)
        num_threads, per_thread = 8, 200
        popped_lock = threading.Lock()
        popped = []
        barrier = threading.Barrier(num_threads)

        def hammer(thread_id):
            barrier.wait()
            for i in range(per_thread):
                batch = coalescer.add("endpoint", (thread_id, i))
                if batch is not None:
                    with popped_lock:
                        popped.extend(batch)

        threads = [
            # repro: ignore[RPR001] - stress harness: raw threads hammer the coalescer under test
            threading.Thread(target=hammer, args=(t,), daemon=True)
            for t in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        leftover = coalescer.drain()["endpoint"]
        seen = popped + leftover
        assert len(seen) == num_threads * per_thread
        assert len(set(seen)) == num_threads * per_thread  # no duplicates
        # Every full batch respected the size bound exactly.
        assert len(popped) % 7 == 0
        assert len(leftover) < 7


class TestSnapshotHooks:
    def test_refuses_to_snapshot_pending_requests(self):
        coalescer = BatchCoalescer(max_batch_size=4)
        coalescer.add("a", 1)
        with pytest.raises(RuntimeError, match="pending"):
            coalescer.__snapshot_state__()
        coalescer.drain()
        state = coalescer.__snapshot_state__()
        assert state["_queues"] == {}
        assert "_lock" not in state

    def test_restore_rebuilds_the_lock(self):
        coalescer = BatchCoalescer(max_batch_size=4)
        state = coalescer.__snapshot_state__()
        restored = BatchCoalescer.__new__(BatchCoalescer)
        restored.__snapshot_restore__(state)
        assert restored.max_batch_size == 4
        assert restored.add("a", 1) is None  # lock works again
        assert restored.pending_count == 1

"""Process-backend WorkerPool: same API, forked execution, no orphans.

The process backend must be indistinguishable from the thread backend at the
API surface — handles, map ordering, backpressure accounting, drain/shutdown,
snapshot refusal — while actually executing in forked children (verified by
pid) and never leaving worker processes behind.
"""

from __future__ import annotations

import gc
import os
import signal
import time

import pytest

from repro.runtime import (
    POOL_BACKENDS,
    PoolRejectedError,
    Runtime,
    WorkerPool,
    fork_available,
)

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process backend needs the fork start method"
)


def _square(value):
    return value * value


def _sleep_then(seconds, value):
    time.sleep(seconds)
    return value


def _child_pid():
    return os.getpid()


def _raise_value_error(message):
    raise ValueError(message)


def _exit_hard():
    os._exit(13)


class _Unpicklable:
    def __reduce__(self):
        raise TypeError("deliberately unpicklable")


class TestExecutesInChildren:
    def test_tasks_run_in_forked_processes(self):
        pool = WorkerPool("proc", num_workers=2, backend="process")
        try:
            pids = {pool.submit(_child_pid).result(timeout=10) for _ in range(8)}
            assert os.getpid() not in pids
            assert 1 <= len(pids) <= 2
        finally:
            pool.shutdown()

    def test_map_preserves_order(self):
        pool = WorkerPool("proc-map", num_workers=3, backend="process")
        try:
            assert pool.map(_square, range(20)) == [i * i for i in range(20)]
        finally:
            pool.shutdown()

    def test_stats_report_backend(self):
        pool = WorkerPool("proc-stats", num_workers=1, backend="process")
        try:
            stats = pool.stats()
            assert stats["backend"] == "process"
            assert stats["requested_backend"] == "process"
        finally:
            pool.shutdown()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            WorkerPool("bad", num_workers=1, backend="gpu")
        assert POOL_BACKENDS == ("thread", "process")


class TestErrorPaths:
    def test_exception_propagates_across_the_pipe(self):
        pool = WorkerPool("proc-err", num_workers=1, backend="process")
        try:
            handle = pool.submit(_raise_value_error, "kaboom")
            with pytest.raises(ValueError, match="kaboom"):
                handle.result(timeout=10)
            assert pool.stats()["failed"] == 1
        finally:
            pool.shutdown()

    def test_unpicklable_task_raises_at_submit(self):
        pool = WorkerPool("proc-pickle", num_workers=1, backend="process")
        try:
            with pytest.raises(TypeError, match="pickl"):
                pool.submit(_square, _Unpicklable())
            with pytest.raises(TypeError, match="pickl"):
                pool.submit(lambda: 1)
            # The refusal happened before admission: nothing was queued.
            assert pool.stats()["submitted"] == 0
        finally:
            pool.shutdown()

    def test_child_death_mid_task_fails_that_task_only(self):
        pool = WorkerPool("proc-death", num_workers=1, backend="process")
        try:
            handle = pool.submit(_exit_hard)
            with pytest.raises(RuntimeError, match="died"):
                handle.result(timeout=10)
            # The dead child is respawned for the next task.
            assert pool.submit(_square, 6).result(timeout=10) == 36
        finally:
            pool.shutdown()


class TestBackpressure:
    def test_reject_policy_accounts_rejections(self):
        pool = WorkerPool(
            "proc-reject", num_workers=1, max_queue_depth=1,
            policy="reject", backend="process",
        )
        try:
            first = pool.submit(_sleep_then, 0.5, 1)
            time.sleep(0.05)  # let the worker pick up the first task
            pool.submit(_sleep_then, 0.0, 2)  # fills the queue slot
            with pytest.raises(PoolRejectedError):
                for _ in range(20):
                    pool.submit(_sleep_then, 0.0, 3)
            assert first.result(timeout=10) == 1
            assert pool.stats()["rejected"] >= 1
        finally:
            pool.shutdown()


class TestDrainShutdownAndOrphans:
    def test_drain_waits_for_inflight_tasks(self):
        pool = WorkerPool("proc-drain", num_workers=2, backend="process")
        try:
            handles = [pool.submit(_sleep_then, 0.2, i) for i in range(4)]
            pool.drain(timeout=30)
            assert all(handle.done for handle in handles)
            assert pool.queue_depth == 0
        finally:
            pool.shutdown()

    def test_shutdown_reaps_children(self):
        pool = WorkerPool("proc-reap", num_workers=2, backend="process")
        pool.map(_square, range(4))
        children = pool.child_processes()
        assert children and all(child.is_alive() for child in children)
        pool.shutdown()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and any(c.is_alive() for c in children):
            time.sleep(0.05)
        assert not any(child.is_alive() for child in children)

    def test_runtime_del_leaves_no_orphans(self):
        # Worker threads keep a bare pool referenced, so the GC path that
        # must reap children is the owning Runtime's __del__.
        runtime = Runtime()
        pool = runtime.pool("proc-del", num_workers=2, backend="process")
        pool.map(_square, range(4))
        children = pool.child_processes()
        assert all(child.is_alive() for child in children)
        del runtime, pool
        gc.collect()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and any(c.is_alive() for c in children):
            time.sleep(0.05)
        assert not any(child.is_alive() for child in children)

    def test_runtime_shutdown_reaps_process_pools(self):
        runtime = Runtime()
        pool = runtime.pool("workers", num_workers=2, backend="process")
        pool.map(_square, range(4))
        children = pool.child_processes()
        runtime.shutdown()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline and any(c.is_alive() for c in children):
            time.sleep(0.05)
        assert not any(child.is_alive() for child in children)


class TestSnapshotRefusal:
    def test_snapshot_refuses_inflight_process_tasks(self):
        runtime = Runtime()
        pool = runtime.pool("busy", num_workers=1, backend="process")
        handle = pool.submit(_sleep_then, 1.0, 42)
        time.sleep(0.05)
        with pytest.raises(RuntimeError, match="in flight"):
            runtime.__snapshot_state__()
        assert handle.result(timeout=10) == 42
        runtime.shutdown()

    def test_snapshot_ok_after_drain(self):
        runtime = Runtime()
        pool = runtime.pool("quiet", num_workers=1, backend="process")
        pool.submit(_square, 3).result(timeout=10)
        runtime.drain(timeout=10)
        state = runtime.__snapshot_state__()
        assert state["_pools"] == {}  # live pools never serialize
        runtime.shutdown()


class TestFallback:
    def test_backend_falls_back_without_fork(self, monkeypatch):
        import repro.runtime.pool as pool_mod

        monkeypatch.setattr(pool_mod, "fork_available", lambda: False)
        pool = pool_mod.WorkerPool("nofork", num_workers=1, backend="process")
        try:
            assert pool.backend == "thread"
            assert pool.requested_backend == "process"
            assert pool.submit(_square, 5).result(timeout=10) == 25
        finally:
            pool.shutdown()

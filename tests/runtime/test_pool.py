"""WorkerPool semantics: lazy start, handles, backpressure, drain/shutdown."""

from __future__ import annotations

import threading
import time

import pytest

from repro.runtime import (
    BACKPRESSURE_POLICIES,
    PoolRejectedError,
    TaskShedError,
    WorkerPool,
)
from repro.serving import ServingTelemetry


class TestLifecycleAndHandles:
    def test_pool_starts_lazily(self):
        pool = WorkerPool("lazy", num_workers=2)
        assert not pool.started
        handle = pool.submit(lambda: 41 + 1)
        assert pool.started
        assert handle.result(timeout=5) == 42
        pool.shutdown()

    def test_result_and_done(self):
        pool = WorkerPool("basic", num_workers=1)
        gate = threading.Event()
        handle = pool.submit(gate.wait, 5)
        assert not handle.done
        gate.set()
        assert handle.result(timeout=5) is True
        assert handle.done
        pool.shutdown()

    def test_exception_propagates_to_result(self):
        pool = WorkerPool("boom", num_workers=1)

        def explode():
            raise ValueError("kaboom")

        handle = pool.submit(explode)
        with pytest.raises(ValueError, match="kaboom"):
            handle.result(timeout=5)
        assert handle.exception(timeout=5) is not None
        assert pool.stats()["failed"] == 1
        pool.shutdown()

    def test_map_preserves_submission_order(self):
        pool = WorkerPool("map", num_workers=4)
        assert pool.map(lambda x: x * x, range(20)) == [x * x for x in range(20)]
        pool.shutdown()

    def test_map_reraises_first_error_after_all_tasks_finish(self):
        pool = WorkerPool("map-err", num_workers=2)
        ran = []

        def task(i):
            if i == 1:
                raise RuntimeError("task 1 failed")
            ran.append(i)
            return i

        with pytest.raises(RuntimeError, match="task 1 failed"):
            pool.map(task, range(6))
        # Every non-failing task still ran — nothing was abandoned mid-flight.
        assert sorted(ran) == [0, 2, 3, 4, 5]
        pool.shutdown()

    def test_result_timeout(self):
        pool = WorkerPool("slow", num_workers=1)
        gate = threading.Event()
        handle = pool.submit(gate.wait, 5)
        with pytest.raises(TimeoutError):
            handle.result(timeout=0.05)
        gate.set()
        assert handle.result(timeout=5) is True
        pool.shutdown()

    def test_submit_after_shutdown_raises(self):
        pool = WorkerPool("closed", num_workers=1)
        pool.submit(lambda: 1).result(timeout=5)
        pool.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            pool.submit(lambda: 2)

    def test_shutdown_finishes_queued_tasks(self):
        pool = WorkerPool("graceful", num_workers=1)
        gate = threading.Event()
        first = pool.submit(gate.wait, 5)
        queued = [pool.submit(lambda i=i: i) for i in range(5)]
        gate.set()
        pool.shutdown(wait=True)  # graceful: the queue drains before exit
        assert first.result(timeout=5) is True
        assert [handle.result(timeout=5) for handle in queued] == list(range(5))
        assert pool.stats()["completed"] == 6

    def test_drain_waits_for_in_flight_work(self):
        pool = WorkerPool("drain", num_workers=2)
        done = []
        pool.map(lambda i: done.append(i), range(4))
        for _ in range(8):
            pool.submit(lambda: done.append(time.perf_counter()))
        pool.drain(timeout=5)
        assert len(done) == 12
        assert pool.stats()["queue_depth"] == 0
        assert pool.stats()["active"] == 0
        pool.shutdown()


class TestBackpressure:
    """Each admission-control policy, exercised against a full queue."""

    def _blocked_pool(self, policy, max_queue_depth=2):
        """A 1-worker pool whose worker is parked on ``gate``, plus handles
        for the running task and the queued filler tasks."""
        pool = WorkerPool(
            "bp", num_workers=1, max_queue_depth=max_queue_depth, policy=policy
        )
        gate = threading.Event()
        running = pool.submit(gate.wait, 10)
        while pool.stats()["active"] == 0:  # wait until the worker holds it
            time.sleep(0.001)
        fillers = [pool.submit(lambda i=i: i) for i in range(max_queue_depth)]
        assert pool.queue_depth == max_queue_depth
        return pool, gate, running, fillers

    def test_policies_are_exactly_the_documented_three(self):
        assert BACKPRESSURE_POLICIES == ("block", "reject", "shed_oldest")
        with pytest.raises(ValueError, match="backpressure policy"):
            WorkerPool("bad", num_workers=1, policy="drop_newest")

    def test_reject_policy_raises_when_full(self):
        pool, gate, running, fillers = self._blocked_pool("reject")
        with pytest.raises(PoolRejectedError, match="queue is full"):
            pool.submit(lambda: "overflow")
        gate.set()
        # The rejected submission cost nothing: everything admitted still runs.
        assert [handle.result(timeout=5) for handle in fillers] == [0, 1]
        assert pool.stats()["rejected"] == 1
        pool.shutdown()

    def test_shed_oldest_policy_drops_the_oldest_queued_task(self):
        pool, gate, running, fillers = self._blocked_pool("shed_oldest")
        newest = pool.submit(lambda: "newest")
        # The OLDEST queued task was shed; its handle fails loudly.
        assert fillers[0].shed
        with pytest.raises(TaskShedError, match="shed"):
            fillers[0].result(timeout=5)
        gate.set()
        assert fillers[1].result(timeout=5) == 1
        assert newest.result(timeout=5) == "newest"
        assert pool.stats()["shed"] == 1
        assert pool.queue_depth == 0
        pool.shutdown()

    def test_block_policy_waits_for_space(self):
        pool, gate, running, fillers = self._blocked_pool("block")
        submitted = threading.Event()
        result_holder = {}

        def blocked_submit():
            handle = pool.submit(lambda: "late")
            submitted.set()
            result_holder["value"] = handle.result(timeout=5)

        # repro: ignore[RPR001] - the backpressure block under test needs a submitter outside any pool
        thread = threading.Thread(target=blocked_submit, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not submitted.is_set()  # full queue: the submitter is waiting
        gate.set()  # worker drains the queue, space opens, submit completes
        thread.join(timeout=5)
        assert submitted.is_set()
        assert result_holder["value"] == "late"
        assert pool.stats()["blocked_submissions"] == 1
        pool.shutdown()

    def test_unbounded_pool_never_applies_backpressure(self):
        pool = WorkerPool("unbounded", num_workers=1, policy="reject")
        gate = threading.Event()
        pool.submit(gate.wait, 10)
        handles = [pool.submit(lambda i=i: i) for i in range(100)]
        gate.set()
        assert [handle.result(timeout=5) for handle in handles] == list(range(100))
        assert pool.stats()["rejected"] == 0
        pool.shutdown()


class TestTelemetryExport:
    def test_pool_tasks_reported_under_pool_endpoint(self):
        telemetry = ServingTelemetry()
        pool = WorkerPool("fanout", num_workers=2, telemetry=telemetry)
        pool.map(lambda i: i, range(10))
        pool.drain(timeout=5)
        snapshot = telemetry.snapshot()
        assert snapshot["pool:fanout"]["requests"] == 10
        assert snapshot["pool:fanout"]["latency_seconds"] >= 0.0
        # Pool tasks are internal fan-out, not client traffic: NOT in totals.
        assert snapshot["total"]["requests"] == 0
        pool.shutdown()

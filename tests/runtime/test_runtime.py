"""Runtime registry semantics: named pools, lifecycle, snapshot hooks."""

from __future__ import annotations

import pytest

from repro.runtime import Runtime, WorkerPool, default_runtime
from repro.serving import ServingTelemetry
from repro.store import load_component, save_component


class TestPoolRegistry:
    def test_same_name_returns_the_same_pool(self):
        runtime = Runtime()
        first = runtime.pool("workers", num_workers=3, max_queue_depth=9)
        again = runtime.pool("workers", num_workers=2, max_queue_depth=4)
        assert again is first
        assert first.num_workers == 3  # worker floor: never shrinks
        assert first.max_queue_depth == 9  # bound/policy: first wins
        assert runtime.pool_names() == ["workers"]
        assert "workers" in runtime

    def test_reacquiring_with_wider_fanout_grows_the_pool(self):
        """A wide fan-out joining a shared pool must not silently run at the
        narrower width the first acquirer picked."""
        runtime = Runtime()
        narrow = runtime.pool("shards", num_workers=2)
        narrow.map(lambda i: i, range(4))  # pool is live with 2 workers
        wide = runtime.pool("shards", num_workers=8)
        assert wide is narrow
        assert narrow.num_workers == 8
        # All 8 workers really exist: 8 tasks can hold the pool at once.
        import threading

        barrier = threading.Barrier(8)
        handles = [narrow.submit(barrier.wait) for _ in range(8)]
        for handle in handles:
            handle.result(timeout=5)  # deadlocks unless 8 workers run
        runtime.shutdown()

    def test_distinct_names_get_distinct_pools(self):
        runtime = Runtime()
        shards = runtime.pool("shards", num_workers=2)
        replicas = runtime.pool("replicas", num_workers=2)
        assert shards is not replicas
        assert runtime.pool_names() == ["replicas", "shards"]

    def test_pools_inherit_the_runtime_telemetry(self):
        telemetry = ServingTelemetry()
        runtime = Runtime(telemetry)
        pool = runtime.pool("traced", num_workers=1)
        pool.map(lambda i: i, range(4))
        assert telemetry.snapshot()["pool:traced"]["requests"] == 4

    def test_stats_aggregates_every_pool(self):
        runtime = Runtime()
        runtime.pool("a", num_workers=1).map(lambda i: i, range(3))
        runtime.pool("b", num_workers=2, policy="reject", max_queue_depth=9)
        stats = runtime.stats()
        assert stats["a"]["completed"] == 3
        assert stats["b"]["policy"] == "reject"
        assert stats["b"]["started"] is False  # never submitted to: still lazy

    def test_shutdown_forgets_pools_and_stays_usable(self):
        runtime = Runtime()
        old = runtime.pool("workers", num_workers=1)
        old.map(lambda i: i, range(2))
        runtime.shutdown(wait=True)
        assert runtime.pool_names() == []
        fresh = runtime.pool("workers", num_workers=1)
        assert fresh is not old
        assert fresh.map(lambda i: i + 1, range(2)) == [1, 2]
        runtime.shutdown()

    def test_default_runtime_is_a_process_singleton(self):
        assert default_runtime() is default_runtime()
        assert isinstance(default_runtime(), Runtime)

    def test_drain_timeout_is_one_deadline_for_the_whole_runtime(self):
        import threading
        import time

        runtime = Runtime()
        gates = [threading.Event() for _ in range(3)]
        for index, gate in enumerate(gates):
            runtime.pool(f"busy-{index}", num_workers=1).submit(gate.wait, 30)
        start = time.monotonic()
        try:
            with pytest.raises(TimeoutError):
                runtime.drain(timeout=0.2)
            # Three busy pools share ONE 0.2s budget — not 0.2s each.
            assert time.monotonic() - start < 1.0
        finally:
            for gate in gates:
                gate.set()
            runtime.shutdown()

    def test_dropped_runtime_reclaims_its_worker_threads(self):
        import gc
        import threading

        before = {t.name for t in threading.enumerate()}
        runtime = Runtime()
        runtime.pool("ephemeral-workers", num_workers=3).map(lambda i: i, range(6))
        spawned = {
            t.name for t in threading.enumerate()
            if t.name.startswith("repro-ephemeral-workers")
        }
        assert len(spawned) == 3
        del runtime
        gc.collect()
        deadline = threading.Event()
        for _ in range(100):  # workers exit asynchronously after shutdown
            alive = {
                t.name for t in threading.enumerate()
                if t.name.startswith("repro-ephemeral-workers")
            }
            if not alive:
                break
            deadline.wait(0.05)
        assert not alive, "dropped Runtime leaked its worker threads"
        assert before <= {t.name for t in threading.enumerate()} | spawned


class TestSnapshotHooks:
    def test_round_trip_drops_pools_and_rebuilds_lazily(self, tmp_path):
        runtime = Runtime()
        runtime.pool("workers", num_workers=2).map(lambda i: i * 2, range(5))
        runtime.drain(timeout=5)
        save_component(runtime, tmp_path / "rt")
        restored = load_component(tmp_path / "rt")
        assert isinstance(restored, Runtime)
        assert restored.pool_names() == []  # pools never serialize
        # ...and the restored runtime is immediately usable again.
        assert restored.pool("workers", num_workers=2).map(
            lambda i: i * 2, range(5)
        ) == [0, 2, 4, 6, 8]

    def test_snapshot_refuses_in_flight_tasks(self, tmp_path):
        import threading

        runtime = Runtime()
        gate = threading.Event()
        handle = runtime.pool("busy", num_workers=1).submit(gate.wait, 10)
        try:
            with pytest.raises(RuntimeError, match="tasks in flight"):
                save_component(runtime, tmp_path / "busy")
        finally:
            gate.set()
            handle.result(timeout=5)
        runtime.drain(timeout=5)
        save_component(runtime, tmp_path / "busy")  # idle: saves cleanly

    def test_runtime_telemetry_survives_the_round_trip(self, tmp_path):
        telemetry = ServingTelemetry()
        runtime = Runtime(telemetry)
        runtime.pool("traced", num_workers=1).map(lambda i: i, range(3))
        runtime.drain(timeout=5)
        save_component(runtime, tmp_path / "rt")
        restored = load_component(tmp_path / "rt")
        # Counters persisted; the lock was rebuilt (recording still works).
        assert restored.telemetry.snapshot()["pool:traced"]["requests"] == 3
        restored.telemetry.record_pool_task("traced", 0.0)
        assert restored.telemetry.snapshot()["pool:traced"]["requests"] == 4


class TestWorkerPoolValidation:
    def test_rejects_nonpositive_workers_and_queue(self):
        with pytest.raises(ValueError, match="num_workers"):
            WorkerPool("bad", num_workers=0)
        with pytest.raises(ValueError, match="max_queue_depth"):
            WorkerPool("bad", num_workers=1, max_queue_depth=0)

"""Unit tests for the query-optimizer case studies (conjunctive + GPH)."""

import numpy as np
import pytest

from repro.baselines import KernelDensityEstimator, MeanEstimator
from repro.core.interface import CardinalityEstimator
from repro.optimizer import (
    ConjunctiveQuery,
    ConjunctiveQueryProcessor,
    GPHQueryProcessor,
    Predicate,
    exact_part_estimator,
    generate_conjunctive_queries,
    histogram_part_estimator,
    mean_part_estimator,
    model_part_estimator,
    run_conjunctive_workload,
)
from repro.baselines.simple import ExactEstimator
from repro.selection import BallIndexEuclideanSelector


class CountingEstimator(CardinalityEstimator):
    """Wrapper counting how the optimizers call into an estimator."""

    name = "Counting"
    monotonic = True

    def __init__(self, inner: CardinalityEstimator) -> None:
        self.inner = inner
        self.batch_calls = 0
        self.curve_calls = 0

    def estimate_batch(self, records, thetas):
        self.batch_calls += 1
        return self.inner.estimate_batch(records, thetas)

    def estimate_curve_many(self, records, thetas=None):
        self.curve_calls += 1
        return self.inner.estimate_curve_many(records, thetas)


# --------------------------------------------------------------------------- #
# Conjunctive queries
# --------------------------------------------------------------------------- #
class TestConjunctive:
    @pytest.fixture(scope="class")
    def processor(self, relation):
        return ConjunctiveQueryProcessor(relation, num_pivots=8, seed=0)

    @pytest.fixture(scope="class")
    def queries(self, relation):
        return generate_conjunctive_queries(relation, num_queries=8, seed=1)

    @pytest.fixture(scope="class")
    def exact_estimators(self, relation):
        return {
            attribute: ExactEstimator(BallIndexEuclideanSelector(matrix, num_pivots=8, seed=0))
            for attribute, matrix in relation.attributes.items()
        }

    def test_queries_have_all_attributes(self, relation, queries):
        for query in queries:
            assert set(query.attributes()) == set(relation.attribute_names)

    def test_answer_is_intersection(self, processor, queries):
        query = queries[0]
        answer = set(processor.answer(query))
        for predicate in query.predicates:
            assert answer <= set(processor.predicate_matches(predicate))

    def test_execute_returns_correct_results(self, processor, queries, exact_estimators):
        for query in queries[:4]:
            execution = processor.execute(query, exact_estimators)
            assert sorted(execution.result_ids) == processor.answer(query)

    def test_exact_estimator_has_perfect_precision(self, processor, queries, exact_estimators):
        report = run_conjunctive_workload(processor, queries, exact_estimators)
        assert report.planning_precision == 1.0
        assert report.num_queries == len(queries)

    def test_better_estimator_fewer_candidates(self, relation, processor, queries, exact_estimators):
        """The exact planner should examine no more candidates than a naive Mean planner."""
        mean_estimators = {}
        for attribute, matrix in relation.attributes.items():
            estimator = MeanEstimator(theta_max=1.0, num_buckets=16)
            # Fit on a few random predicate cardinalities for this attribute.
            from repro.workloads import QueryExample

            rng = np.random.default_rng(0)
            examples = []
            selector = BallIndexEuclideanSelector(matrix, num_pivots=8, seed=0)
            for _ in range(20):
                row = matrix[rng.integers(0, len(matrix))]
                theta = float(rng.uniform(0.2, 0.5))
                examples.append(QueryExample(row, theta, selector.cardinality(row, theta)))
            mean_estimators[attribute] = estimator.fit(examples)
        exact_report = run_conjunctive_workload(processor, queries, exact_estimators)
        mean_report = run_conjunctive_workload(processor, queries, mean_estimators)
        assert exact_report.total_candidates <= mean_report.total_candidates

    def test_kde_planner_reasonable_precision(self, relation, processor, queries):
        estimators = {
            attribute: KernelDensityEstimator(matrix, "euclidean", sample_size=60, seed=0)
            for attribute, matrix in relation.attributes.items()
        }
        report = run_conjunctive_workload(processor, queries, estimators)
        assert 0.0 <= report.planning_precision <= 1.0
        assert report.total_seconds > 0.0

    def test_workload_report_accumulates(self, processor, queries, exact_estimators):
        report = run_conjunctive_workload(processor, queries[:3], exact_estimators)
        assert len(report.executions) == 3
        assert report.total_candidates >= sum(len(e.result_ids) for e in report.executions)


# --------------------------------------------------------------------------- #
# GPH Hamming query processing
# --------------------------------------------------------------------------- #
class TestGPH:
    @pytest.fixture(scope="class")
    def records(self, binary_dataset):
        return binary_dataset.records[:200]

    @pytest.fixture(scope="class")
    def processor(self, records):
        return GPHQueryProcessor(records, part_size=8)

    def test_num_parts(self, processor, records):
        assert processor.num_parts == records.shape[1] // 8

    def test_allocation_budget(self, processor):
        assert processor.allocation_budget(10) == 10 - processor.num_parts + 1
        assert processor.allocation_budget(0) == 0

    def test_allocation_satisfies_pigeonhole(self, processor, records):
        estimator = exact_part_estimator(processor, records)
        query = records[0]
        for threshold in (4, 8, 12):
            allocation = processor.allocate(query, threshold, estimator)
            assert sum(allocation) >= processor.allocation_budget(threshold)

    @pytest.mark.parametrize("builder", ["exact", "mean", "histogram"])
    def test_results_are_exact_for_every_estimator(self, processor, records, builder):
        """Whatever the allocation quality, GPH must return the exact result set."""
        if builder == "exact":
            estimator = exact_part_estimator(processor, records)
        elif builder == "mean":
            estimator = mean_part_estimator(processor, records)
        else:
            estimator = histogram_part_estimator(processor, records, group_size=4)
        rng = np.random.default_rng(0)
        for _ in range(4):
            query = records[rng.integers(0, len(records))]
            threshold = int(rng.integers(2, 10))
            execution = processor.execute(query, threshold, estimator)
            truth = int(
                np.count_nonzero(np.count_nonzero(records != query[None, :], axis=1) <= threshold)
            )
            assert execution.num_results == truth
            assert execution.num_candidates >= execution.num_results

    def test_exact_allocation_never_worse_than_mean(self, processor, records):
        """Cardinality-aware allocation should not produce more candidates than naive."""
        exact = exact_part_estimator(processor, records)
        naive = mean_part_estimator(processor, records)
        rng = np.random.default_rng(1)
        exact_total, naive_total = 0, 0
        for _ in range(5):
            query = records[rng.integers(0, len(records))]
            threshold = int(rng.integers(6, 12))
            exact_total += processor.execute(query, threshold, exact).num_candidates
            naive_total += processor.execute(query, threshold, naive).num_candidates
        assert exact_total <= naive_total

    def test_model_part_estimator_adapter(self, processor, records):
        class ConstantEstimator:
            def estimate(self, record, theta):
                return 1.0

        adapter = model_part_estimator(processor, [ConstantEstimator()] * processor.num_parts)
        assert adapter(0, records[0][:8], 2) == 1.0

    def test_model_part_estimator_wrong_count(self, processor):
        with pytest.raises(ValueError):
            model_part_estimator(processor, [])

    def test_execution_timing_fields(self, processor, records):
        estimator = exact_part_estimator(processor, records)
        execution = processor.execute(records[0], 6, estimator)
        assert execution.allocation_seconds >= 0.0
        assert execution.processing_seconds >= 0.0
        assert execution.total_seconds == pytest.approx(
            execution.allocation_seconds + execution.processing_seconds
        )


# --------------------------------------------------------------------------- #
# Curve-batched estimation call counts (the batch-first rewiring contract)
# --------------------------------------------------------------------------- #
class TestCurveBatchedCalls:
    @pytest.fixture(scope="class")
    def records(self, binary_dataset):
        return binary_dataset.records[:200]

    @pytest.fixture(scope="class")
    def processor(self, records):
        return GPHQueryProcessor(records, part_size=8)

    def _part_mean_estimators(self, processor, records):
        """One fitted MeanEstimator per part, wrapped with call counters."""
        from repro.workloads import QueryExample

        estimators = []
        for start, stop in processor.selector.parts:
            width = stop - start
            inner = MeanEstimator(theta_max=float(width), num_buckets=width + 1)
            columns = records[:, start:stop]
            examples = [
                QueryExample(
                    columns[0],
                    float(t),
                    int(
                        np.count_nonzero(
                            np.count_nonzero(columns != columns[0][None, :], axis=1) <= t
                        )
                    ),
                )
                for t in range(width + 1)
            ]
            estimators.append(CountingEstimator(inner.fit(examples)))
        return estimators

    def test_gph_allocation_issues_one_curve_call_per_part(self, processor, records):
        estimators = self._part_mean_estimators(processor, records)
        adapter = model_part_estimator(processor, estimators)
        processor.allocate(records[0], 8, adapter)
        for estimator in estimators:
            assert estimator.curve_calls == 1
            assert estimator.batch_calls == 0  # no per-threshold scalar calls

    def test_gph_legacy_callable_still_supported(self, processor, records):
        calls = []

        def legacy(part_index, part_bits, threshold):
            calls.append((part_index, threshold))
            return 1.0

        allocation = processor.allocate(records[0], 8, legacy)
        assert sum(allocation) >= processor.allocation_budget(8)
        assert calls  # the scalar fallback fetched the curves point by point

    def test_gph_curve_path_allocates_like_scalar_path(self, processor, records):
        """Curve-batched and scalar-loop estimation must yield identical plans."""
        exact = exact_part_estimator(processor, records)

        def scalar_view(part_index, part_bits, threshold):
            return exact(part_index, part_bits, threshold)

        rng = np.random.default_rng(5)
        for _ in range(4):
            query = records[rng.integers(0, len(records))]
            threshold = int(rng.integers(4, 12))
            assert processor.allocate(query, threshold, exact) == processor.allocate(
                query, threshold, scalar_view
            )

    def test_conjunctive_batch_planning_one_call_per_attribute(self, relation):
        processor = ConjunctiveQueryProcessor(relation, num_pivots=8, seed=0)
        queries = generate_conjunctive_queries(relation, num_queries=6, seed=2)
        estimators = {
            attribute: CountingEstimator(
                KernelDensityEstimator(matrix, "euclidean", sample_size=40, seed=0)
            )
            for attribute, matrix in relation.attributes.items()
        }
        report = run_conjunctive_workload(processor, queries, estimators)
        assert report.num_queries == len(queries)
        for estimator in estimators.values():
            assert estimator.batch_calls == 1  # whole workload in one batched call
            assert estimator.curve_calls == 0

    def test_conjunctive_tie_break_matches_legacy(self, relation):
        """Tied estimates must break by each query's own predicate order in
        both planning modes (the argmin tie-break is insertion order)."""

        class ConstantEstimator(CardinalityEstimator):
            monotonic = True

            def estimate_batch(self, records, thetas):
                return np.full(len(records), 7.0)

        processor = ConjunctiveQueryProcessor(relation, num_pivots=8, seed=0)
        queries = generate_conjunctive_queries(relation, num_queries=4, seed=4)
        # Reverse one query's predicate order so insertion order differs per query.
        queries[1] = ConjunctiveQuery(predicates=list(reversed(queries[1].predicates)))
        estimators = {attribute: ConstantEstimator() for attribute in relation.attribute_names}
        batched = run_conjunctive_workload(processor, queries, estimators, batch_planning=True)
        legacy = run_conjunctive_workload(processor, queries, estimators, batch_planning=False)
        assert [e.chosen_attribute for e in batched.executions] == [
            e.chosen_attribute for e in legacy.executions
        ]
        # And the tie-break follows each query's first predicate.
        assert batched.executions[1].chosen_attribute == queries[1].predicates[0].attribute

    def test_conjunctive_batch_planning_same_plans_as_legacy(self, relation):
        processor = ConjunctiveQueryProcessor(relation, num_pivots=8, seed=0)
        queries = generate_conjunctive_queries(relation, num_queries=6, seed=3)
        estimators = {
            attribute: ExactEstimator(
                BallIndexEuclideanSelector(matrix, num_pivots=8, seed=0)
            )
            for attribute, matrix in relation.attributes.items()
        }
        batched = run_conjunctive_workload(processor, queries, estimators, batch_planning=True)
        legacy = run_conjunctive_workload(processor, queries, estimators, batch_planning=False)
        assert [e.chosen_attribute for e in batched.executions] == [
            e.chosen_attribute for e in legacy.executions
        ]
        assert [e.result_ids for e in batched.executions] == [
            e.result_ids for e in legacy.executions
        ]
        assert batched.total_candidates == legacy.total_candidates
        assert batched.planning_precision == legacy.planning_precision


# --------------------------------------------------------------------------- #
# Plan objects (the engine consumes these; execute == plan + execute_plan)
# --------------------------------------------------------------------------- #
class TestPlanObjects:
    @pytest.fixture(scope="class")
    def processor(self, relation):
        return ConjunctiveQueryProcessor(relation, num_pivots=8, seed=0)

    @pytest.fixture(scope="class")
    def queries(self, relation):
        return generate_conjunctive_queries(relation, num_queries=6, seed=7)

    @pytest.fixture(scope="class")
    def estimators(self, relation):
        return {
            attribute: ExactEstimator(BallIndexEuclideanSelector(matrix, num_pivots=8, seed=0))
            for attribute, matrix in relation.attributes.items()
        }

    def test_plan_is_inspectable(self, processor, queries, estimators):
        plan = processor.plan(queries[0], estimators)
        assert plan.chosen_attribute in queries[0].attributes()
        assert set(plan.verify_order) == set(queries[0].attributes()) - {plan.chosen_attribute}
        # Residuals verify in ascending-estimate order.
        residual_estimates = [plan.estimates[a] for a in plan.verify_order]
        assert residual_estimates == sorted(residual_estimates)
        assert plan.estimated_candidates == plan.estimates[plan.chosen_attribute]

    def test_execute_plan_equals_execute(self, processor, queries, estimators):
        for query in queries:
            planned = processor.execute_plan(processor.plan(query, estimators))
            inline = processor.execute(query, estimators)
            assert planned.chosen_attribute == inline.chosen_attribute
            assert planned.result_ids == inline.result_ids
            assert planned.candidates_examined == inline.candidates_examined

    def test_plan_workload_matches_per_query_plans(self, processor, queries, estimators):
        workload_plans = processor.plan_workload(queries, estimators)
        for query, plan in zip(queries, workload_plans):
            single = processor.plan(query, estimators)
            assert plan.chosen_attribute == single.chosen_attribute
            assert plan.verify_order == single.verify_order
            assert plan.estimates == single.estimates

    def test_gph_plan_carries_cost(self, binary_dataset):
        records = binary_dataset.records[:200]
        processor = GPHQueryProcessor(records, part_size=8)
        estimator = exact_part_estimator(processor, records)
        plan = processor.plan(records[0], 8, estimator)
        assert sum(plan.allocation) >= processor.allocation_budget(8)
        assert plan.estimated_candidates >= 0.0
        assert plan.allocation_seconds >= 0.0
        # Executing a precomputed plan skips re-allocation and matches.
        execution = processor.execute(records[0], 8, plan=plan)
        direct = processor.execute(records[0], 8, estimator)
        assert execution.allocation == direct.allocation
        assert execution.num_results == direct.num_results
        # The exact oracle's DP cost equals the candidate upper bound shape:
        # estimated >= actual results is not guaranteed, but both are finite.
        assert np.isfinite(plan.estimated_candidates)

    def test_execute_requires_estimator_or_plan(self, binary_dataset):
        processor = GPHQueryProcessor(binary_dataset.records[:50], part_size=8)
        with pytest.raises(ValueError):
            processor.execute(binary_dataset.records[0], 4)

    def test_injected_selector_is_reused(self, binary_dataset):
        from repro.selection import PigeonholeHammingSelector

        selector = PigeonholeHammingSelector(binary_dataset.records[:100], part_size=8)
        processor = GPHQueryProcessor([], selector=selector)
        assert processor.selector is selector
        assert processor.part_size == 8
        assert processor.num_parts == len(selector.parts)

"""Unit and property tests for the evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    AccuracyReport,
    cardinality_range_groups,
    grouped_errors,
    mape,
    mean_q_error,
    monotonicity_violation_rate,
    mse,
    msle,
)


class TestPointMetrics:
    def test_mse_known_value(self):
        assert mse([1.0, 2.0], [2.0, 4.0]) == pytest.approx((1 + 4) / 2)

    def test_mse_zero_for_perfect(self):
        assert mse([3.0, 7.0], [3.0, 7.0]) == 0.0

    def test_mape_known_value(self):
        assert mape([10.0, 20.0], [11.0, 18.0]) == pytest.approx((10.0 + 10.0) / 2)

    def test_mape_handles_zero_actual(self):
        assert np.isfinite(mape([0.0], [5.0]))

    def test_msle_symmetric_in_ratio(self):
        assert msle([10.0], [20.0]) == pytest.approx(msle([20.0], [10.0]))

    def test_mean_q_error_one_for_perfect(self):
        assert mean_q_error([5.0, 9.0], [5.0, 9.0]) == pytest.approx(1.0)

    def test_mean_q_error_symmetric(self):
        assert mean_q_error([10.0], [20.0]) == pytest.approx(mean_q_error([20.0], [10.0]))

    def test_mean_q_error_known_value(self):
        assert mean_q_error([10.0], [20.0]) == pytest.approx(2.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mse([1.0, 2.0], [1.0])

    def test_accuracy_report(self):
        report = AccuracyReport.from_predictions([10.0, 20.0], [12.0, 18.0])
        assert report.mse > 0
        assert set(report.as_dict()) == {"mse", "mape", "mean_q_error"}


class TestMonotonicity:
    def test_zero_for_monotone(self):
        estimates = [[1.0, 2.0], [2.0, 2.0], [5.0, 3.0]]
        assert monotonicity_violation_rate(estimates) == 0.0

    def test_detects_violations(self):
        estimates = [[5.0], [3.0], [4.0]]
        assert monotonicity_violation_rate(estimates) == pytest.approx(0.5)

    def test_single_threshold(self):
        assert monotonicity_violation_rate([[1.0, 2.0]]) == 0.0


class TestGroupedMetrics:
    def test_grouped_by_threshold(self):
        actual = [10.0, 20.0, 30.0, 40.0]
        estimated = [10.0, 25.0, 30.0, 50.0]
        groups = [1, 1, 2, 2]
        result = grouped_errors(actual, estimated, groups, metric="mse")
        assert result[1] == pytest.approx(12.5)
        assert result[2] == pytest.approx(50.0)

    def test_unknown_metric(self):
        with pytest.raises(KeyError):
            grouped_errors([1.0], [1.0], [0], metric="rmse")

    def test_cardinality_range_groups(self):
        labels = cardinality_range_groups([5, 150, 2500], [100, 1000, 2000])
        assert labels[0].startswith("[0")
        assert labels[2].startswith(">=")

    def test_cardinality_range_groups_empty_boundaries(self):
        labels = cardinality_range_groups([5], [])
        assert labels == [">= 0"]


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=1, max_size=20),
)
def test_metrics_zero_for_perfect_predictions(values):
    assert mse(values, values) == 0.0
    assert mape(values, values) == 0.0
    assert mean_q_error(values, values) == pytest.approx(1.0)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=1, max_size=20),
    st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=1, max_size=20),
)
def test_metrics_nonnegative(actual, estimated):
    length = min(len(actual), len(estimated))
    actual, estimated = actual[:length], estimated[:length]
    assert mse(actual, estimated) >= 0.0
    assert mape(actual, estimated) >= 0.0
    assert mean_q_error(actual, estimated) >= 1.0

"""Unit tests for workload construction, labelling, and out-of-dataset queries."""

import numpy as np
import pytest

from repro.distances import get_distance
from repro.selection import default_selector
from repro.workloads import (
    QueryExample,
    Workload,
    build_workload,
    generate_out_of_dataset_queries,
    k_medoids,
    label_queries,
    relabel,
    sample_query_indexes,
    sample_thresholds,
)


class TestThresholdSampling:
    def test_integer_valued_thresholds_are_integers(self, rng):
        thresholds = sample_thresholds(10, 5, integer_valued=True, rng=rng)
        assert np.allclose(thresholds, np.round(thresholds))

    def test_integer_valued_all_when_enough(self, rng):
        thresholds = sample_thresholds(4, 10, integer_valued=True, rng=rng)
        assert np.array_equal(thresholds, [0, 1, 2, 3, 4])

    def test_real_valued_in_range(self, rng):
        thresholds = sample_thresholds(0.4, 6, integer_valued=False, rng=rng)
        assert np.all(thresholds >= 0.0) and np.all(thresholds <= 0.4)
        assert np.array_equal(thresholds, np.sort(thresholds))

    def test_invalid_count(self, rng):
        with pytest.raises(ValueError):
            sample_thresholds(4, 0, integer_valued=True, rng=rng)


class TestQuerySampling:
    def test_single_uniform_size(self, binary_dataset, rng):
        picks = sample_query_indexes(binary_dataset, 30, "single_uniform", rng)
        assert len(picks) == 30
        assert len(set(picks.tolist())) == 30

    def test_multi_uniform_bounded(self, binary_dataset, rng):
        picks = sample_query_indexes(binary_dataset, 30, "multi_uniform", rng)
        assert 0 < len(picks) <= 30

    def test_skewed_overrepresents_small_clusters(self, binary_dataset, rng):
        picks = sample_query_indexes(binary_dataset, 60, "skewed", rng)
        labels = binary_dataset.cluster_labels[picks]
        # Under skewed sampling every cluster should be hit despite size skew.
        assert len(np.unique(labels)) == binary_dataset.num_clusters

    def test_unknown_policy(self, binary_dataset, rng):
        with pytest.raises(KeyError):
            sample_query_indexes(binary_dataset, 10, "stratified", rng)


class TestLabeling:
    def test_labels_match_exact_counts(self, binary_dataset):
        selector = default_selector("hamming", binary_dataset.records)
        distance = get_distance("hamming")
        queries = [binary_dataset.records[0], binary_dataset.records[5]]
        examples = label_queries(queries, [0, 4, 8], selector)
        assert len(examples) == 6
        for example in examples:
            expected = distance.count_within(example.record, list(binary_dataset.records), example.theta)
            assert example.cardinality == expected

    def test_relabel_after_shrinking_dataset(self, binary_dataset):
        selector = default_selector("hamming", binary_dataset.records)
        examples = label_queries([binary_dataset.records[0]], [8], selector)
        smaller = default_selector("hamming", binary_dataset.records[:50])
        relabelled = relabel(examples, smaller)
        assert relabelled[0].cardinality <= examples[0].cardinality


class TestBuildWorkload:
    def test_split_sizes(self, binary_workload):
        summary = binary_workload.summary()
        assert summary["train"] > summary["validation"]
        assert summary["train"] > summary["test"]
        assert len(binary_workload) == sum(summary.values())

    def test_cardinalities_positive(self, binary_workload):
        # Every query is a dataset record, so it always matches itself.
        assert all(example.cardinality >= 1 for example in binary_workload.train)

    def test_cardinality_monotone_per_query(self, binary_workload):
        """For one query record, cardinality must not decrease with the threshold."""
        by_record = {}
        for example in binary_workload.train:
            by_record.setdefault(example.record.tobytes(), []).append(example)
        for examples in by_record.values():
            examples.sort(key=lambda e: e.theta)
            cardinalities = [e.cardinality for e in examples]
            assert cardinalities == sorted(cardinalities)

    def test_invalid_split(self, binary_dataset):
        with pytest.raises(ValueError):
            build_workload(binary_dataset, split=(0.5, 0.5, 0.5))

    def test_max_queries_cap(self, binary_dataset):
        workload = build_workload(binary_dataset, query_fraction=0.5, max_queries=10, num_thresholds=3, seed=0)
        unique_records = {e.record.tobytes() for e in workload}
        assert len(unique_records) <= 10

    def test_policies_produce_workloads(self, set_dataset):
        for policy in ("single_uniform", "multi_uniform", "skewed"):
            workload = build_workload(
                set_dataset, query_fraction=0.05, num_thresholds=3, policy=policy, seed=2
            )
            assert len(workload.train) > 0

    def test_helpers(self, binary_workload):
        records = Workload.records(binary_workload.train[:3])
        thetas = Workload.thetas(binary_workload.train[:3])
        cards = Workload.cardinalities(binary_workload.train[:3])
        assert len(records) == 3 and thetas.shape == (3,) and cards.shape == (3,)


class TestOutOfDatasetQueries:
    def test_k_medoids_returns_requested_count(self, set_dataset):
        medoids = k_medoids(set_dataset.records, "jaccard", num_medoids=4, sample_size=60, seed=0)
        assert len(medoids) == 4

    @pytest.mark.parametrize(
        "fixture_name", ["binary_dataset", "string_dataset", "set_dataset", "vector_dataset"]
    )
    def test_generates_right_type_and_count(self, request, fixture_name):
        dataset = request.getfixturevalue(fixture_name)
        queries = generate_out_of_dataset_queries(dataset, num_queries=5, num_candidates=30, seed=0)
        assert len(queries) == 5
        sample_record = dataset.records[0]
        if isinstance(sample_record, np.ndarray):
            assert all(np.asarray(q).shape == np.asarray(sample_record).shape for q in queries)
        else:
            assert all(isinstance(q, type(sample_record)) for q in queries)

    def test_outliers_are_far_from_data(self, binary_dataset):
        """Out-of-dataset queries should be farther from the data than members are."""
        distance = get_distance("hamming")
        queries = generate_out_of_dataset_queries(binary_dataset, num_queries=5, num_candidates=50, seed=0)
        data_sample = list(binary_dataset.records[:40])
        outlier_distance = np.mean(
            [np.mean(distance.distances_to(q, data_sample)) for q in queries]
        )
        member_distance = np.mean(
            [np.mean(distance.distances_to(r, data_sample)) for r in binary_dataset.records[40:45]]
        )
        assert outlier_distance > member_distance


class TestQueryExample:
    def test_fields(self):
        example = QueryExample(record="abc", theta=2.0, cardinality=7)
        assert example.record == "abc"
        assert example.theta == 2.0
        assert example.cardinality == 7


class TestVectorizedLabelling:
    """label_queries/relabel must produce exactly the labels of the scalar loop."""

    def _scalar_label(self, queries, thresholds, selector):
        return [
            QueryExample(record=record, theta=float(theta), cardinality=selector.cardinality(record, float(theta)))
            for record in queries
            for theta in thresholds
        ]

    @pytest.mark.parametrize(
        "fixture_name",
        ["binary_dataset", "string_dataset", "set_dataset", "vector_dataset"],
    )
    def test_label_queries_matches_scalar_loop(self, request, fixture_name):
        dataset = request.getfixturevalue(fixture_name)
        selector = default_selector(dataset.distance_name, dataset.records)
        distance = get_distance(dataset.distance_name)
        rng = np.random.default_rng(8)
        queries = [
            dataset.records[int(i)]
            for i in rng.choice(len(dataset.records), size=5, replace=False)
        ]
        if distance.integer_valued:
            thresholds = [1.0, 2.0, float(int(dataset.theta_max))]
        else:
            thresholds = [dataset.theta_max * f for f in (0.2, 0.5, 1.0)]
        fast = label_queries(queries, thresholds, selector)
        slow = self._scalar_label(queries, thresholds, selector)
        assert [(e.theta, e.cardinality) for e in fast] == [
            (e.theta, e.cardinality) for e in slow
        ]

    def test_relabel_matches_scalar_loop(self, binary_dataset):
        selector = default_selector("hamming", binary_dataset.records)
        rng = np.random.default_rng(9)
        queries = [binary_dataset.records[int(i)] for i in rng.integers(0, 100, size=4)]
        examples = label_queries(queries, [2.0, 4.0, 6.0], selector)
        # Relabel against a shrunken dataset.
        smaller = default_selector("hamming", binary_dataset.records[:150])
        fast = relabel(examples, smaller)
        slow = [
            QueryExample(e.record, e.theta, smaller.cardinality(e.record, e.theta))
            for e in examples
        ]
        assert [(e.theta, e.cardinality) for e in fast] == [
            (e.theta, e.cardinality) for e in slow
        ]
